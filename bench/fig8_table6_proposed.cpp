// Reproduces Fig. 8 and TABLE VI — the proposed multi-stage DSE vs the
// problem-agnostic full-configuration GA (fcCLR, the Das-et-al.-style
// extension the paper compares against).
//
//   Fig. 8:   Pareto fronts of `proposed` and `fcCLR` for a 50-task
//             application (average makespan vs application error prob).
//   TABLE VI: % increase in Pareto-front hypervolume of proposed over fcCLR
//             for 10..100 tasks (paper: up to 231%, average 129%; gains
//             grow as fcCLR stops scaling).
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "moea/indicators.hpp"
#include "platform/architecture.hpp"
#include "util/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

constexpr std::uint64_t kAppSeedBase = 1000;
constexpr std::uint64_t kGaSeed = 11;

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_fig8_table6_proposed", "Fig. 8 / TABLE VI: proposed multi-stage DSE vs the problem-agnostic fcCLR");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::DseOptions options = core::bench_options(kGaSeed);

  // ---------------- Fig. 8: fronts for the 50-task application ----------------
  std::printf("=== Fig. 8: proposed vs fcCLR fronts (50 tasks) ===\n");
  {
    const std::size_t tasks = core::fast_mode() ? 20 : 50;
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    const core::DseOutcome fcclr = dse.run_fcclr(options);
    const core::DseOutcome proposed = dse.run_proposed(options);

    // Section V-B cardinalities: why the full-configuration space defeats a
    // fixed GA budget as applications grow.
    {
      const core::ClrMappingProblem fc(syn, arch,
                                       core::bench_system_analyzer(),
                                       options.objectives, options.spec);
      const auto tdse = dse.run_tdse(options);
      std::vector<std::vector<core::TaskDesignPoint>> points;
      for (const auto& r : tdse) points.push_back(r.pareto);
      const core::ClrMappingProblem pf(syn, arch,
                                       core::bench_system_analyzer(),
                                       options.objectives, options.spec,
                                       points);
      std::printf("design-space size: fcCLR 10^%.1f, pfCLR 10^%.1f\n",
                  fc.log10_design_space_size(),
                  pf.log10_design_space_size());
    }

    std::vector<std::pair<std::string, std::vector<moea::Objectives>>> series;
    series.emplace_back("fcCLR", fcclr.front);
    series.emplace_back("proposed", proposed.front);
    for (const auto& [name, front] : series) {
      std::printf("-- %s (%zu points)\n", name.c_str(), front.size());
      util::TextTable table;
      table.header({"Avg makespan (us)", "App error probability"});
      for (const auto& p : front) table.row(p[0], p[1]);
      table.print(std::cout);
    }
    if (!fcclr.front.empty() && !proposed.front.empty()) {
      // Quality indicators beyond hypervolume: two-set coverage and the
      // additive epsilon (how far fcCLR's front must shift to match).
      std::printf(
          "indicators: C(proposed, fcCLR) = %.2f, C(fcCLR, proposed) = %.2f, "
          "eps(proposed -> fcCLR) = %.4g\n",
          moea::coverage(proposed.front, fcclr.front),
          moea::coverage(fcclr.front, proposed.front),
          moea::epsilon_indicator(proposed.front, fcclr.front));
    }
    const std::string path = core::write_fronts_csv(
        "fig8_proposed_vs_fcclr.csv", series,
        {"avg_makespan_us", "app_error_prob"});
    std::printf("[wrote %s]\n\n", path.c_str());
  }

  // ---------------- TABLE VI: hypervolume gains over sizes ----------------
  std::printf(
      "=== TABLE VI: %% increase in hypervolume, proposed over fcCLR ===\n");
  util::TextTable table;
  table.header({"#Tasks", "% increase in hypervolume", "proposed pts",
                "fcCLR pts"});
  std::filesystem::create_directories("results");
  util::CsvWriter csv("results/table6_proposed_vs_fcclr.csv");
  csv.row({"tasks", "hv_gain_pct", "proposed_points", "fcclr_points"});

  util::RunningStats gains;
  for (std::size_t tasks : core::bench_task_counts()) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    const core::DseOutcome fcclr = dse.run_fcclr(options);
    const core::DseOutcome proposed = dse.run_proposed(options);

    std::string gain_text = "inf (fcCLR infeasible)";
    double gain = std::numeric_limits<double>::infinity();
    if (!fcclr.front.empty() && !proposed.front.empty()) {
      const auto ref = moea::common_reference({proposed.front, fcclr.front});
      gain = moea::hypervolume_gain_percent(proposed.front, fcclr.front, ref);
      gain_text = util::format_compact(gain);
      gains.add(gain);
    }
    table.row(tasks, gain_text, proposed.front.size(), fcclr.front.size());
    csv.field(tasks)
        .field(gain)
        .field(proposed.front.size())
        .field(fcclr.front.size());
    csv.end_row();
  }
  table.print(std::cout);
  std::printf("average gain over finite rows: %.0f%% (paper: avg 129%%)\n",
              gains.mean());
  std::printf("[wrote results/table6_proposed_vs_fcclr.csv]\n");
  return 0;
}
