// Serve-mode throughput benchmark: drives DseService in process (no
// sockets, so the numbers are queue + worker + engine, not TCP) with a
// batch of jobs — half identical spec, half distinct seeds — and reports
// jobs/sec, p50/p99 job latency and the cross-request cache hit-rate.
// A second, real-socket section measures the HTTP front end itself:
// lightweight GETs over one persistent keep-alive connection versus a
// fresh connection per request, reporting both modes' p50/p99 and the
// keep-alive speedup. Emits BENCH_serve.json (validated by
// scripts/check_bench.py); the fields are documented in docs/SERVER.md.
// The identical-spec jobs double as a determinism check: their fronts must
// agree bit for bit.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

server::HttpRequest make_request(std::string method, std::string path,
                                 std::string body = "") {
  server::HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.body = std::move(body);
  return request;
}

std::string job_body(std::size_t seed, std::size_t population,
                     std::size_t generations) {
  util::JsonObject ga;
  ga["population_size"] = population;
  ga["generations"] = generations;
  util::JsonObject spec;
  spec["format_version"] = 1;
  spec["flow"] = "pfclr";
  spec["seed"] = seed;
  spec["ga"] = util::JsonValue(std::move(ga));
  spec["application"] = "sobel";
  return util::json_serialize(util::JsonValue(std::move(spec)));
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one Content-Length-framed response from a keep-alive connection;
/// `buffer` carries leftover bytes between calls.
bool read_one_response(int fd, std::string& buffer) {
  char chunk[4096];
  std::size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t marker = buffer.find("Content-Length: ");
  if (marker == std::string::npos || marker > header_end) return false;
  const std::size_t length = std::stoul(buffer.substr(marker + 16));
  const std::size_t total = header_end + 4 + length;
  while (buffer.size() < total) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  buffer.erase(0, total);
  return true;
}

/// One lightweight request/response round trip; appends its latency (ms).
bool timed_round_trip(int fd, const std::string& request, std::string& buffer,
                      std::vector<double>& latencies_ms) {
  const auto start = Clock::now();
  if (!send_all(fd, request)) return false;
  if (!read_one_response(fd, buffer)) return false;
  latencies_ms.push_back(
      std::chrono::duration<double>(Clock::now() - start).count() * 1e3);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_serve",
                       "DseService job throughput and cross-request cache "
                       "sharing (emits BENCH_serve.json)");
  args.option("jobs", "jobs to submit (half identical, half distinct seeds)",
              "24")
      .option("workers", "worker threads in the job queue", "4")
      .option("pop", "GA population size per job", "24")
      .option("gens", "GA generations per job", "6")
      .option("http-requests",
              "lightweight GETs for the keep-alive vs per-connection section",
              "300")
      .option("out", "output JSON path", "BENCH_serve.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  std::size_t jobs = args.get_uint("jobs");
  std::size_t population = args.get_uint("pop");
  std::size_t generations = args.get_uint("gens");
  if (core::fast_mode()) {
    jobs = std::min<std::size_t>(jobs, 8);
    population = std::min<std::size_t>(population, 16);
    generations = std::min<std::size_t>(generations, 3);
  }
  const std::size_t workers = args.get_uint("workers");

  server::ServiceOptions options;
  options.workers = workers;
  options.queue_depth = jobs;  // admission control is not under test here
  server::DseService service(options);

  std::printf("=== serve throughput: %zu jobs (pfclr sobel, pop %zu x %zu "
              "generations), %zu workers ===\n",
              jobs, population, generations, workers);

  // Half the batch shares one spec (seed 1) to exercise cross-request
  // fitness-cache sharing; the rest get distinct seeds so the workers also
  // see genuinely new genomes.
  const auto start = Clock::now();
  std::vector<std::string> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const std::size_t seed = i < jobs / 2 ? 1 : i + 1;
    const server::HttpResponse submitted = service.handle(
        make_request("POST", "/v1/jobs", job_body(seed, population,
                                                  generations)));
    if (submitted.status != 202) {
      std::fprintf(stderr, "submit failed (%d): %s\n", submitted.status,
                   submitted.body.c_str());
      return 1;
    }
    ids.push_back(util::json_parse(submitted.body).at("id").as_string());
  }

  // Poll the job list until every submission reaches a terminal state.
  bool all_completed = false;
  for (int i = 0; i < 60000 && !all_completed; ++i) {
    const server::HttpResponse list =
        service.handle(make_request("GET", "/v1/jobs"));
    std::size_t done = 0;
    for (const util::JsonValue& job :
         util::json_parse(list.body).at("jobs").as_array()) {
      if (job.at("state").as_string() == "done") ++done;
    }
    all_completed = done == jobs;
    if (!all_completed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies_ms;
  std::size_t fitness_hits = 0, fitness_misses = 0, chain_hits = 0;
  bool identical_fronts_agree = all_completed;
  util::JsonValue shared_front;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const server::HttpResponse response = service.handle(
        make_request("GET", "/v1/jobs/" + ids[i] + "/result"));
    if (response.status != 200) {
      all_completed = false;
      continue;
    }
    const util::JsonValue result = util::json_parse(response.body);
    latencies_ms.push_back(result.at("wall_seconds").as_number() * 1e3);
    const util::JsonValue& cache = result.at("cache");
    fitness_hits += static_cast<std::size_t>(
        cache.at("fitness_hits").as_number());
    fitness_misses += static_cast<std::size_t>(
        cache.at("fitness_misses").as_number());
    chain_hits += static_cast<std::size_t>(
        cache.at("chain_hits").as_number());
    if (i < jobs / 2) {
      if (i == 0) {
        shared_front = result.at("front");
      } else if (!(result.at("front") == shared_front)) {
        identical_fronts_agree = false;
      }
    }
  }
  service.shutdown(/*cancel_pending=*/true);

  // --- HTTP front-end section: keep-alive vs per-connection ----------------
  // Lightweight GETs isolate connection-handling cost from job execution;
  // the same number of requests is pushed through one persistent connection
  // and through a fresh connection per request.
  std::size_t http_requests = args.get_uint("http-requests");
  if (core::fast_mode()) {
    http_requests = std::min<std::size_t>(http_requests, 100);
  }
  const std::string healthz_keepalive =
      "GET /v1/healthz HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive"
      "\r\n\r\n";
  const std::string healthz_close =
      "GET /v1/healthz HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n";

  double keepalive_rps = 0.0, per_connection_rps = 0.0;
  std::vector<double> keepalive_ms, per_connection_ms;
  bool http_ok = true;
  {
    server::ServerOptions http_options;
    http_options.port = 0;  // ephemeral
    http_options.handler_threads = 2;
    http_options.max_requests_per_connection = http_requests + 1;
    server::HttpServer http(service, http_options);
    http.start();

    {  // one persistent connection for the whole run
      const auto start_ka = Clock::now();
      const int fd = connect_to(http.port());
      std::string buffer;
      for (std::size_t i = 0; http_ok && i < http_requests; ++i) {
        http_ok = fd >= 0 && timed_round_trip(fd, healthz_keepalive, buffer,
                                              keepalive_ms);
      }
      if (fd >= 0) ::close(fd);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start_ka).count();
      keepalive_rps = seconds > 0
                          ? static_cast<double>(http_requests) / seconds
                          : 0.0;
    }

    {  // a fresh connection per request
      const auto start_pc = Clock::now();
      for (std::size_t i = 0; http_ok && i < http_requests; ++i) {
        const int fd = connect_to(http.port());
        std::string buffer;
        http_ok = fd >= 0 && timed_round_trip(fd, healthz_close, buffer,
                                              per_connection_ms);
        if (fd >= 0) ::close(fd);
      }
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start_pc).count();
      per_connection_rps = seconds > 0
                               ? static_cast<double>(http_requests) / seconds
                               : 0.0;
    }
    http.stop();
  }
  const double keepalive_speedup =
      per_connection_rps > 0 ? keepalive_rps / per_connection_rps : 0.0;
  std::sort(keepalive_ms.begin(), keepalive_ms.end());
  std::sort(per_connection_ms.begin(), per_connection_ms.end());

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double jobs_per_sec =
      total_seconds > 0 ? static_cast<double>(jobs) / total_seconds : 0.0;
  const std::size_t lookups = fitness_hits + fitness_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(fitness_hits) /
                        static_cast<double>(lookups)
                  : 0.0;

  std::printf("jobs/sec: %.1f (%zu jobs in %.3f s)\n", jobs_per_sec, jobs,
              total_seconds);
  std::printf("job latency: p50 %.2f ms, p99 %.2f ms\n", p50, p99);
  std::printf("fitness cache: %zu hits / %zu lookups (%.1f%%), chain hits "
              "%zu\n",
              fitness_hits, lookups, 100.0 * hit_rate, chain_hits);
  std::printf("identical-spec fronts: %s\n",
              identical_fronts_agree ? "agree" : "DIVERGED");
  std::printf("http keep-alive: %.0f req/s (p50 %.3f ms, p99 %.3f ms)\n",
              keepalive_rps, percentile(keepalive_ms, 0.50),
              percentile(keepalive_ms, 0.99));
  std::printf("http per-connection: %.0f req/s (p50 %.3f ms, p99 %.3f ms), "
              "keep-alive speedup %.2fx\n",
              per_connection_rps, percentile(per_connection_ms, 0.50),
              percentile(per_connection_ms, 0.99), keepalive_speedup);

  util::JsonObject report;
  report["benchmark"] = "serve";
  report["jobs"] = jobs;
  report["workers"] = workers;
  report["queue_depth"] = options.queue_depth;
  report["population"] = population;
  report["generations"] = generations;
  report["total_seconds"] = total_seconds;
  report["jobs_per_sec"] = jobs_per_sec;
  report["p50_job_latency_ms"] = p50;
  report["p99_job_latency_ms"] = p99;
  report["cache_hit_rate"] = hit_rate;
  report["fitness_hits"] = fitness_hits;
  report["fitness_misses"] = fitness_misses;
  report["chain_hits"] = chain_hits;
  report["all_completed"] = all_completed;
  report["identical_fronts_agree"] = identical_fronts_agree;
  util::JsonObject keepalive;
  keepalive["requests"] = http_requests;
  keepalive["http_ok"] = http_ok;
  keepalive["keepalive_rps"] = keepalive_rps;
  keepalive["per_connection_rps"] = per_connection_rps;
  keepalive["keepalive_p50_ms"] = percentile(keepalive_ms, 0.50);
  keepalive["keepalive_p99_ms"] = percentile(keepalive_ms, 0.99);
  keepalive["per_connection_p50_ms"] = percentile(per_connection_ms, 0.50);
  keepalive["per_connection_p99_ms"] = percentile(per_connection_ms, 0.99);
  keepalive["speedup"] = keepalive_speedup;
  report["keepalive"] = util::JsonValue(std::move(keepalive));

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (all_completed && identical_fronts_agree && http_ok) ? 0 : 1;
}
