// Serve-mode throughput benchmark: drives DseService in process (no
// sockets, so the numbers are queue + worker + engine, not TCP) with a
// batch of jobs — half identical spec, half distinct seeds — and reports
// jobs/sec, p50/p99 job latency and the cross-request cache hit-rate.
// Emits BENCH_serve.json (validated by scripts/check_bench.py); the fields
// are documented in docs/SERVER.md. The identical-spec jobs double as a
// determinism check: their fronts must agree bit for bit.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "server/service.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

server::HttpRequest make_request(std::string method, std::string path,
                                 std::string body = "") {
  server::HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.body = std::move(body);
  return request;
}

std::string job_body(std::size_t seed, std::size_t population,
                     std::size_t generations) {
  util::JsonObject ga;
  ga["population_size"] = population;
  ga["generations"] = generations;
  util::JsonObject spec;
  spec["format_version"] = 1;
  spec["flow"] = "pfclr";
  spec["seed"] = seed;
  spec["ga"] = util::JsonValue(std::move(ga));
  spec["application"] = "sobel";
  return util::json_serialize(util::JsonValue(std::move(spec)));
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_serve",
                       "DseService job throughput and cross-request cache "
                       "sharing (emits BENCH_serve.json)");
  args.option("jobs", "jobs to submit (half identical, half distinct seeds)",
              "24")
      .option("workers", "worker threads in the job queue", "4")
      .option("pop", "GA population size per job", "24")
      .option("gens", "GA generations per job", "6")
      .option("out", "output JSON path", "BENCH_serve.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  std::size_t jobs = args.get_uint("jobs");
  std::size_t population = args.get_uint("pop");
  std::size_t generations = args.get_uint("gens");
  if (core::fast_mode()) {
    jobs = std::min<std::size_t>(jobs, 8);
    population = std::min<std::size_t>(population, 16);
    generations = std::min<std::size_t>(generations, 3);
  }
  const std::size_t workers = args.get_uint("workers");

  server::ServiceOptions options;
  options.workers = workers;
  options.queue_depth = jobs;  // admission control is not under test here
  server::DseService service(options);

  std::printf("=== serve throughput: %zu jobs (pfclr sobel, pop %zu x %zu "
              "generations), %zu workers ===\n",
              jobs, population, generations, workers);

  // Half the batch shares one spec (seed 1) to exercise cross-request
  // fitness-cache sharing; the rest get distinct seeds so the workers also
  // see genuinely new genomes.
  const auto start = Clock::now();
  std::vector<std::string> ids;
  ids.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    const std::size_t seed = i < jobs / 2 ? 1 : i + 1;
    const server::HttpResponse submitted = service.handle(
        make_request("POST", "/v1/jobs", job_body(seed, population,
                                                  generations)));
    if (submitted.status != 202) {
      std::fprintf(stderr, "submit failed (%d): %s\n", submitted.status,
                   submitted.body.c_str());
      return 1;
    }
    ids.push_back(util::json_parse(submitted.body).at("id").as_string());
  }

  // Poll the job list until every submission reaches a terminal state.
  bool all_completed = false;
  for (int i = 0; i < 60000 && !all_completed; ++i) {
    const server::HttpResponse list =
        service.handle(make_request("GET", "/v1/jobs"));
    std::size_t done = 0;
    for (const util::JsonValue& job :
         util::json_parse(list.body).at("jobs").as_array()) {
      if (job.at("state").as_string() == "done") ++done;
    }
    all_completed = done == jobs;
    if (!all_completed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies_ms;
  std::size_t fitness_hits = 0, fitness_misses = 0, chain_hits = 0;
  bool identical_fronts_agree = all_completed;
  util::JsonValue shared_front;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const server::HttpResponse response = service.handle(
        make_request("GET", "/v1/jobs/" + ids[i] + "/result"));
    if (response.status != 200) {
      all_completed = false;
      continue;
    }
    const util::JsonValue result = util::json_parse(response.body);
    latencies_ms.push_back(result.at("wall_seconds").as_number() * 1e3);
    const util::JsonValue& cache = result.at("cache");
    fitness_hits += static_cast<std::size_t>(
        cache.at("fitness_hits").as_number());
    fitness_misses += static_cast<std::size_t>(
        cache.at("fitness_misses").as_number());
    chain_hits += static_cast<std::size_t>(
        cache.at("chain_hits").as_number());
    if (i < jobs / 2) {
      if (i == 0) {
        shared_front = result.at("front");
      } else if (!(result.at("front") == shared_front)) {
        identical_fronts_agree = false;
      }
    }
  }
  service.shutdown(/*cancel_pending=*/true);

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = percentile(latencies_ms, 0.50);
  const double p99 = percentile(latencies_ms, 0.99);
  const double jobs_per_sec =
      total_seconds > 0 ? static_cast<double>(jobs) / total_seconds : 0.0;
  const std::size_t lookups = fitness_hits + fitness_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(fitness_hits) /
                        static_cast<double>(lookups)
                  : 0.0;

  std::printf("jobs/sec: %.1f (%zu jobs in %.3f s)\n", jobs_per_sec, jobs,
              total_seconds);
  std::printf("job latency: p50 %.2f ms, p99 %.2f ms\n", p50, p99);
  std::printf("fitness cache: %zu hits / %zu lookups (%.1f%%), chain hits "
              "%zu\n",
              fitness_hits, lookups, 100.0 * hit_rate, chain_hits);
  std::printf("identical-spec fronts: %s\n",
              identical_fronts_agree ? "agree" : "DIVERGED");

  util::JsonObject report;
  report["benchmark"] = "serve";
  report["jobs"] = jobs;
  report["workers"] = workers;
  report["queue_depth"] = options.queue_depth;
  report["population"] = population;
  report["generations"] = generations;
  report["total_seconds"] = total_seconds;
  report["jobs_per_sec"] = jobs_per_sec;
  report["p50_job_latency_ms"] = p50;
  report["p99_job_latency_ms"] = p99;
  report["cache_hit_rate"] = hit_rate;
  report["fitness_hits"] = fitness_hits;
  report["fitness_misses"] = fitness_misses;
  report["chain_hits"] = chain_hits;
  report["all_completed"] = all_completed;
  report["identical_fronts_agree"] = identical_fronts_agree;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (all_completed && identical_fronts_agree) ? 0 : 1;
}
