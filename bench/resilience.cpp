// Permanent-fault resilience lane: run the k-resilient DSE on the seed
// Sobel system, fault-inject every point of the resulting front with the
// Monte Carlo permanent-fault injector, and require the injected Wilson
// 95% intervals to cover the analytic degraded-mode prediction
// (availability and criticality-weighted error are exact MC estimands on
// any graph). Also cross-checks the injector's determinism contract
// (bit-identical at 1 vs 4 threads) and reports how much of a
// resilience-agnostic fcCLR front survives the k-failure certification.
// Emits BENCH_resilience.json (fields explained in docs/RESILIENCE.md);
// the exit code gates on determinism and full front coverage.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "app/sobel.hpp"
#include "core/baselines.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "core/resilience.hpp"
#include "core/sim_bridge.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace clrearly;

  util::ArgParser args("bench_resilience",
                       "k-resilient DSE front vs Monte Carlo permanent-fault "
                       "injection (emits BENCH_resilience.json)");
  args.option("trials", "injection trials per design point", "10000")
      .option("sim-seed", "injector seed", "23")
      .option("seed", "GA seed", "9")
      .option("k", "tolerated permanent PE failures", "1")
      .option("mission-hours", "mission time for the Weibull failure model",
              "20000")
      .option("out", "output JSON path", "BENCH_resilience.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  const bool fast = core::fast_mode();
  const std::size_t trials =
      fast ? std::min<std::size_t>(args.get_uint("trials"), 2000)
           : args.get_uint("trials");
  const std::uint64_t sim_seed = args.get_uint("sim-seed");

  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 core::bench_system_analyzer());
  core::DseOptions options = core::bench_options(args.get_uint("seed"));
  options.resilience.max_failures = args.get_uint("k");
  options.resilience.mission_hours = args.get_number("mission-hours");
  options.resilience.degraded_spec = options.spec;

  std::printf("=== resilience: sobel, k=%zu, %zu trials/point ===\n",
              options.resilience.max_failures, trials);

  const core::DseOutcome outcome = dse.run_kresilient(options);
  const core::ResilientProblem problem = dse.build_resilient_problem(options);
  if (outcome.front_genomes.empty()) {
    std::fprintf(stderr, "k-resilient front is empty\n");
    return 1;
  }

  // ---- Oracle: analytic prediction inside the injected Wilson interval ----
  std::size_t availability_covered = 0;
  std::size_t error_covered = 0;
  util::JsonArray points_json;
  for (std::size_t i = 0; i < outcome.front_genomes.size(); ++i) {
    const core::MappingGenome& genome = outcome.front_genomes[i];
    const core::ResilientProblem::AnalyticPrediction pred =
        problem.analytic_prediction(genome);
    const sim::FailureSimResult injected =
        core::simulate_resilient_design_point(problem, genome, trials,
                                              sim_seed);
    const bool availability_ok =
        injected.availability_ci.contains(pred.availability);
    const bool error_ok = injected.error_ci.contains(pred.expected_error_prob);
    availability_covered += availability_ok ? 1 : 0;
    error_covered += error_ok ? 1 : 0;

    util::JsonObject point;
    point["analytic_availability"] = pred.availability;
    point["injected_availability"] = injected.availability;
    point["availability_ci_lo"] = injected.availability_ci.lo;
    point["availability_ci_hi"] = injected.availability_ci.hi;
    point["availability_covered"] = availability_ok;
    point["analytic_error_prob"] = pred.expected_error_prob;
    point["injected_error_prob"] = injected.error_prob;
    point["error_ci_lo"] = injected.error_ci.lo;
    point["error_ci_hi"] = injected.error_ci.hi;
    point["error_covered"] = error_ok;
    point["available_trials"] = injected.available_trials;
    points_json.emplace_back(std::move(point));
    std::printf("point %2zu: availability %.4f (MC [%.4f, %.4f]) %s, "
                "error %.3e (MC [%.3e, %.3e]) %s\n",
                i, pred.availability, injected.availability_ci.lo,
                injected.availability_ci.hi, availability_ok ? "ok" : "MISS",
                pred.expected_error_prob, injected.error_ci.lo,
                injected.error_ci.hi, error_ok ? "ok" : "MISS");
  }
  const std::size_t n = outcome.front_genomes.size();
  const bool covered = availability_covered == n && error_covered == n;

  // ---- Determinism: injector bit-identical at 1 vs 4 threads ----
  const core::MappingGenome& probe = outcome.front_genomes.front();
  util::set_thread_count(1);
  const sim::FailureSimResult serial =
      core::simulate_resilient_design_point(problem, probe, trials, sim_seed);
  util::set_thread_count(4);
  const sim::FailureSimResult parallel =
      core::simulate_resilient_design_point(problem, probe, trials, sim_seed);
  util::set_thread_count(0);
  const bool deterministic =
      sim::failure_sim_results_identical(serial, parallel);
  std::printf("determinism (%zu trials, 1 vs 4 threads): %s\n", trials,
              deterministic ? "identical" : "DIVERGED");

  // ---- Baseline: how much of a k-agnostic front survives certification ----
  const core::ResilienceBaselineOutcome baseline =
      core::run_resilience_baseline(dse, options);
  std::printf(
      "resilience-agnostic fcCLR front: %zu/%zu points already "
      "k=%zu-resilient (%.0f%%)\n",
      baseline.survivor_count, baseline.nominal.front.size(),
      options.resilience.max_failures, 100.0 * baseline.survivor_fraction);

  std::printf("overall: %zu front points, availability covered %zu/%zu, "
              "error covered %zu/%zu%s\n",
              n, availability_covered, n, error_covered, n,
              covered ? "" : "  [ORACLE DISAGREEMENT]");

  util::JsonObject out_json;
  out_json["benchmark"] = "resilience";
  out_json["application"] = "sobel";
  out_json["max_failures"] = options.resilience.max_failures;
  out_json["mission_hours"] = options.resilience.mission_hours;
  out_json["trials_per_point"] = trials;
  out_json["sim_seed"] = sim_seed;
  out_json["front_points"] = n;
  out_json["points"] = std::move(points_json);
  out_json["availability_covered"] = availability_covered;
  out_json["error_covered"] = error_covered;
  out_json["covered"] = covered;
  out_json["deterministic"] = deterministic;
  out_json["trials_per_sec"] = serial.trials_per_sec;
  out_json["baseline_front_points"] = baseline.nominal.front.size();
  out_json["baseline_survivors"] = baseline.survivor_count;
  out_json["baseline_survivor_fraction"] = baseline.survivor_fraction;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(out_json))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (deterministic && covered) ? 0 : 1;
}
