// Reproduces Fig. 6 — task-level DSE (tDSE) for a single task.
//
//   Fig. 6a: Pareto fronts (average execution time vs error probability in %)
//            for the three DVFS operating points. Each DVFS mode alone is a
//            single design point; sweeping the CLR methods per mode produces
//            a front per mode. Lower-voltage modes shift the front right
//            (slower) and up (higher SEU susceptibility).
//   Fig. 6b: Pareto fronts under increasing implicit SSW masking
//            (ImplMask = 0 / 5 / 10 / 20 %); more masking pushes the front
//            down.
//
// Output: the (time, error%) series per curve on stdout and
// results/fig6a_dvfs_fronts.csv, results/fig6b_implicit_masking.csv.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/tdse.hpp"
#include "platform/architecture.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

/// The single task under analysis: the Sobel smoothing kernel's processor
/// implementation (the figure's absolute range depends only on this scale).
reliability::BaseImpl subject_task() {
  reliability::BaseImpl impl;
  impl.name = "gsmth-c";
  impl.target = platform::PeClass::kEmbeddedProcessor;
  impl.base_exec_time_us = 760.0;
  impl.base_power_w = 0.38;
  return impl;
}

/// Pareto front over (AvgExT, ErrProb) of all CLR configurations whose DVFS
/// mode equals `dvfs_index`, evaluated with `analyzer` on `pe`; sorted by
/// time.
std::vector<std::pair<double, double>> front_for_dvfs(
    const reliability::TaskAnalyzer& analyzer, const platform::PeType& pe,
    std::size_t dvfs_index) {
  std::vector<reliability::TaskMetrics> metrics;
  const auto configs = analyzer.space().enumerate(
      pe.dvfs.size(), reliability::ClrAxes{true, true, true, false});
  for (reliability::ClrConfig config : configs) {
    config.dvfs = dvfs_index;
    metrics.push_back(analyzer.evaluate(subject_task(), pe, config));
  }

  std::vector<moea::Objectives> points;
  points.reserve(metrics.size());
  for (const auto& m : metrics) {
    points.push_back({m.avg_exec_time_us, m.error_prob});
  }
  std::vector<std::pair<double, double>> front;
  for (std::size_t i : moea::pareto_front_indices(points)) {
    front.emplace_back(points[i][0], points[i][1]);
  }
  std::sort(front.begin(), front.end());
  return front;
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_fig6_tdse", "Fig. 6: task-level Pareto fronts across DVFS modes and implicit masking");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  const platform::Architecture arch = platform::Architecture::paper_default();
  const platform::PeType& pe = arch.type(0);

  // ---------------- Fig. 6a: DVFS-mode fronts ----------------
  std::printf("=== Fig. 6a: task-level Pareto fronts per DVFS mode ===\n");
  std::vector<std::pair<std::string, std::vector<moea::Objectives>>> series_a;
  {
    const reliability::TaskAnalyzer analyzer =
        reliability::TaskAnalyzer::paper_default();
    for (std::size_t d = 0; d < pe.dvfs.size(); ++d) {
      const auto front = front_for_dvfs(analyzer, pe, d);
      std::printf("-- %s (%zu Pareto points)\n", pe.dvfs.mode(d).name.c_str(),
                  front.size());
      util::TextTable table;
      table.header({"AvgExT (us)", "ErrProb (%)"});
      std::vector<moea::Objectives> csv_points;
      for (const auto& [time, err] : front) {
        table.row(time, 100.0 * err);
        csv_points.push_back({time, 100.0 * err});
      }
      table.print(std::cout);
      series_a.emplace_back(pe.dvfs.mode(d).name, std::move(csv_points));
    }
  }
  const std::string path_a = core::write_fronts_csv(
      "fig6a_dvfs_fronts.csv", series_a, {"avg_exec_time_us", "err_prob_pct"});
  std::printf("[wrote %s]\n\n", path_a.c_str());

  // ---------------- Fig. 6b: implicit-masking sweep ----------------
  std::printf("=== Fig. 6b: Pareto fronts vs implicit SSW masking ===\n");
  std::vector<std::pair<std::string, std::vector<moea::Objectives>>> series_b;
  for (double mask : {0.0, 0.05, 0.10, 0.20}) {
    reliability::TaskAnalyzer analyzer =
        reliability::TaskAnalyzer::paper_default();
    analyzer.set_implicit_masking_override(mask);
    // The figure's time range corresponds to the mid (600 MHz) mode.
    const auto front = front_for_dvfs(analyzer, pe, 1);
    std::printf("-- ImplMask = %.0f%% (%zu Pareto points)\n", 100.0 * mask,
                front.size());
    util::TextTable table;
    table.header({"AvgExT (us)", "ErrProb (%)"});
    std::vector<moea::Objectives> csv_points;
    for (const auto& [time, err] : front) {
      table.row(time, 100.0 * err);
      csv_points.push_back({time, 100.0 * err});
    }
    table.print(std::cout);
    series_b.emplace_back("ImplMask=" + std::to_string(int(100 * mask)) + "%",
                          std::move(csv_points));
  }
  const std::string path_b =
      core::write_fronts_csv("fig6b_implicit_masking.csv", series_b,
                             {"avg_exec_time_us", "err_prob_pct"});
  std::printf("[wrote %s]\n", path_b.c_str());
  return 0;
}
