// Reproduces Fig. 7 and TABLE V — cross-layer optimization vs the
// "other-layer-agnostic" combination of single-layer optimizations.
//
//   Fig. 7:   for a 20-task synthetic application, the Pareto fronts of the
//             CLR flow, the four single-layer runs (DVFS / HWRel / SSWRel /
//             ASWRel only) and their dominant union ("Agnostic").
//   TABLE V:  % increase in Pareto-front hypervolume of CLR over Agnostic
//             for applications of 10..100 tasks.
//
// Setup follows Section VI-A: synthetic TGFF-style graphs with 10 task
// types on the 6-PE platform, GA with pc=0.8 / pm=0.05 / tournament 5,
// makespan + application-error-probability objectives, and the QoS spec of
// Eq. 5 (a 99% functional-reliability floor under the high-fault operating
// environment the paper motivates). Where a single-layer flow cannot meet
// the spec at all its front is empty — the same effect behind the paper's
// 24664% outlier at 10 tasks.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "app/characterizer.hpp"
#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

constexpr std::uint64_t kAppSeedBase = 1000;
constexpr std::uint64_t kGaSeed = 11;

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_fig7_table5_agnostic", "Fig. 7 / TABLE V: CLR vs single-layer and reliability-agnostic baselines");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::DseOptions options = core::bench_options(kGaSeed);

  // ---------------- Fig. 7: fronts for the 20-task application ----------------
  std::printf("=== Fig. 7: CLR vs single-layer fronts (20 tasks) ===\n");
  {
    const app::Application syn =
        app::make_synthetic_application(20, 10, kAppSeedBase + 20);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    const core::DseOutcome clr = dse.run_proposed(options);
    const core::AgnosticOutcome agnostic = core::run_agnostic(dse, options);

    std::vector<std::pair<std::string, std::vector<moea::Objectives>>> series;
    series.emplace_back("CLR", clr.front);
    series.emplace_back("Agnostic", agnostic.combined_front);
    for (std::size_t i = 0; i < agnostic.layers.size(); ++i) {
      series.emplace_back(core::to_string(agnostic.layers[i]),
                          agnostic.per_layer[i].front);
    }
    for (const auto& [name, front] : series) {
      std::printf("-- %s (%zu points)\n", name.c_str(), front.size());
      util::TextTable table;
      table.header({"Avg makespan (us)", "App error probability"});
      for (const auto& p : front) table.row(p[0], p[1]);
      table.print(std::cout);
    }
    const std::string path = core::write_fronts_csv(
        "fig7_clr_vs_agnostic.csv", series,
        {"avg_makespan_us", "app_error_prob"});
    std::printf("[wrote %s]\n\n", path.c_str());
  }

  // ---------------- TABLE V: hypervolume gains over sizes ----------------
  std::printf(
      "=== TABLE V: %% increase in hypervolume, CLR over Agnostic ===\n");
  util::TextTable table;
  table.header({"#Tasks", "% increase in hypervolume", "CLR pts",
                "Agnostic pts"});
  std::filesystem::create_directories("results");
  util::CsvWriter csv("results/table5_clr_vs_agnostic.csv");
  csv.row({"tasks", "hv_gain_pct", "clr_points", "agnostic_points"});

  for (std::size_t tasks : core::bench_task_counts()) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    const core::DseOutcome clr = dse.run_proposed(options);
    const core::AgnosticOutcome agnostic = core::run_agnostic(dse, options);

    std::string gain_text = "inf (agnostic infeasible)";
    double gain = std::numeric_limits<double>::infinity();
    if (!agnostic.combined_front.empty() && !clr.front.empty()) {
      const auto ref =
          moea::common_reference({clr.front, agnostic.combined_front});
      gain = moea::hypervolume_gain_percent(clr.front,
                                            agnostic.combined_front, ref);
      gain_text = util::format_compact(gain);
    }
    table.row(tasks, gain_text, clr.front.size(),
              agnostic.combined_front.size());
    csv.field(tasks)
        .field(gain)
        .field(clr.front.size())
        .field(agnostic.combined_front.size());
    csv.end_row();
  }
  table.print(std::cout);
  std::printf("[wrote results/table5_clr_vs_agnostic.csv]\n");
  return 0;
}
