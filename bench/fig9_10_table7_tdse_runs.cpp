// Reproduces Fig. 9, Fig. 10 and TABLE VII — the effect of the task-level
// DSE objective set on system-level result quality.
//
//   Fig. 9:    number of task-level Pareto implementations per task type for
//              three tDSE executions with growing objective sets
//              (tDSE_1: time+errprob, tDSE_2: +MTTF+energy,
//               tDSE_3: +power+peak-temp) — more objectives keep more points.
//   Fig. 10:   Pareto fronts of proposed_k and pfCLR_k (k = 1..3) for a
//              30-task application; quality degrades as the implementation
//              count grows, the proposed flow degrades least.
//   TABLE VII: % increase in hypervolume over pfCLR_3 for both flows and
//              all three tDSE runs across 10..100 tasks.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

constexpr std::uint64_t kAppSeedBase = 1000;
constexpr std::uint64_t kGaSeed = 11;

core::DseOptions options_for_run(int tdse_run) {
  core::DseOptions options = core::bench_options(kGaSeed);
  options.tdse_objectives = core::TdseObjectives::tdse_run(tdse_run);
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_fig9_10_table7_tdse_runs", "Fig. 9/10, TABLE VII: tDSE objective-set sweeps");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  const platform::Architecture arch = platform::Architecture::paper_default();

  // ---------------- Fig. 9: Pareto-implementation counts ----------------
  std::printf(
      "=== Fig. 9: task-level Pareto implementations per task type ===\n");
  {
    // The ten synthetic task types (SYN_0..SYN_9), characterized once.
    util::Rng rng(kAppSeedBase);
    const auto impls =
        app::characterize_types(10, app::CharacterizerOptions{}, rng);
    const core::Tdse tdse(core::bench_system_analyzer());

    util::TextTable table;
    table.header({"Task type", "tDSE_1", "tDSE_2", "tDSE_3"});
    std::filesystem::create_directories("results");
    util::CsvWriter csv("results/fig9_pareto_impl_counts.csv");
    csv.row({"task_type", "tdse_1", "tdse_2", "tdse_3"});

    for (std::size_t type = 0; type < 10; ++type) {
      std::vector<std::size_t> counts;
      for (int run = 1; run <= 3; ++run) {
        const auto result = tdse.run(impls[type], arch,
                                     core::TdseObjectives::tdse_run(run));
        counts.push_back(result.pareto.size());
      }
      const std::string name = "SYN_" + std::to_string(type);
      table.row(name, counts[0], counts[1], counts[2]);
      csv.field(name).field(counts[0]).field(counts[1]).field(counts[2]);
      csv.end_row();
    }
    table.print(std::cout);
    std::printf("[wrote results/fig9_pareto_impl_counts.csv]\n\n");
  }

  // ---------------- Fig. 10: fronts for the 30-task application ----------------
  std::printf(
      "=== Fig. 10: proposed_k vs pfCLR_k fronts (30 tasks, k = 1..3) ===\n");
  {
    const app::Application syn =
        app::make_synthetic_application(30, 10, kAppSeedBase + 30);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    std::vector<std::pair<std::string, std::vector<moea::Objectives>>> series;
    for (int run = 1; run <= 3; ++run) {
      const core::DseOptions options = options_for_run(run);
      const auto tdse = dse.run_tdse(options);
      series.emplace_back("pfCLR_" + std::to_string(run),
                          dse.run_pfclr(options, tdse).front);
      series.emplace_back("proposed_" + std::to_string(run),
                          dse.run_proposed(options, tdse).front);
    }
    for (const auto& [name, front] : series) {
      std::printf("-- %s (%zu points)\n", name.c_str(), front.size());
      util::TextTable table;
      table.header({"Avg makespan (us)", "App error probability"});
      for (const auto& p : front) table.row(p[0], p[1]);
      table.print(std::cout);
    }
    const std::string path = core::write_fronts_csv(
        "fig10_tdse_run_fronts.csv", series,
        {"avg_makespan_us", "app_error_prob"});
    std::printf("[wrote %s]\n\n", path.c_str());
  }

  // ---------------- TABLE VII: gains over pfCLR_3 across sizes ----------------
  std::printf(
      "=== TABLE VII: %% increase in hypervolume over pfCLR_3 ===\n");
  util::TextTable table;
  table.header({"#Tasks", "proposed_1", "pfCLR_1", "proposed_2", "pfCLR_2",
                "proposed_3", "pfCLR_3"});
  util::CsvWriter csv("results/table7_gain_over_pfclr3.csv");
  csv.row({"tasks", "proposed_1", "pfclr_1", "proposed_2", "pfclr_2",
           "proposed_3", "pfclr_3"});

  for (std::size_t tasks : core::bench_task_counts()) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, kAppSeedBase + tasks);
    const core::DseMethodology dse(syn, arch, core::bench_system_analyzer());

    // Column order mirrors the paper: proposed_k, pfCLR_k for k = 1..3.
    std::vector<std::vector<moea::Objectives>> fronts;  // 6 fronts
    for (int run = 1; run <= 3; ++run) {
      const core::DseOptions options = options_for_run(run);
      const auto tdse = dse.run_tdse(options);
      fronts.push_back(dse.run_proposed(options, tdse).front);
      fronts.push_back(dse.run_pfclr(options, tdse).front);
    }
    const std::vector<moea::Objectives>& baseline = fronts[5];  // pfCLR_3

    std::vector<std::string> cells{std::to_string(tasks)};
    csv.field(tasks);
    if (baseline.empty()) {
      for (int i = 0; i < 6; ++i) {
        cells.push_back("n/a");
        csv.field("n/a");
      }
    } else {
      const auto ref = moea::common_reference(
          {fronts[0], fronts[1], fronts[2], fronts[3], fronts[4], fronts[5]});
      for (const auto& front : fronts) {
        if (front.empty()) {
          cells.push_back("inf");
          csv.field("inf");
          continue;
        }
        const double gain =
            moea::hypervolume_gain_percent(front, baseline, ref);
        cells.push_back(util::format_compact(gain));
        csv.field(gain);
      }
    }
    table.add_row(cells);
    csv.end_row();
  }
  table.print(std::cout);
  std::printf("[wrote results/table7_gain_over_pfclr3.csv]\n");
  return 0;
}
