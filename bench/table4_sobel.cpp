// Reproduces TABLE IV — the number of task-level Pareto-front design points
// of each Sobel task type under the growing objective ladder:
//
//   I   Average execution time
//   II  I  + Error probability
//   III II + MTTF
//   IV  III + Energy
//   V   IV + Power dissipation
//   VI  V  + Peak temperature
//
// Expected shape: row I has one point per PE type (the architecture model
// for this experiment exposes two PE types — embedded processor and
// reconfigurable region), counts grow through row III and stay constant
// afterwards (MTTF, energy, power and peak temperature all derive from the
// same power/time factors, so they add no new dominant points).
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "app/sobel.hpp"
#include "core/experiment.hpp"
#include "core/tdse.hpp"
#include "platform/architecture.hpp"
#include "util/csv.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

using namespace clrearly;

/// TABLE IV's architecture model: one embedded-processor type and one
/// reconfigurable-region type ("one implementation for each of the two
/// PETypes").
platform::Architecture two_type_architecture() {
  const platform::Architecture full = platform::Architecture::paper_default();
  platform::Architecture arch;
  const std::size_t proc = arch.add_type(full.type(0));
  const std::size_t fabric = arch.add_type(full.type(2));
  arch.add_pe(proc);
  arch.add_pe(fabric);
  return arch;
}

}  // namespace

int main(int argc, char** argv) {
  clrearly::util::ArgParser args("bench_table4_sobel", "TABLE IV: Pareto-front design points per Sobel task type");
  if (!clrearly::util::parse_standard_args(args, argc, argv,
                                          clrearly::util::LogLevel::Warn)) {
    return 0;
  }
  std::printf(
      "=== TABLE IV: Pareto-front design points per Sobel task type ===\n");

  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = two_type_architecture();
  const core::Tdse tdse(reliability::TaskAnalyzer::paper_default());

  static const char* kRowLabels[] = {
      "I   AvgExT", "II  +ErrProb", "III +MTTF",
      "IV  +Energy", "V   +Power", "VI  +PeakTemp"};
  static const char* kTypeNames[] = {"GScale", "GSmth", "SobGrad", "CombThr"};

  util::TextTable table;
  table.header({"Optimization Objectives", "GScale", "GSmth", "SobGrad",
                "CombThr"});

  std::filesystem::create_directories("results");
  util::CsvWriter csv("results/table4_sobel_pareto_counts.csv");
  csv.row({"row", "objectives", "GScale", "GSmth", "SobGrad", "CombThr"});

  for (int row = 1; row <= 6; ++row) {
    const core::TdseObjectives objectives =
        core::TdseObjectives::table4_row(row);
    std::vector<std::size_t> counts;
    for (std::size_t type = 0; type < 4; ++type) {
      const core::TdseResult result =
          tdse.run(sobel.impls[type], arch, objectives);
      counts.push_back(result.pareto.size());
    }
    table.row(kRowLabels[row - 1], counts[0], counts[1], counts[2],
              counts[3]);
    csv.field(static_cast<long long>(row)).field(kRowLabels[row - 1]);
    for (std::size_t c : counts) csv.field(c);
    csv.end_row();
  }
  table.print(std::cout);
  std::printf("[wrote results/table4_sobel_pareto_counts.csv]\n");

  std::printf(
      "\n(shape check: row I = one point per PE type; counts stabilize from "
      "row III on)\n");
  (void)kTypeNames;
  return 0;
}
