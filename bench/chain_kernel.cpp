// Chain-kernel benchmark: the old eager analysis path (named-state
// ChainBuilder construction + full fundamental-matrix materialization, what
// every cache-miss chain solve paid before the single-solve kernel) against
// the new path (dense workspace assembly + one adjoint solve per chain).
// Sweeps the interval count — transient-state count t = 7n - 1 — and reports
// per-evaluation wall time and heap-allocation counts for both paths, plus
// the differential error between them. Emits BENCH_chain.json;
// docs/PERFORMANCE.md ("Chain kernel") explains the fields.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/cli.hpp"
#include "util/cpu_features.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

// ---- Heap-allocation counter -----------------------------------------------
// Bench-local global operator new/delete overrides: every heap allocation in
// the process bumps one relaxed atomic. This is how the "allocation-free once
// warm" claim of the workspace kernel is measured rather than asserted.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// A representative task configuration; `salt` perturbs the timing inputs so
/// consecutive evaluations are distinct chains, as in a real DSE sweep.
reliability::ClrChainParams make_params(std::size_t intervals,
                                        std::size_t salt) {
  reliability::ClrChainParams p;
  p.exec_time_us = 100.0 + static_cast<double>(salt % 17);
  p.lambda_per_us = 1e-4;
  p.hw_masking = 0.4;
  p.implicit_ssw_masking = 0.3;
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.95;
  p.asw_masking = 0.5;
  p.intervals = intervals;
  p.detection_time_us = 0.5;
  p.tolerance_time_us = 2.0;
  p.checkpoint_time_us = 1.0;
  p.checkpoint_error_prob = 1e-5;
  return p;
}

/// The pre-kernel analysis: ChainBuilder construction and the formerly-eager
/// full matrices, materialized through the now-lazy accessors. This is what
/// one cache-miss evaluation cost before the single-solve kernel.
reliability::ClrChainAnalysis analyze_old(
    const reliability::ClrChainParams& params) {
  reliability::ClrChainAnalysis out;
  const double n = static_cast<double>(params.intervals);
  out.min_exec_time_us = params.exec_time_us + n * params.detection_time_us +
                         (n - 1.0) * params.checkpoint_time_us;
  const markov::AbsorbingChain timing =
      reliability::build_chain_reference(params, /*functional=*/false);
  timing.fundamental();  // the old constructor always built N ...
  out.avg_exec_time_us = timing.expected_time(0);
  out.exec_time_stddev_us = std::sqrt(std::max(timing.time_variance(0), 0.0));
  const markov::AbsorbingChain functional =
      reliability::build_chain_reference(params, /*functional=*/true);
  functional.fundamental();  // ... and B = N R for both chains.
  functional.absorption_probabilities();
  out.error_prob =
      functional.absorption_probability(0, reliability::kAbsorbError);
  return out;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

/// Like make_params but with a continuous timing perturbation, so every chain
/// in a batched workload is a distinct system. The %17 salt of make_params
/// would leave only 17 unique keys and the batch path's dedupe would solve a
/// handful of chains while the scalar loop solves thousands — a fake speedup.
reliability::ClrChainParams make_dense_params(std::size_t intervals,
                                              std::size_t i) {
  reliability::ClrChainParams p = make_params(intervals, 0);
  p.exec_time_us = 100.0 + 1e-3 * static_cast<double>(i % 65536);
  return p;
}

struct PathStats {
  double ns_per_eval = 0.0;
  double allocs_per_eval = 0.0;
};

/// Best-of-`reps` timing of `evals` consecutive analyses through `fn`, with
/// the allocation count of the final (warmest) rep.
template <typename Fn>
PathStats measure(Fn&& fn, std::size_t intervals, std::size_t evals,
                  int reps) {
  PathStats stats;
  double best = 1e300;
  std::uint64_t allocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t alloc_start = allocations_now();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < evals; ++i) fn(make_params(intervals, i));
    best = std::min(best, seconds_since(start));
    allocs = allocations_now() - alloc_start;
  }
  stats.ns_per_eval = best * 1e9 / static_cast<double>(evals);
  stats.allocs_per_eval =
      static_cast<double>(allocs) / static_cast<double>(evals);
  return stats;
}

/// One batched configuration: lane width + the SIMD level forced while
/// timing it. The scalar lane ("w1" at kScalar) is the per-chain baseline the
/// speedups are measured against.
struct BatchedConfig {
  std::size_t width;
  util::SimdLevel level;
};

/// Best-of-`reps` wall time for one analyze_clr_chain_batch call over
/// `params`, with the memo cache bypassed and `level` forced for dispatch.
double time_batch(const std::vector<reliability::ClrChainParams>& params,
                  std::size_t width, util::SimdLevel level, int reps) {
  reliability::ChainBatchOptions opt;
  opt.group_width = width;
  opt.use_cache = false;
  util::force_simd_level(level);
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    reliability::analyze_clr_chain_batch(params, opt);
    best = std::min(best, seconds_since(start));
  }
  util::reset_simd_level();
  return best;
}

double max_analysis_err(const reliability::ClrChainAnalysis& a,
                        const reliability::ClrChainAnalysis& b) {
  return std::max({rel_err(a.avg_exec_time_us, b.avg_exec_time_us),
                   rel_err(a.exec_time_stddev_us, b.exec_time_stddev_us),
                   rel_err(a.error_prob, b.error_prob)});
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_chain_kernel",
                       "Markov chain analysis: eager full-inverse path vs the "
                       "single-solve workspace kernel (emits BENCH_chain.json)");
  args.option("max-intervals", "largest interval count to sweep", "5")
      .option("evals", "analyses per timed rep", "2000")
      .option("out", "output JSON path", "BENCH_chain.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  std::size_t max_intervals = args.get_uint("max-intervals");
  std::size_t evals = args.get_uint("evals");
  int reps = 5;
  if (core::fast_mode()) {
    evals = std::min<std::size_t>(evals, 200);
    reps = 2;
  }
  if (max_intervals == 0) max_intervals = 1;

  std::printf("=== chain kernel: eager full-inverse vs single-solve, "
              "%zu evals x %d reps ===\n",
              evals, reps);

  util::JsonArray sizes;
  double max_err = 0.0;
  double worst_speedup = 1e300;
  for (std::size_t n = 1; n <= max_intervals; ++n) {
    // Differential check first: both paths must agree on every output.
    for (std::size_t i = 0; i < 16; ++i) {
      const reliability::ClrChainParams p = make_params(n, i);
      const reliability::ClrChainAnalysis a = analyze_old(p);
      const reliability::ClrChainAnalysis b =
          reliability::analyze_clr_chain_uncached(p);
      max_err = std::max({max_err,
                          rel_err(a.avg_exec_time_us, b.avg_exec_time_us),
                          rel_err(a.exec_time_stddev_us, b.exec_time_stddev_us),
                          rel_err(a.error_prob, b.error_prob)});
    }

    const PathStats old_path = measure(
        [](const reliability::ClrChainParams& p) { analyze_old(p); }, n,
        evals, reps);
    const PathStats new_path = measure(
        [](const reliability::ClrChainParams& p) {
          reliability::analyze_clr_chain_uncached(p);
        },
        n, evals, reps);

    const double speedup = old_path.ns_per_eval / new_path.ns_per_eval;
    worst_speedup = std::min(worst_speedup, speedup);
    const std::size_t t = 7 * n - 1;
    std::printf("intervals %zu (t=%2zu): old %8.0f ns/eval (%5.1f allocs), "
                "new %8.0f ns/eval (%5.2f allocs) -> %.2fx\n",
                n, t, old_path.ns_per_eval, old_path.allocs_per_eval,
                new_path.ns_per_eval, new_path.allocs_per_eval, speedup);

    util::JsonObject row;
    row["intervals"] = n;
    row["transient_states"] = t;
    row["old_ns_per_eval"] = old_path.ns_per_eval;
    row["new_ns_per_eval"] = new_path.ns_per_eval;
    row["speedup"] = speedup;
    row["old_allocs_per_eval"] = old_path.allocs_per_eval;
    row["new_allocs_per_eval"] = new_path.allocs_per_eval;
    sizes.push_back(util::JsonValue(std::move(row)));
  }

  std::printf("max relative error old vs new: %.3g\n", max_err);
  const bool agree = max_err <= 1e-9;
  if (!agree) std::printf("DIVERGED: differential error above 1e-9\n");

  // ---- Batched kernel section ----------------------------------------------
  // Same chains through analyze_clr_chain_batch, dispatch pinned per
  // configuration: the production lane width for an AVX2-only machine and
  // for the detected level (these coincide when the host caps at AVX2).
  // Baseline is the per-chain scalar kernel over the identical
  // (dense-distinct) parameter set, cache bypassed on both sides so the
  // comparison is solve throughput, not memoization.
  const util::SimdLevel detected = util::detected_simd_level();
  const util::SimdLevel avx2_level =
      std::min(detected, util::SimdLevel::kAvx2);
  std::vector<BatchedConfig> configs;
  configs.push_back(
      {markov::preferred_batch_width(avx2_level), avx2_level});
  if (detected != avx2_level) {
    configs.push_back({markov::preferred_batch_width(detected), detected});
  }

  std::printf("=== batched kernel (detected SIMD: %s) ===\n",
              util::to_string(detected));

  util::JsonArray batched;
  double batched_max_err = 0.0;
  double batched_worst_speedup = 1e300;
  for (std::size_t n = 1; n <= max_intervals; ++n) {
    std::vector<reliability::ClrChainParams> params;
    params.reserve(evals);
    for (std::size_t i = 0; i < evals; ++i) {
      params.push_back(make_dense_params(n, i));
    }

    std::vector<reliability::ClrChainAnalysis> reference;
    reference.reserve(evals);
    double scalar_best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      reference.clear();
      const auto start = Clock::now();
      for (const reliability::ClrChainParams& p : params) {
        reference.push_back(reliability::analyze_clr_chain_uncached(p));
      }
      scalar_best = std::min(scalar_best, seconds_since(start));
    }
    const double scalar_ns =
        scalar_best * 1e9 / static_cast<double>(evals);

    const std::size_t t = 7 * n - 1;
    std::printf("intervals %zu (t=%2zu): scalar %7.0f ns/chain", n, t,
                scalar_ns);
    double best_speedup = 0.0;
    for (const BatchedConfig& cfg : configs) {
      // Correctness before timing: every lane must match the scalar kernel.
      reliability::ChainBatchOptions opt;
      opt.group_width = cfg.width;
      opt.use_cache = false;
      util::force_simd_level(cfg.level);
      const std::vector<reliability::ClrChainAnalysis> got =
          reliability::analyze_clr_chain_batch(params, opt);
      util::reset_simd_level();
      for (std::size_t i = 0; i < evals; ++i) {
        batched_max_err =
            std::max(batched_max_err, max_analysis_err(reference[i], got[i]));
      }

      const double secs = time_batch(params, cfg.width, cfg.level, reps);
      const double ns = secs * 1e9 / static_cast<double>(evals);
      const double speedup = scalar_ns / ns;
      best_speedup = std::max(best_speedup, speedup);
      const std::size_t batches = (evals + cfg.width - 1) / cfg.width;
      const double pad_pct = 100.0 *
                             static_cast<double>(batches * cfg.width - evals) /
                             static_cast<double>(batches * cfg.width);
      std::printf(" | w%zu@%s %7.0f ns (%4.1fx, %.1f%% pad)", cfg.width,
                  util::to_string(cfg.level), ns, speedup, pad_pct);

      util::JsonObject row;
      row["intervals"] = n;
      row["transient_states"] = t;
      row["width"] = cfg.width;
      row["simd"] = std::string(util::to_string(cfg.level));
      row["scalar_ns_per_chain"] = scalar_ns;
      row["ns_per_chain"] = ns;
      row["chains_per_sec"] = 1e9 / ns;
      row["speedup_vs_scalar"] = speedup;
      row["pad_waste_pct"] = pad_pct;
      batched.push_back(util::JsonValue(std::move(row)));
    }
    std::printf("\n");
    batched_worst_speedup = std::min(batched_worst_speedup, best_speedup);
  }

  std::printf("max relative error batched vs scalar: %.3g\n", batched_max_err);
  const bool batched_agree = batched_max_err <= 1e-9;
  if (!batched_agree) {
    std::printf("DIVERGED: batched differential error above 1e-9\n");
  }
  if (batched_worst_speedup < 2.0) {
    // Soft gate: CI prints the warning but the run still succeeds — shared
    // runners are too noisy to hard-fail on throughput.
    std::printf("WARNING: batched speedup %.2fx below the 2x soft gate\n",
                batched_worst_speedup);
  }

  util::JsonObject report;
  report["benchmark"] = "chain_kernel";
  report["evals_per_rep"] = evals;
  report["reps"] = reps;
  report["sizes"] = std::move(sizes);
  report["max_rel_err"] = max_err;
  report["worst_speedup"] = worst_speedup;
  report["agree"] = agree;
  report["simd_detected"] = std::string(util::to_string(detected));
  report["batched"] = std::move(batched);
  report["batched_max_rel_err"] = batched_max_err;
  report["batched_worst_speedup"] = batched_worst_speedup;
  report["batched_agree"] = batched_agree;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return (agree && batched_agree) ? 0 : 1;
}
