// Chain-kernel benchmark: the old eager analysis path (named-state
// ChainBuilder construction + full fundamental-matrix materialization, what
// every cache-miss chain solve paid before the single-solve kernel) against
// the new path (dense workspace assembly + one adjoint solve per chain).
// Sweeps the interval count — transient-state count t = 7n - 1 — and reports
// per-evaluation wall time and heap-allocation counts for both paths, plus
// the differential error between them. Emits BENCH_chain.json;
// docs/PERFORMANCE.md ("Chain kernel") explains the fields.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

// ---- Heap-allocation counter -----------------------------------------------
// Bench-local global operator new/delete overrides: every heap allocation in
// the process bumps one relaxed atomic. This is how the "allocation-free once
// warm" claim of the workspace kernel is measured rather than asserted.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace clrearly;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t allocations_now() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// A representative task configuration; `salt` perturbs the timing inputs so
/// consecutive evaluations are distinct chains, as in a real DSE sweep.
reliability::ClrChainParams make_params(std::size_t intervals,
                                        std::size_t salt) {
  reliability::ClrChainParams p;
  p.exec_time_us = 100.0 + static_cast<double>(salt % 17);
  p.lambda_per_us = 1e-4;
  p.hw_masking = 0.4;
  p.implicit_ssw_masking = 0.3;
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.95;
  p.asw_masking = 0.5;
  p.intervals = intervals;
  p.detection_time_us = 0.5;
  p.tolerance_time_us = 2.0;
  p.checkpoint_time_us = 1.0;
  p.checkpoint_error_prob = 1e-5;
  return p;
}

/// The pre-kernel analysis: ChainBuilder construction and the formerly-eager
/// full matrices, materialized through the now-lazy accessors. This is what
/// one cache-miss evaluation cost before the single-solve kernel.
reliability::ClrChainAnalysis analyze_old(
    const reliability::ClrChainParams& params) {
  reliability::ClrChainAnalysis out;
  const double n = static_cast<double>(params.intervals);
  out.min_exec_time_us = params.exec_time_us + n * params.detection_time_us +
                         (n - 1.0) * params.checkpoint_time_us;
  const markov::AbsorbingChain timing =
      reliability::build_chain_reference(params, /*functional=*/false);
  timing.fundamental();  // the old constructor always built N ...
  out.avg_exec_time_us = timing.expected_time(0);
  out.exec_time_stddev_us = std::sqrt(std::max(timing.time_variance(0), 0.0));
  const markov::AbsorbingChain functional =
      reliability::build_chain_reference(params, /*functional=*/true);
  functional.fundamental();  // ... and B = N R for both chains.
  functional.absorption_probabilities();
  out.error_prob =
      functional.absorption_probability(0, reliability::kAbsorbError);
  return out;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

struct PathStats {
  double ns_per_eval = 0.0;
  double allocs_per_eval = 0.0;
};

/// Best-of-`reps` timing of `evals` consecutive analyses through `fn`, with
/// the allocation count of the final (warmest) rep.
template <typename Fn>
PathStats measure(Fn&& fn, std::size_t intervals, std::size_t evals,
                  int reps) {
  PathStats stats;
  double best = 1e300;
  std::uint64_t allocs = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const std::uint64_t alloc_start = allocations_now();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < evals; ++i) fn(make_params(intervals, i));
    best = std::min(best, seconds_since(start));
    allocs = allocations_now() - alloc_start;
  }
  stats.ns_per_eval = best * 1e9 / static_cast<double>(evals);
  stats.allocs_per_eval =
      static_cast<double>(allocs) / static_cast<double>(evals);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_chain_kernel",
                       "Markov chain analysis: eager full-inverse path vs the "
                       "single-solve workspace kernel (emits BENCH_chain.json)");
  args.option("max-intervals", "largest interval count to sweep", "5")
      .option("evals", "analyses per timed rep", "2000")
      .option("out", "output JSON path", "BENCH_chain.json");
  if (!util::parse_standard_args(args, argc, argv, util::LogLevel::Warn)) {
    return 0;
  }

  std::size_t max_intervals = args.get_uint("max-intervals");
  std::size_t evals = args.get_uint("evals");
  int reps = 5;
  if (core::fast_mode()) {
    evals = std::min<std::size_t>(evals, 200);
    reps = 2;
  }
  if (max_intervals == 0) max_intervals = 1;

  std::printf("=== chain kernel: eager full-inverse vs single-solve, "
              "%zu evals x %d reps ===\n",
              evals, reps);

  util::JsonArray sizes;
  double max_err = 0.0;
  double worst_speedup = 1e300;
  for (std::size_t n = 1; n <= max_intervals; ++n) {
    // Differential check first: both paths must agree on every output.
    for (std::size_t i = 0; i < 16; ++i) {
      const reliability::ClrChainParams p = make_params(n, i);
      const reliability::ClrChainAnalysis a = analyze_old(p);
      const reliability::ClrChainAnalysis b =
          reliability::analyze_clr_chain_uncached(p);
      max_err = std::max({max_err,
                          rel_err(a.avg_exec_time_us, b.avg_exec_time_us),
                          rel_err(a.exec_time_stddev_us, b.exec_time_stddev_us),
                          rel_err(a.error_prob, b.error_prob)});
    }

    const PathStats old_path = measure(
        [](const reliability::ClrChainParams& p) { analyze_old(p); }, n,
        evals, reps);
    const PathStats new_path = measure(
        [](const reliability::ClrChainParams& p) {
          reliability::analyze_clr_chain_uncached(p);
        },
        n, evals, reps);

    const double speedup = old_path.ns_per_eval / new_path.ns_per_eval;
    worst_speedup = std::min(worst_speedup, speedup);
    const std::size_t t = 7 * n - 1;
    std::printf("intervals %zu (t=%2zu): old %8.0f ns/eval (%5.1f allocs), "
                "new %8.0f ns/eval (%5.2f allocs) -> %.2fx\n",
                n, t, old_path.ns_per_eval, old_path.allocs_per_eval,
                new_path.ns_per_eval, new_path.allocs_per_eval, speedup);

    util::JsonObject row;
    row["intervals"] = n;
    row["transient_states"] = t;
    row["old_ns_per_eval"] = old_path.ns_per_eval;
    row["new_ns_per_eval"] = new_path.ns_per_eval;
    row["speedup"] = speedup;
    row["old_allocs_per_eval"] = old_path.allocs_per_eval;
    row["new_allocs_per_eval"] = new_path.allocs_per_eval;
    sizes.push_back(util::JsonValue(std::move(row)));
  }

  std::printf("max relative error old vs new: %.3g\n", max_err);
  const bool agree = max_err <= 1e-9;
  if (!agree) std::printf("DIVERGED: differential error above 1e-9\n");

  util::JsonObject report;
  report["benchmark"] = "chain_kernel";
  report["evals_per_rep"] = evals;
  report["reps"] = reps;
  report["sizes"] = std::move(sizes);
  report["max_rel_err"] = max_err;
  report["worst_speedup"] = worst_speedup;
  report["agree"] = agree;

  const std::string out = args.get("out");
  std::ofstream stream(out);
  stream << util::json_serialize(util::JsonValue(std::move(report))) << "\n";
  std::printf("[wrote %s]\n", out.c_str());
  return agree ? 0 : 1;
}
