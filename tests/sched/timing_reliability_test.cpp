// Tests for the timing-reliability extension: makespan spread along the
// critical path and the deadline-miss probability.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "app/sobel.hpp"
#include "platform/architecture.hpp"
#include "sched/qos.hpp"

namespace clrearly::sched {
namespace {

reliability::TaskMetrics metrics_with(double time, double stddev) {
  reliability::TaskMetrics m;
  m.avg_exec_time_us = time;
  m.min_exec_time_us = time;
  m.exec_time_stddev_us = stddev;
  m.avg_power_w = 0.5;
  m.mttf_hours = 1e5;
  m.eta_hours = 1e5;
  return m;
}

app::Application chain_app(std::size_t n) {
  app::Application a;
  for (std::size_t i = 0; i < n; ++i) {
    a.graph.add_task(0, "t" + std::to_string(i));
    if (i > 0) a.graph.add_edge(i - 1, i);
  }
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1e4;
  return a;
}

std::vector<std::size_t> iota_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(MakespanSpreadTest, ChainVariancesAdd) {
  const app::Application a = chain_app(3);
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions{{0, metrics_with(100.0, 3.0)},
                                      {1, metrics_with(100.0, 4.0)},
                                      {2, metrics_with(100.0, 12.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, iota_order(3));
  EXPECT_DOUBLE_EQ(qos.makespan_us, 300.0);
  EXPECT_NEAR(qos.makespan_stddev_us, std::sqrt(9.0 + 16.0 + 144.0), 1e-9);
}

TEST(MakespanSpreadTest, ParallelTasksFollowCriticalBranch) {
  // Two independent tasks on different PEs: only the longer one defines the
  // makespan and its spread.
  app::Application a;
  a.graph.add_task(0, "short");
  a.graph.add_task(0, "long");
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1e4;

  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions{{0, metrics_with(50.0, 40.0)},
                                      {1, metrics_with(200.0, 7.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, iota_order(2));
  EXPECT_DOUBLE_EQ(qos.makespan_us, 200.0);
  EXPECT_NEAR(qos.makespan_stddev_us, 7.0, 1e-9);
}

TEST(MakespanSpreadTest, PeContentionJoinsThePath) {
  // Independent tasks forced onto one PE: the chain of PE blocking makes
  // both variances count.
  app::Application a;
  a.graph.add_task(0, "a");
  a.graph.add_task(0, "b");
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1e4;

  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions{{0, metrics_with(100.0, 3.0)},
                                      {0, metrics_with(100.0, 4.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, iota_order(2));
  EXPECT_DOUBLE_EQ(qos.makespan_us, 200.0);
  EXPECT_NEAR(qos.makespan_stddev_us, 5.0, 1e-9);
}

TEST(MakespanSpreadTest, DeterministicTasksGiveZeroSpread) {
  const app::Application a = chain_app(2);
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions{{0, metrics_with(100.0, 0.0)},
                                      {1, metrics_with(100.0, 0.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, iota_order(2));
  EXPECT_DOUBLE_EQ(qos.makespan_stddev_us, 0.0);
}

TEST(MakespanSpreadTest, RealPipelineHasPositiveSpreadUnderFaults) {
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();

  std::vector<TaskDecision> decisions(5);
  for (std::size_t t = 0; t < 5; ++t) {
    // Retry configuration on the embedded cores: non-deterministic
    // execution time.
    decisions[t].pe = t % 4;  // processor PEs only
    decisions[t].metrics = analyzer.evaluate(
        sobel.impls[sobel.graph.task(t).type][0],
        arch.type_of(decisions[t].pe), reliability::ClrConfig{.ssw = 1});
  }
  const QosMetrics qos =
      estimate_qos(sobel, arch, decisions, iota_order(5));
  EXPECT_GT(qos.makespan_stddev_us, 0.0);
  EXPECT_LT(qos.makespan_stddev_us, qos.makespan_us);
}

// --- Deadline-miss probability -------------------------------------------------

TEST(DeadlineMissTest, NormalApproximationValues) {
  QosMetrics m;
  m.makespan_us = 1000.0;
  m.makespan_stddev_us = 100.0;
  EXPECT_NEAR(deadline_miss_probability(m, 1000.0), 0.5, 1e-12);
  EXPECT_NEAR(deadline_miss_probability(m, 1100.0), 0.15865525, 1e-6);
  EXPECT_NEAR(deadline_miss_probability(m, 900.0), 0.84134475, 1e-6);
  EXPECT_LT(deadline_miss_probability(m, 1300.0), 0.01);
}

TEST(DeadlineMissTest, ZeroSpreadIsAStep) {
  QosMetrics m;
  m.makespan_us = 1000.0;
  m.makespan_stddev_us = 0.0;
  EXPECT_DOUBLE_EQ(deadline_miss_probability(m, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(deadline_miss_probability(m, 999.9), 1.0);
}

TEST(DeadlineMissTest, RejectsBadDeadline) {
  EXPECT_THROW(deadline_miss_probability(QosMetrics{}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(deadline_miss_probability(QosMetrics{}, -5.0),
               std::invalid_argument);
}

TEST(DeadlineMissTest, MonotoneInDeadline) {
  QosMetrics m;
  m.makespan_us = 500.0;
  m.makespan_stddev_us = 50.0;
  double prev = 1.0;
  for (double deadline = 300.0; deadline <= 800.0; deadline += 50.0) {
    const double p = deadline_miss_probability(m, deadline);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

}  // namespace
}  // namespace clrearly::sched
