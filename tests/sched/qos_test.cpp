#include "sched/qos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "platform/architecture.hpp"

namespace clrearly::sched {
namespace {

// A two-task chain application with hand-pickable metrics.
app::Application two_task_app() {
  app::Application a;
  a.name = "two";
  a.graph.add_task(0, "t0", 1.0);
  a.graph.add_task(0, "t1", 3.0);
  a.graph.add_edge(0, 1);
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1.0e4;
  return a;
}

reliability::TaskMetrics metrics(double time, double err, double power,
                                 double mttf) {
  reliability::TaskMetrics m;
  m.min_exec_time_us = time;
  m.avg_exec_time_us = time;
  m.error_prob = err;
  m.avg_power_w = power;
  m.energy_uj = time * power;
  m.peak_temp_c = 60.0;
  m.eta_hours = mttf;
  m.mttf_hours = mttf;
  return m;
}

TEST(QosEstimateTest, Table3FormulasHandChecked) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();

  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.02, 0.5, 1.0e5)};
  decisions[1] = {1, metrics(200.0, 0.10, 0.8, 2.0e5)};

  const QosMetrics qos = estimate_qos(a, arch, decisions, {0, 1});

  // Chain of two tasks: makespan = 300.
  EXPECT_DOUBLE_EQ(qos.makespan_us, 300.0);

  // Functional reliability: zeta = {0.25, 0.75}.
  const double f = 0.25 * 0.98 + 0.75 * 0.90;
  EXPECT_NEAR(qos.functional_rel, f, 1e-12);
  EXPECT_NEAR(qos.error_prob, 1.0 - f, 1e-12);

  // Lifetime (Eq. 2): MTTFp = Papp / (ExT/MTTF) per used PE; min over PEs.
  const double mttf0 = 1.0e4 / (100.0 / 1.0e5);
  const double mttf1 = 1.0e4 / (200.0 / 2.0e5);
  EXPECT_NEAR(qos.mttf_hours, std::min(mttf0, mttf1), 1e-6);

  // Energy: sum of task energies.
  EXPECT_NEAR(qos.energy_uj, 100.0 * 0.5 + 200.0 * 0.8, 1e-9);

  // Sequential tasks: peak power is the larger one.
  EXPECT_DOUBLE_EQ(qos.peak_power_w, 0.8);
}

TEST(QosEstimateTest, ParallelTasksStackPower) {
  app::Application a;
  a.graph.add_task(0, "t0");
  a.graph.add_task(0, "t1");
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1e4;

  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1e5)};
  decisions[1] = {1, metrics(100.0, 0.0, 0.7, 1e5)};
  const QosMetrics qos = estimate_qos(a, arch, decisions, {0, 1});
  EXPECT_DOUBLE_EQ(qos.peak_power_w, 1.2);
  EXPECT_DOUBLE_EQ(qos.makespan_us, 100.0);
}

TEST(QosEstimateTest, SamePeStackingWorsensLifetime) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();

  std::vector<TaskDecision> spread(2);
  spread[0] = {0, metrics(100.0, 0.0, 0.5, 1e5)};
  spread[1] = {1, metrics(100.0, 0.0, 0.5, 1e5)};

  std::vector<TaskDecision> stacked = spread;
  stacked[1].pe = 0;

  const double l_spread = estimate_qos(a, arch, spread, {0, 1}).mttf_hours;
  const double l_stacked = estimate_qos(a, arch, stacked, {0, 1}).mttf_hours;
  EXPECT_LT(l_stacked, l_spread);
  EXPECT_NEAR(l_stacked, l_spread / 2.0, 1e-6);
}

TEST(QosEstimateTest, ScheduleOutParameterFilled) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1e5)};
  decisions[1] = {1, metrics(50.0, 0.0, 0.5, 1e5)};
  Schedule schedule;
  estimate_qos(a, arch, decisions, {0, 1}, &schedule);
  ASSERT_EQ(schedule.tasks.size(), 2u);
  EXPECT_DOUBLE_EQ(schedule.tasks[1].start_us, 100.0);
}

TEST(QosEstimateTest, ValidationErrors) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  // Decision count mismatch.
  EXPECT_THROW(estimate_qos(a, arch, {}, {0, 1}), std::invalid_argument);
  // Non-positive MTTF.
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1e5)};
  decisions[1] = {1, metrics(100.0, 0.0, 0.5, 1e5)};
  decisions[1].metrics.mttf_hours = 0.0;
  EXPECT_THROW(estimate_qos(a, arch, decisions, {0, 1}),
               std::invalid_argument);
}

// --- Per-PE MTTF and mission reliability ----------------------------------------

TEST(MissionReliabilityTest, PerPeMttfMatchesEq2) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1.0e5)};
  decisions[1] = {2, metrics(200.0, 0.0, 0.5, 2.0e5)};

  const auto mttf = per_pe_mttf(a, arch, decisions);
  ASSERT_EQ(mttf.size(), arch.num_pes());
  EXPECT_NEAR(mttf[0], 1.0e4 / (100.0 / 1.0e5), 1e-6);
  EXPECT_NEAR(mttf[2], 1.0e4 / (200.0 / 2.0e5), 1e-6);
  EXPECT_TRUE(std::isinf(mttf[1]));  // idle PE
}

TEST(MissionReliabilityTest, BoundsAndMonotonicity) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1.0e5)};
  decisions[1] = {1, metrics(100.0, 0.0, 0.5, 1.0e5)};

  EXPECT_DOUBLE_EQ(mission_reliability(a, arch, decisions, 0.0), 1.0);
  double prev = 1.0;
  for (double t : {1.0e5, 1.0e6, 1.0e7, 1.0e8}) {
    const double r = mission_reliability(a, arch, decisions, t);
    EXPECT_LT(r, prev);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
  EXPECT_THROW(mission_reliability(a, arch, decisions, -1.0),
               std::invalid_argument);
}

TEST(MissionReliabilityTest, SpreadingLoadImprovesSurvival) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> spread(2);
  spread[0] = {0, metrics(100.0, 0.0, 0.5, 1.0e5)};
  spread[1] = {1, metrics(100.0, 0.0, 0.5, 1.0e5)};
  std::vector<TaskDecision> stacked = spread;
  stacked[1].pe = 0;

  const double mission = 2.0e6;
  EXPECT_GT(mission_reliability(a, arch, spread, mission),
            mission_reliability(a, arch, stacked, mission));
}

TEST(MissionReliabilityTest, AtSinglePeMttfMatchesWeibullSurvival) {
  // One loaded PE: R_sys(t) must equal that PE's Weibull survival directly.
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions(2);
  decisions[0] = {0, metrics(100.0, 0.0, 0.5, 1.0e5)};
  decisions[1] = {0, metrics(100.0, 0.0, 0.5, 1.0e5)};

  const auto mttf = per_pe_mttf(a, arch, decisions);
  const double beta = arch.type_of(0).weibull_beta;
  const double eta = mttf[0] / std::tgamma(1.0 + 1.0 / beta);
  const double t = mttf[0];  // evaluate at the MTTF itself
  const double expected = reliability::Weibull(eta, beta).reliability(t);
  EXPECT_NEAR(mission_reliability(a, arch, decisions, t), expected, 1e-12);
}

// --- QosSpec -----------------------------------------------------------------

QosMetrics sample_metrics() {
  QosMetrics m;
  m.makespan_us = 1000.0;
  m.functional_rel = 0.95;
  m.error_prob = 0.05;
  m.mttf_hours = 5.0e4;
  m.peak_power_w = 2.0;
  m.energy_uj = 500.0;
  return m;
}

TEST(QosSpecTest, EmptySpecAlwaysFeasible) {
  EXPECT_TRUE(QosSpec{}.feasible(sample_metrics()));
  EXPECT_EQ(QosSpec{}.violation(sample_metrics()), 0.0);
}

TEST(QosSpecTest, UpperLimitsDetectOvershoot) {
  QosSpec spec;
  spec.max_makespan_us = 800.0;
  EXPECT_FALSE(spec.feasible(sample_metrics()));
  EXPECT_NEAR(spec.violation(sample_metrics()), 200.0 / 800.0, 1e-12);
  spec.max_makespan_us = 1000.0;
  EXPECT_TRUE(spec.feasible(sample_metrics()));
}

TEST(QosSpecTest, LowerLimitsDetectShortfall) {
  QosSpec spec;
  spec.min_functional_rel = 0.99;
  EXPECT_FALSE(spec.feasible(sample_metrics()));
  EXPECT_NEAR(spec.violation(sample_metrics()), 0.04 / 0.99, 1e-12);

  QosSpec mttf_spec;
  mttf_spec.min_mttf_hours = 1.0e5;
  EXPECT_FALSE(mttf_spec.feasible(sample_metrics()));
}

TEST(QosSpecTest, ViolationsAccumulateAcrossConstraints) {
  QosSpec spec;
  spec.max_makespan_us = 500.0;     // violated by 1.0
  spec.max_peak_power_w = 1.0;      // violated by 1.0
  spec.max_energy_uj = 1000.0;      // satisfied
  EXPECT_NEAR(spec.violation(sample_metrics()), 2.0, 1e-12);
}

TEST(QosSpecTest, AllSatisfiedGivesZero) {
  QosSpec spec;
  spec.max_makespan_us = 2000.0;
  spec.min_functional_rel = 0.9;
  spec.min_mttf_hours = 1.0e4;
  spec.max_energy_uj = 1000.0;
  spec.max_peak_power_w = 5.0;
  EXPECT_TRUE(spec.feasible(sample_metrics()));
}

}  // namespace
}  // namespace clrearly::sched
