#include "sched/list_scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "app/tgff.hpp"
#include "util/rng.hpp"

namespace clrearly::sched {
namespace {

app::TaskGraph diamond() {
  app::TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  g.add_task(0, "c");
  g.add_task(0, "d");
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

std::vector<std::size_t> identity_order(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

TEST(ListSchedulerTest, SingleTask) {
  app::TaskGraph g;
  g.add_task(0, "only");
  const Schedule s =
      list_schedule(g, {{0, 10.0, 1.0}}, identity_order(1), 2);
  EXPECT_DOUBLE_EQ(s.makespan_us, 10.0);
  EXPECT_DOUBLE_EQ(s.tasks[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[0].end_us, 10.0);
  EXPECT_DOUBLE_EQ(s.pe_busy_us[0], 10.0);
  EXPECT_DOUBLE_EQ(s.pe_busy_us[1], 0.0);
}

TEST(ListSchedulerTest, DiamondOnTwoPesOverlapsBranches) {
  const app::TaskGraph g = diamond();
  // a on PE0 (10), b on PE0 (20), c on PE1 (15), d on PE0 (5).
  const std::vector<TaskAssignment> asg{
      {0, 10.0, 1.0}, {0, 20.0, 1.0}, {1, 15.0, 1.0}, {0, 5.0, 1.0}};
  const Schedule s = list_schedule(g, asg, identity_order(4), 2);
  // b runs 10..30 on PE0, c runs 10..25 on PE1 in parallel; d starts at 30.
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.tasks[3].start_us, 30.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 35.0);
}

TEST(ListSchedulerTest, PrecedenceRespected) {
  const app::TaskGraph g = diamond();
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<TaskAssignment> asg(4);
    for (auto& a : asg) {
      a.pe = rng.index(3);
      a.exec_time_us = rng.uniform(1.0, 50.0);
      a.power_w = 1.0;
    }
    std::vector<std::size_t> order = identity_order(4);
    rng.shuffle(order);
    const Schedule s = list_schedule(g, asg, order, 3);
    for (const app::Edge& e : g.edges()) {
      EXPECT_GE(s.tasks[e.dst].start_us, s.tasks[e.src].end_us - 1e-9);
    }
  }
}

TEST(ListSchedulerTest, NoPeOverlap) {
  util::Rng rng(4);
  app::TgffOptions options;
  options.num_tasks = 30;
  const app::TaskGraph g = app::generate_tgff_graph(options, rng);
  std::vector<TaskAssignment> asg(30);
  for (auto& a : asg) {
    a.pe = rng.index(4);
    a.exec_time_us = rng.uniform(5.0, 30.0);
    a.power_w = 0.5;
  }
  std::vector<std::size_t> order = identity_order(30);
  rng.shuffle(order);
  const Schedule s = list_schedule(g, asg, order, 4);

  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = i + 1; j < 30; ++j) {
      if (asg[i].pe != asg[j].pe) continue;
      const bool disjoint = s.tasks[i].end_us <= s.tasks[j].start_us + 1e-9 ||
                            s.tasks[j].end_us <= s.tasks[i].start_us + 1e-9;
      EXPECT_TRUE(disjoint) << "tasks " << i << "," << j << " overlap on PE";
    }
  }
}

TEST(ListSchedulerTest, PriorityOrderBreaksTies) {
  // Two independent tasks contending for one PE: priority decides who first.
  app::TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  const std::vector<TaskAssignment> asg{{0, 10.0, 1.0}, {0, 10.0, 1.0}};

  const Schedule ab = list_schedule(g, asg, {0, 1}, 1);
  EXPECT_DOUBLE_EQ(ab.tasks[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(ab.tasks[1].start_us, 10.0);

  const Schedule ba = list_schedule(g, asg, {1, 0}, 1);
  EXPECT_DOUBLE_EQ(ba.tasks[1].start_us, 0.0);
  EXPECT_DOUBLE_EQ(ba.tasks[0].start_us, 10.0);
}

TEST(ListSchedulerTest, MakespanAtLeastCriticalPathAndBottleneck) {
  util::Rng rng(5);
  app::TgffOptions options;
  options.num_tasks = 25;
  const app::TaskGraph g = app::generate_tgff_graph(options, rng);
  std::vector<TaskAssignment> asg(25);
  double total = 0.0;
  for (auto& a : asg) {
    a.pe = rng.index(3);
    a.exec_time_us = rng.uniform(1.0, 20.0);
    total += a.exec_time_us;
  }
  const Schedule s = list_schedule(g, asg, identity_order(25), 3);
  // Lower bound: total work / PEs.
  EXPECT_GE(s.makespan_us, total / 3.0 - 1e-9);
  // Busy times sum to total work.
  double busy = 0.0;
  for (double b : s.pe_busy_us) busy += b;
  EXPECT_NEAR(busy, total, 1e-9);
}

TEST(ListSchedulerTest, PeakPowerHandComputed) {
  const app::TaskGraph g = diamond();
  const std::vector<TaskAssignment> asg{
      {0, 10.0, 2.0}, {0, 20.0, 3.0}, {1, 15.0, 4.0}, {0, 5.0, 1.0}};
  const Schedule s = list_schedule(g, asg, identity_order(4), 2);
  // b (3W) and c (4W) overlap during [10, 25): peak 7W.
  EXPECT_DOUBLE_EQ(s.peak_power(asg), 7.0);
}

TEST(ListSchedulerTest, PeakPowerOfSequentialTasksIsMax) {
  app::TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  g.add_edge(0, 1);
  const std::vector<TaskAssignment> asg{{0, 10.0, 2.0}, {0, 10.0, 5.0}};
  const Schedule s = list_schedule(g, asg, identity_order(2), 1);
  EXPECT_DOUBLE_EQ(s.peak_power(asg), 5.0);
}

TEST(ListSchedulerTest, InputValidation) {
  const app::TaskGraph g = diamond();
  const std::vector<TaskAssignment> asg(4, TaskAssignment{0, 1.0, 1.0});
  // Wrong assignment count.
  EXPECT_THROW(list_schedule(g, {{0, 1.0, 1.0}}, identity_order(4), 1),
               std::invalid_argument);
  // Wrong order size.
  EXPECT_THROW(list_schedule(g, asg, {0, 1}, 1), std::invalid_argument);
  // Not a permutation.
  EXPECT_THROW(list_schedule(g, asg, {0, 0, 1, 2}, 1), std::invalid_argument);
  // PE out of range.
  std::vector<TaskAssignment> bad_pe = asg;
  bad_pe[2].pe = 5;
  EXPECT_THROW(list_schedule(g, bad_pe, identity_order(4), 2),
               std::invalid_argument);
  // Negative execution time.
  std::vector<TaskAssignment> bad_time = asg;
  bad_time[1].exec_time_us = -1.0;
  EXPECT_THROW(list_schedule(g, bad_time, identity_order(4), 1),
               std::invalid_argument);
  // Zero PEs.
  EXPECT_THROW(list_schedule(g, asg, identity_order(4), 0),
               std::invalid_argument);
}

TEST(ListSchedulerTest, PeakPowerValidatesAssignmentSize) {
  app::TaskGraph g;
  g.add_task(0, "a");
  const Schedule s = list_schedule(g, {{0, 1.0, 1.0}}, identity_order(1), 1);
  EXPECT_THROW(s.peak_power({}), std::invalid_argument);
}

}  // namespace
}  // namespace clrearly::sched
