// Tests for the communication-aware scheduling extension: the optional
// Interconnect model and its effect on list scheduling and QoS estimation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "app/sobel.hpp"
#include "platform/architecture.hpp"
#include "platform/interconnect.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/qos.hpp"

namespace clrearly::sched {
namespace {

// --- Interconnect model -------------------------------------------------------

TEST(InterconnectTest, DisabledModelIsFree) {
  const platform::Interconnect icn;  // default: disabled
  EXPECT_FALSE(icn.models_communication());
  EXPECT_DOUBLE_EQ(icn.transfer_time_us(100.0), 0.0);
}

TEST(InterconnectTest, TransferTimeIsLatencyPlusSize) {
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 2.0;  // 2 GB/s
  icn.latency_us = 5.0;
  EXPECT_TRUE(icn.models_communication());
  EXPECT_DOUBLE_EQ(icn.transfer_time_us(100.0), 5.0 + 50.0);
  EXPECT_DOUBLE_EQ(icn.transfer_time_us(0.0), 0.0);  // nothing to move
}

TEST(InterconnectTest, Validation) {
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = -1.0;
  EXPECT_THROW(icn.validate(), std::invalid_argument);
  icn.bandwidth_kb_per_us = 1.0;
  icn.latency_us = -1.0;
  EXPECT_THROW(icn.validate(), std::invalid_argument);
  EXPECT_THROW(icn.transfer_time_us(-1.0), std::invalid_argument);
}

TEST(InterconnectTest, ArchitectureCarriesModel) {
  platform::Architecture arch = platform::Architecture::paper_default();
  EXPECT_FALSE(arch.interconnect().models_communication());
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 1.0;
  arch.set_interconnect(icn);
  EXPECT_TRUE(arch.interconnect().models_communication());

  icn.latency_us = -1.0;
  EXPECT_THROW(arch.set_interconnect(icn), std::invalid_argument);
}

// --- Communication-aware list scheduling ------------------------------------------

app::TaskGraph chain_with_data(double kb) {
  app::TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  g.add_edge(0, 1, kb);
  return g;
}

TEST(CommSchedulerTest, CrossPeEdgePaysTransfer) {
  const app::TaskGraph g = chain_with_data(100.0);
  const std::vector<TaskAssignment> asg{{0, 10.0, 1.0}, {1, 10.0, 1.0}};
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 10.0;
  icn.latency_us = 2.0;

  const Schedule s = list_schedule(g, asg, {0, 1}, 2, icn);
  // b waits for a (10) + transfer (2 + 100/10 = 12) = 22.
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 22.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 32.0);
}

TEST(CommSchedulerTest, CoLocatedEdgeIsFree) {
  const app::TaskGraph g = chain_with_data(100.0);
  const std::vector<TaskAssignment> asg{{0, 10.0, 1.0}, {0, 10.0, 1.0}};
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 10.0;
  icn.latency_us = 2.0;

  const Schedule s = list_schedule(g, asg, {0, 1}, 2, icn);
  EXPECT_DOUBLE_EQ(s.tasks[1].start_us, 10.0);
  EXPECT_DOUBLE_EQ(s.makespan_us, 20.0);
}

TEST(CommSchedulerTest, DisabledModelMatchesBaseScheduler) {
  const app::Application sobel = app::make_sobel_application();
  std::vector<TaskAssignment> asg(5);
  for (std::size_t t = 0; t < 5; ++t) {
    asg[t] = {t % 3, 100.0 + 10.0 * static_cast<double>(t), 0.5};
  }
  const std::vector<std::size_t> order{0, 1, 2, 3, 4};
  const Schedule base = list_schedule(sobel.graph, asg, order, 3);
  const Schedule with_disabled =
      list_schedule(sobel.graph, asg, order, 3, platform::Interconnect{});
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_DOUBLE_EQ(base.tasks[t].start_us, with_disabled.tasks[t].start_us);
  }
  EXPECT_DOUBLE_EQ(base.makespan_us, with_disabled.makespan_us);
}

TEST(CommSchedulerTest, CommunicationOnlyDelaysNeverSpeedsUp) {
  const app::Application sobel = app::make_sobel_application();
  std::vector<TaskAssignment> asg(5);
  for (std::size_t t = 0; t < 5; ++t) {
    asg[t] = {t % 6, 100.0, 0.5};
  }
  const std::vector<std::size_t> order{0, 1, 2, 3, 4};
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 5.0;
  icn.latency_us = 1.0;
  const Schedule base = list_schedule(sobel.graph, asg, order, 6);
  const Schedule comm = list_schedule(sobel.graph, asg, order, 6, icn);
  EXPECT_GE(comm.makespan_us, base.makespan_us);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_GE(comm.tasks[t].start_us, base.tasks[t].start_us - 1e-9);
  }
}

TEST(CommSchedulerTest, FasterInterconnectShortensMakespan) {
  const app::Application sobel = app::make_sobel_application();
  std::vector<TaskAssignment> asg(5);
  for (std::size_t t = 0; t < 5; ++t) {
    asg[t] = {t % 6, 100.0, 0.5};  // fully spread: every edge crosses PEs
  }
  const std::vector<std::size_t> order{0, 1, 2, 3, 4};
  platform::Interconnect slow{0.5, 2.0};
  platform::Interconnect fast{50.0, 0.5};
  const double m_slow =
      list_schedule(sobel.graph, asg, order, 6, slow).makespan_us;
  const double m_fast =
      list_schedule(sobel.graph, asg, order, 6, fast).makespan_us;
  EXPECT_GT(m_slow, m_fast);
}

// --- QoS integration -----------------------------------------------------------

TEST(CommQosTest, InterconnectRaisesMakespanThroughQos) {
  const app::Application sobel = app::make_sobel_application();
  platform::Architecture arch = platform::Architecture::paper_default();

  std::vector<TaskDecision> decisions(5);
  for (std::size_t t = 0; t < 5; ++t) {
    reliability::TaskMetrics m;
    m.avg_exec_time_us = 100.0;
    m.min_exec_time_us = 100.0;
    m.avg_power_w = 0.5;
    m.energy_uj = 50.0;
    m.mttf_hours = 1e5;
    m.eta_hours = 1e5;
    decisions[t] = {t % arch.num_pes(), m};
  }
  const std::vector<std::size_t> order{0, 1, 2, 3, 4};
  const QosMetrics base = estimate_qos(sobel, arch, decisions, order);

  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 1.0;
  icn.latency_us = 3.0;
  arch.set_interconnect(icn);
  const QosMetrics comm = estimate_qos(sobel, arch, decisions, order);

  EXPECT_GT(comm.makespan_us, base.makespan_us);
  // Metrics that do not involve the schedule are untouched.
  EXPECT_DOUBLE_EQ(comm.error_prob, base.error_prob);
  EXPECT_DOUBLE_EQ(comm.energy_uj, base.energy_uj);
  EXPECT_DOUBLE_EQ(comm.mttf_hours, base.mttf_hours);
}

TEST(CommQosTest, CoLocationBecomesAttractiveUnderSlowInterconnect) {
  // Two designs: pipeline spread over PEs vs fully co-located. With a slow
  // interconnect the co-located one wins on makespan despite serializing.
  app::TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  g.add_edge(0, 1, 500.0);
  app::Application chain;
  chain.name = "chain";
  chain.graph = g;
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  chain.impls = {{impl}};
  chain.period_us = 1e4;

  platform::Architecture arch = platform::Architecture::paper_default();
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 1.0;  // 500 us to move the payload
  arch.set_interconnect(icn);

  reliability::TaskMetrics m;
  m.avg_exec_time_us = 100.0;
  m.avg_power_w = 0.5;
  m.mttf_hours = 1e5;

  const std::vector<TaskDecision> spread{{0, m}, {1, m}};
  const std::vector<TaskDecision> colocated{{0, m}, {0, m}};
  const double makespan_spread =
      estimate_qos(chain, arch, spread, {0, 1}).makespan_us;
  const double makespan_colocated =
      estimate_qos(chain, arch, colocated, {0, 1}).makespan_us;
  EXPECT_LT(makespan_colocated, makespan_spread);
}

}  // namespace
}  // namespace clrearly::sched
