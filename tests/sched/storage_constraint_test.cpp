// Tests for the storage-constraint extension: implementation footprints vs
// per-PE memory capacities, flowing from TaskAnalyzer through QoS estimation
// into the constraint machinery the GA sees.
#include <gtest/gtest.h>

#include <stdexcept>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "sched/qos.hpp"

namespace clrearly::sched {
namespace {

reliability::TaskMetrics with_footprint(double kb) {
  reliability::TaskMetrics m;
  m.avg_exec_time_us = 100.0;
  m.min_exec_time_us = 100.0;
  m.avg_power_w = 0.5;
  m.mttf_hours = 1e5;
  m.eta_hours = 1e5;
  m.footprint_kb = kb;
  return m;
}

app::Application two_task_app() {
  app::Application a;
  a.graph.add_task(0, "t0");
  a.graph.add_task(0, "t1");
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  a.impls = {{impl}};
  a.period_us = 1e4;
  return a;
}

/// Architecture whose PE type 0 has a memory capacity of `kb`.
platform::Architecture capped_architecture(double kb) {
  platform::Architecture full = platform::Architecture::paper_default();
  platform::Architecture arch;
  platform::PeType type = full.type(0);
  type.memory_kb = kb;
  const std::size_t t = arch.add_type(type);
  arch.add_pe(t);
  arch.add_pe(t);
  return arch;
}

// --- Model plumbing ---------------------------------------------------------------

TEST(StorageConstraintTest, PeTypeValidatesCapacity) {
  platform::PeType type = platform::Architecture::paper_default().type(0);
  type.memory_kb = -1.0;
  EXPECT_THROW(type.validate(), std::invalid_argument);
}

TEST(StorageConstraintTest, ImplValidatesFootprint) {
  reliability::BaseImpl impl;
  impl.name = "x";
  impl.base_exec_time_us = 1.0;
  impl.base_power_w = 0.1;
  impl.footprint_kb = -1.0;
  EXPECT_THROW(impl.validate(), std::invalid_argument);
}

TEST(StorageConstraintTest, CheckpointingGrowsFootprint) {
  const reliability::TaskAnalyzer analyzer =
      reliability::TaskAnalyzer::paper_default();
  const platform::Architecture arch = platform::Architecture::paper_default();
  reliability::BaseImpl impl;
  impl.name = "x";
  impl.base_exec_time_us = 500.0;
  impl.base_power_w = 0.4;
  impl.footprint_kb = 100.0;

  const auto plain =
      analyzer.evaluate(impl, arch.type(0), reliability::ClrConfig{});
  // ssw = 4: checkpointing with 4 intervals (3 checkpoints).
  const auto chk = analyzer.evaluate(impl, arch.type(0),
                                     reliability::ClrConfig{.ssw = 4});
  EXPECT_DOUBLE_EQ(plain.footprint_kb, 100.0);
  EXPECT_DOUBLE_EQ(chk.footprint_kb, 100.0 * 1.75);
}

// --- QoS integration -----------------------------------------------------------------

TEST(StorageConstraintTest, NoOverflowWhenTasksFit) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = capped_architecture(300.0);
  std::vector<TaskDecision> decisions{{0, with_footprint(100.0)},
                                      {1, with_footprint(100.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, {0, 1});
  EXPECT_DOUBLE_EQ(qos.memory_overflow, 0.0);
  EXPECT_TRUE(QosSpec{}.feasible(qos));
}

TEST(StorageConstraintTest, StackingPastCapacityOverflows) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = capped_architecture(150.0);
  std::vector<TaskDecision> decisions{{0, with_footprint(100.0)},
                                      {0, with_footprint(100.0)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, {0, 1});
  // 200 KB on a 150 KB PE: relative overshoot (200-150)/150.
  EXPECT_NEAR(qos.memory_overflow, 50.0 / 150.0, 1e-12);
  // Physical constraint: infeasible even under an empty spec.
  EXPECT_FALSE(QosSpec{}.feasible(qos));
  EXPECT_GT(QosSpec{}.violation(qos), 0.0);
}

TEST(StorageConstraintTest, UncappedPeNeverOverflows) {
  const app::Application a = two_task_app();
  const platform::Architecture arch = platform::Architecture::paper_default();
  std::vector<TaskDecision> decisions{{0, with_footprint(1e9)},
                                      {0, with_footprint(1e9)}};
  const QosMetrics qos = estimate_qos(a, arch, decisions, {0, 1});
  EXPECT_DOUBLE_EQ(qos.memory_overflow, 0.0);
}

// --- DSE integration ----------------------------------------------------------------

TEST(StorageConstraintTest, DseAvoidsOverflowingMappings) {
  // Tight capacities: no single PE can host the whole Sobel pipeline, so
  // every feasible design must spread tasks across PEs.
  platform::Architecture arch = platform::Architecture::paper_default();
  {
    platform::Architecture capped;
    for (std::size_t t = 0; t < arch.num_types(); ++t) {
      platform::PeType type = arch.type(t);
      type.memory_kb = 280.0;  // fits at most ~2 Sobel kernels
      capped.add_type(type);
    }
    for (const platform::Pe& pe : arch.pes()) {
      capped.add_pe(pe.type_index);
    }
    arch = capped;
  }

  const core::DseMethodology dse(app::make_sobel_application(), arch,
                                 reliability::TaskAnalyzer::paper_default());
  core::DseOptions options;
  options.ga.population_size = 40;
  options.ga.generations = 20;
  options.seed = 9;
  const core::DseOutcome outcome = dse.run_fcclr(options);

  ASSERT_FALSE(outcome.front.empty());
  const core::ClrMappingProblem problem(
      app::make_sobel_application(), arch,
      reliability::TaskAnalyzer::paper_default(), core::SystemObjectives{},
      sched::QosSpec{});
  for (const auto& genome : outcome.front_genomes) {
    EXPECT_DOUBLE_EQ(problem.qos(genome).memory_overflow, 0.0);
  }
}

}  // namespace
}  // namespace clrearly::sched
