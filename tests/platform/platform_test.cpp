#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "platform/architecture.hpp"
#include "platform/dvfs.hpp"
#include "platform/pe.hpp"

namespace clrearly::platform {
namespace {

// --- DVFS ------------------------------------------------------------------

TEST(DvfsTableTest, PaperDefaultHasThreeModes) {
  const DvfsTable t = DvfsTable::paper_default();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.mode(0).freq_mhz, 900.0);
  EXPECT_EQ(t.mode(1).freq_mhz, 600.0);
  EXPECT_EQ(t.mode(2).freq_mhz, 300.0);
  EXPECT_EQ(t.nominal().voltage_v, 1.20);
}

TEST(DvfsTableTest, TimeScaleIsInverseFrequency) {
  const DvfsTable t = DvfsTable::paper_default();
  EXPECT_DOUBLE_EQ(t.time_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(t.time_scale(1), 1.5);
  EXPECT_DOUBLE_EQ(t.time_scale(2), 3.0);
}

TEST(DvfsTableTest, PowerScaleFollowsV2F) {
  const DvfsTable t = DvfsTable::paper_default();
  EXPECT_DOUBLE_EQ(t.power_scale(0), 1.0);
  const double expected1 = (1.1 / 1.2) * (1.1 / 1.2) * (600.0 / 900.0);
  EXPECT_NEAR(t.power_scale(1), expected1, 1e-12);
  EXPECT_LT(t.power_scale(2), t.power_scale(1));
}

TEST(DvfsTableTest, SeuScaleOneAtNominalAndTenToDAtSlowest) {
  const DvfsTable t = DvfsTable::paper_default();
  EXPECT_DOUBLE_EQ(t.seu_scale(0, 2.0), 1.0);
  EXPECT_NEAR(t.seu_scale(2, 2.0), 100.0, 1e-9);
  EXPECT_NEAR(t.seu_scale(2, 1.0), 10.0, 1e-9);
  // Intermediate mode falls strictly between.
  EXPECT_GT(t.seu_scale(1, 2.0), 1.0);
  EXPECT_LT(t.seu_scale(1, 2.0), 100.0);
}

TEST(DvfsTableTest, SingleModeTableHasUnitScales) {
  const DvfsTable t({{"fixed", 1.0, 500.0}});
  EXPECT_DOUBLE_EQ(t.time_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(t.power_scale(0), 1.0);
  EXPECT_DOUBLE_EQ(t.seu_scale(0), 1.0);
}

TEST(DvfsTableTest, RejectsUnorderedModes) {
  EXPECT_THROW(DvfsTable({{"slow", 1.0, 300.0}, {"fast", 1.2, 900.0}}),
               std::invalid_argument);
}

TEST(DvfsTableTest, RejectsNonPositiveParameters) {
  EXPECT_THROW(DvfsTable({{"bad", 0.0, 300.0}}), std::invalid_argument);
  EXPECT_THROW(DvfsTable({{"bad", 1.0, -1.0}}), std::invalid_argument);
}

TEST(DvfsTableTest, OutOfRangeModeThrows) {
  const DvfsTable t = DvfsTable::paper_default();
  EXPECT_THROW(t.mode(3), std::out_of_range);
  EXPECT_THROW(DvfsTable().nominal(), std::out_of_range);
}

// --- PeType ------------------------------------------------------------------

PeType valid_pe_type() {
  PeType pe;
  pe.name = "test";
  pe.masking_factor = 0.3;
  pe.weibull_beta = 2.0;
  pe.weibull_eta_base_hours = 1e5;
  pe.idle_power_w = 0.05;
  pe.dvfs = DvfsTable::paper_default();
  return pe;
}

TEST(PeTypeTest, ValidTypePasses) {
  EXPECT_NO_THROW(valid_pe_type().validate());
}

TEST(PeTypeTest, ValidationCatchesEachViolation) {
  {
    PeType pe = valid_pe_type();
    pe.name.clear();
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
  {
    PeType pe = valid_pe_type();
    pe.masking_factor = 1.0;
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
  {
    PeType pe = valid_pe_type();
    pe.weibull_beta = 0.0;
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
  {
    PeType pe = valid_pe_type();
    pe.weibull_eta_base_hours = -5.0;
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
  {
    PeType pe = valid_pe_type();
    pe.idle_power_w = -0.1;
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
  {
    PeType pe = valid_pe_type();
    pe.dvfs = DvfsTable();
    EXPECT_THROW(pe.validate(), std::invalid_argument);
  }
}

TEST(PeTypeTest, ClassNames) {
  EXPECT_EQ(to_string(PeClass::kEmbeddedProcessor), "EmbeddedProcessor");
  EXPECT_EQ(to_string(PeClass::kReconfigurableRegion), "ReconfigurableRegion");
}

// --- Architecture -------------------------------------------------------------

TEST(ArchitectureTest, PaperDefaultMatchesSectionVIA) {
  const Architecture arch = Architecture::paper_default();
  // Six PEs of three types: 4 embedded processors (two masking factors),
  // 2 reconfigurable regions.
  EXPECT_EQ(arch.num_pes(), 6u);
  EXPECT_EQ(arch.num_types(), 3u);

  std::size_t procs = 0, regions = 0;
  for (const Pe& pe : arch.pes()) {
    if (arch.type_of(pe.id).pe_class == PeClass::kEmbeddedProcessor) {
      ++procs;
    } else {
      ++regions;
    }
  }
  EXPECT_EQ(procs, 4u);
  EXPECT_EQ(regions, 2u);

  // The two processor types expose different masking factors.
  EXPECT_NE(arch.type(0).masking_factor, arch.type(1).masking_factor);
  // Embedded processors expose the full 3-point DVFS table; fabric is fixed.
  EXPECT_EQ(arch.type(0).dvfs.size(), 3u);
  EXPECT_EQ(arch.type(2).dvfs.size(), 1u);
}

TEST(ArchitectureTest, AddTypeValidates) {
  Architecture arch;
  PeType bad = valid_pe_type();
  bad.weibull_beta = -1.0;
  EXPECT_THROW(arch.add_type(bad), std::invalid_argument);
}

TEST(ArchitectureTest, AddPeRequiresKnownType) {
  Architecture arch;
  EXPECT_THROW(arch.add_pe(0), std::out_of_range);
  const std::size_t t = arch.add_type(valid_pe_type());
  const std::size_t id = arch.add_pe(t);
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(arch.pe(id).type_index, t);
}

TEST(ArchitectureTest, PesOfTypeGroupsCorrectly) {
  const Architecture arch = Architecture::paper_default();
  std::size_t total = 0;
  for (std::size_t t = 0; t < arch.num_types(); ++t) {
    for (std::size_t pe : arch.pes_of_type(t)) {
      EXPECT_EQ(arch.pe(pe).type_index, t);
      ++total;
    }
  }
  EXPECT_EQ(total, arch.num_pes());
}

TEST(ArchitectureTest, AccessorsThrowOutOfRange) {
  const Architecture arch = Architecture::paper_default();
  EXPECT_THROW(arch.type(99), std::out_of_range);
  EXPECT_THROW(arch.pe(99), std::out_of_range);
  EXPECT_THROW(arch.type_of(99), std::out_of_range);
}

}  // namespace
}  // namespace clrearly::platform
