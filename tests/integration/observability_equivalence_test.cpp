// The observability layer's load-bearing guarantee: --metrics-out and
// --trace-out are strictly observational. Enabling them must not change a
// single bit of any DSE result — instrumentation never touches the RNG,
// never reorders work, never feeds back into a computation. This test runs
// every flow with observability off and on and compares fronts, genomes
// and evaluation counts bit-for-bit, then sanity-checks that the files the
// instrumented run produces are valid and agree with the cache registry.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "platform/architecture.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/memo_cache.hpp"
#include "util/metrics.hpp"
#include "util/observability.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace clrearly {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ObservabilityEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override {
    util::set_trace_path("");
    util::set_metrics_path("");
    util::set_thread_count(0);
  }
};

core::DseOptions small_options(std::uint64_t seed) {
  core::DseOptions o;
  o.ga.population_size = 16;
  o.ga.generations = 5;
  o.seed = seed;
  return o;
}

void expect_identical(const core::DseOutcome& a, const core::DseOutcome& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
  ASSERT_EQ(a.front_genomes.size(), b.front_genomes.size());
  for (std::size_t i = 0; i < a.front_genomes.size(); ++i) {
    EXPECT_EQ(a.front_genomes[i], b.front_genomes[i]) << "front genome " << i;
  }
}

TEST_F(ObservabilityEquivalenceTest, FlagsDoNotChangeAnyFlowBitForBit) {
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  using FlowFn = core::DseOutcome (core::DseMethodology::*)(
      const core::DseOptions&) const;
  const struct { FlowFn flow; std::uint64_t seed; const char* name; } flows[] =
      {{&core::DseMethodology::run_fcclr, 7, "fcclr"},
       {&core::DseMethodology::run_pfclr, 11, "pfclr"},
       {&core::DseMethodology::run_proposed, 13, "proposed"}};

  for (const auto& [flow, seed, name] : flows) {
    SCOPED_TRACE(name);
    const core::DseOptions options = small_options(seed);

    // Observability off: the baseline.
    util::set_trace_path("");
    util::set_metrics_path("");
    util::set_thread_count(1);
    const core::DseOutcome baseline = (dse.*flow)(options);
    ASSERT_FALSE(baseline.front.empty());

    // Observability on (both files), serial and parallel.
    const std::string trace_path =
        ::testing::TempDir() + "obs_equiv_" + name + "_trace.json";
    const std::string metrics_path =
        ::testing::TempDir() + "obs_equiv_" + name + "_metrics.json";
    util::set_trace_path(trace_path);
    util::set_metrics_path(metrics_path);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(::testing::Message() << "threads " << threads);
      util::set_thread_count(threads);
      const core::DseOutcome observed = (dse.*flow)(options);
      expect_identical(baseline, observed);
    }
  }
}

TEST_F(ObservabilityEquivalenceTest, WrittenFilesAreValidAndMatchRegistry) {
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  const std::string trace_path =
      ::testing::TempDir() + "obs_files_trace.json";
  const std::string metrics_path =
      ::testing::TempDir() + "obs_files_metrics.json";
  util::set_trace_path(trace_path);
  util::set_metrics_path(metrics_path);
  util::RunManifest manifest;
  manifest.program = "observability_equivalence_test";
  manifest.seed = "7";
  util::set_run_manifest(manifest);

  util::set_thread_count(1);
  const core::DseOutcome outcome = dse.run_fcclr(small_options(7));
  ASSERT_FALSE(outcome.front.empty());
  util::write_observability_files();

  // Metrics file: parses, has the nsga2 counters, and its caches section
  // agrees with what the cache registry itself reports right now.
  const util::JsonValue metrics = util::json_parse(slurp(metrics_path));
  EXPECT_GT(metrics.at("counters").at("nsga2.evaluations").as_number(), 0.0);
  // The DSE hot paths route chain analyses through the batched kernel, so a
  // real run must register the batch counters (requests at the driver,
  // kernel invocations underneath).
  EXPECT_GT(metrics.at("counters").at("chain.batch.requests").as_number(),
            0.0);
  EXPECT_GT(
      metrics.at("counters").at("chain.batch.kernel_solves").as_number(),
      0.0);
  EXPECT_GE(
      metrics.at("histograms").at("dse.fcclr_seconds").at("count").as_number(),
      1.0);
  EXPECT_EQ(metrics.at("manifest").at("seed").as_string(), "7");
  for (const auto& [name, stats] : util::lifetime_cache_stats()) {
    const util::JsonValue& entry = metrics.at("caches").at(name);
    // The run is over, so the counters are quiescent between the snapshot
    // and this aggregation.
    EXPECT_EQ(entry.at("hits").as_number(), double(stats.hits)) << name;
    EXPECT_EQ(entry.at("misses").as_number(), double(stats.misses)) << name;
  }
  // The chain cache must actually appear — this is the regression the
  // lifetime view exists for.
  EXPECT_NE(metrics.at("caches").find("chain_solve"), nullptr);

  // Trace file: valid Chrome trace JSON with the expected span names and
  // the manifest as otherData.
  const util::JsonValue trace = util::json_parse(slurp(trace_path));
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  EXPECT_EQ(trace.at("otherData").at("seed").as_string(), "7");
  const util::JsonArray& events = trace.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_generation = false;
  for (const util::JsonValue& event : events) {
    const std::string& ph = event.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "C" || ph == "i") << ph;
    if (event.at("name").as_string() == "nsga2.generation") {
      saw_generation = true;
      EXPECT_GE(event.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_generation);
}

}  // namespace
}  // namespace clrearly
