// End-to-end integration tests: the full CL(R)Early pipeline from system
// model to Pareto front, exercising every subsystem together the way the
// benches and examples do.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/baselines.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  core::DseOptions options(std::uint64_t seed) const {
    core::DseOptions o;
    o.ga.population_size = 24;
    o.ga.generations = 10;
    o.seed = seed;
    return o;
  }
};

TEST_F(EndToEndTest, SobelFullPipeline) {
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::DseMethodology dse(sobel, arch,
                                 reliability::TaskAnalyzer::paper_default());

  const auto tdse = dse.run_tdse(options(1));
  const core::DseOutcome outcome = dse.run_proposed(options(1), tdse);

  ASSERT_FALSE(outcome.front.empty());
  // Makespans must be at least the fastest possible critical path and the
  // error probabilities within (0, 1).
  for (const auto& point : outcome.front) {
    EXPECT_GT(point[0], 100.0);  // 4-stage pipeline of >25us kernels
    EXPECT_GT(point[1], 0.0);
    EXPECT_LT(point[1], 1.0);
  }

  // Reported genomes must reproduce the reported objective vectors through
  // an independent decode + QoS estimation.
  const core::ClrMappingProblem fc(sobel, arch,
                                   reliability::TaskAnalyzer::paper_default(),
                                   core::SystemObjectives{}, sched::QosSpec{});
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    const sched::QosMetrics qos = fc.qos(outcome.front_genomes[i]);
    EXPECT_NEAR(qos.makespan_us, outcome.front[i][0], 1e-9);
    EXPECT_NEAR(qos.error_prob, outcome.front[i][1], 1e-12);
  }
}

TEST_F(EndToEndTest, SchedulesBehindFrontAreConsistent) {
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::ClrMappingProblem fc(sobel, arch,
                                   reliability::TaskAnalyzer::paper_default(),
                                   core::SystemObjectives{}, sched::QosSpec{});
  util::Rng rng(11);
  const core::MappingGenome g = fc.layout().random(rng);
  const auto decisions = fc.decode(g);

  sched::Schedule schedule;
  const sched::QosMetrics qos =
      sched::estimate_qos(sobel, arch, decisions, g.order, &schedule);

  // The schedule respects every dependency edge and matches the makespan.
  for (const app::Edge& e : sobel.graph.edges()) {
    EXPECT_GE(schedule.tasks[e.dst].start_us,
              schedule.tasks[e.src].end_us - 1e-9);
  }
  double max_end = 0.0;
  for (const auto& task : schedule.tasks) {
    max_end = std::max(max_end, task.end_us);
  }
  EXPECT_DOUBLE_EQ(qos.makespan_us, max_end);
}

TEST_F(EndToEndTest, HarderEnvironmentDegradesReliability) {
  // Raising the environmental fault rate (the paper's high-altitude
  // motivation) must push the whole front toward higher error probability.
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();

  reliability::FaultEnvironment harsh;
  harsh.dvfs_sensitivity = 1.2;
  harsh.environment_factor = 50.0;
  const reliability::TaskAnalyzer harsh_analyzer(
      reliability::ClrSpace::paper_default(), harsh, reliability::ThermalModel{},
      reliability::ArrheniusAging{});

  const core::DseMethodology mild_dse(
      sobel, arch, reliability::TaskAnalyzer::paper_default());
  const core::DseMethodology harsh_dse(sobel, arch, harsh_analyzer);

  const auto mild = mild_dse.run_fcclr(options(3));
  const auto harsh_run = harsh_dse.run_fcclr(options(3));

  auto best_error = [](const core::DseOutcome& o) {
    double best = 1.0;
    for (const auto& p : o.front) best = std::min(best, p[1]);
    return best;
  };
  EXPECT_GT(best_error(harsh_run), best_error(mild));
}

TEST_F(EndToEndTest, ConstrainedRunHonorsSpec) {
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::DseMethodology dse(sobel, arch,
                                 reliability::TaskAnalyzer::paper_default());

  core::DseOptions o = options(4);
  o.spec.max_makespan_us = 2500.0;
  const core::DseOutcome outcome = dse.run_fcclr(o);
  ASSERT_FALSE(outcome.front.empty());
  for (const auto& point : outcome.front) {
    EXPECT_LE(point[0], 2500.0 + 1e-6);
  }
}

TEST_F(EndToEndTest, SyntheticScalingSweepStaysHealthy) {
  // A miniature TABLE V/VI-style sweep: each size must complete and the
  // proposed flow must produce valid fronts throughout.
  for (std::size_t tasks : {10, 20, 30}) {
    const app::Application syn =
        app::make_synthetic_application(tasks, 10, 100 + tasks);
    const core::DseMethodology dse(syn, platform::Architecture::paper_default(),
                                   reliability::TaskAnalyzer::paper_default());
    const core::DseOutcome outcome = dse.run_proposed(options(tasks));
    EXPECT_FALSE(outcome.front.empty()) << tasks << " tasks";
  }
}

TEST_F(EndToEndTest, ExperimentHelpersProduceUsableDefaults) {
  const auto params = core::bench_ga_params();
  EXPECT_NO_THROW(params.validate());
  EXPECT_DOUBLE_EQ(params.crossover_prob, 0.8);
  EXPECT_DOUBLE_EQ(params.mutation_indpb, 0.05);
  EXPECT_EQ(params.tournament_k, 5u);

  const auto counts = core::bench_task_counts();
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front(), 10u);
  EXPECT_TRUE(std::is_sorted(counts.begin(), counts.end()));

  const auto o = core::bench_options(3);
  EXPECT_EQ(o.seed, 3u);
  EXPECT_EQ(o.objectives.count(), 2u);
}

}  // namespace
}  // namespace clrearly
