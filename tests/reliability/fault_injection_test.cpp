// Cross-validation of the analytical Markov models against the semantic
// fault-injection simulator — two independent implementations of the same
// process must agree on timing and functional reliability.
#include "reliability/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace clrearly::reliability {
namespace {

ClrChainParams base_params() {
  ClrChainParams p;
  p.exec_time_us = 1000.0;
  p.lambda_per_us = 3.0e-4;
  return p;
}

TEST(FaultInjectionTest, Validation) {
  EXPECT_THROW(inject_faults(base_params(), 0, 1), std::invalid_argument);
  ClrChainParams bad = base_params();
  bad.exec_time_us = 0.0;
  EXPECT_THROW(inject_faults(bad, 100, 1), std::invalid_argument);
}

TEST(FaultInjectionTest, DeterministicPerSeed) {
  const auto a = inject_faults(base_params(), 2000, 7);
  const auto b = inject_faults(base_params(), 2000, 7);
  EXPECT_EQ(a.mean_exec_time_us, b.mean_exec_time_us);
  EXPECT_EQ(a.error_rate, b.error_rate);
  const auto c = inject_faults(base_params(), 2000, 8);
  EXPECT_NE(a.error_rate, c.error_rate);
}

TEST(FaultInjectionTest, NoFaultsMeansExactTimeAndNoErrors) {
  ClrChainParams p = base_params();
  p.lambda_per_us = 0.0;
  p.intervals = 3;
  p.detection_time_us = 10.0;
  p.checkpoint_time_us = 20.0;
  const auto sim = inject_faults(p, 500, 1);
  EXPECT_DOUBLE_EQ(sim.error_rate, 0.0);
  EXPECT_DOUBLE_EQ(sim.mean_faults_injected, 0.0);
  EXPECT_NEAR(sim.mean_exec_time_us, 1000.0 + 3 * 10.0 + 2 * 20.0, 1e-9);
}

TEST(FaultInjectionTest, RollbacksOnlyWithTolerance) {
  ClrChainParams unprotected = base_params();
  const auto a = inject_faults(unprotected, 5000, 2);
  EXPECT_DOUBLE_EQ(a.mean_rollbacks, 0.0);
  EXPECT_GT(a.mean_faults_injected, 0.0);

  ClrChainParams tolerant = base_params();
  tolerant.detection_coverage = 1.0;
  tolerant.tolerance_success = 1.0;
  const auto b = inject_faults(tolerant, 5000, 2);
  EXPECT_GT(b.mean_rollbacks, 0.0);
  EXPECT_DOUBLE_EQ(b.error_rate, 0.0);
}

// --- Agreement with the analytical chains across configurations -------------------

struct InjectionCase {
  const char* label;
  double lambda;
  double hw;
  double impl_ssw;
  double cov;
  double tol;
  double asw;
  std::size_t intervals;
  double chk_err;
};

class InjectionAgreementTest
    : public ::testing::TestWithParam<InjectionCase> {};

TEST_P(InjectionAgreementTest, MatchesAnalyticalModel) {
  const InjectionCase c = GetParam();
  ClrChainParams p;
  p.exec_time_us = 800.0;
  p.lambda_per_us = c.lambda;
  p.hw_masking = c.hw;
  p.implicit_ssw_masking = c.impl_ssw;
  p.detection_coverage = c.cov;
  p.tolerance_success = c.tol;
  p.asw_masking = c.asw;
  p.intervals = c.intervals;
  p.detection_time_us = 8.0;
  p.tolerance_time_us = 25.0;
  p.checkpoint_time_us = 15.0;
  p.checkpoint_error_prob = c.chk_err;

  const ClrChainAnalysis analytic = analyze_clr_chain(p);
  const InjectionResult sim = inject_faults(p, 150000, 42);

  EXPECT_NEAR(sim.mean_exec_time_us / analytic.avg_exec_time_us, 1.0, 0.01)
      << c.label;
  EXPECT_NEAR(sim.error_rate, analytic.error_prob, 0.004) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InjectionAgreementTest,
    ::testing::Values(
        InjectionCase{"unprotected", 3e-4, 0, 0, 0, 0, 0, 1, 0},
        InjectionCase{"hw_only", 3e-4, 0.72, 0, 0, 0, 0, 1, 0},
        InjectionCase{"retry", 3e-4, 0, 0, 0.9, 0.95, 0, 1, 0},
        InjectionCase{"asw_only", 3e-4, 0, 0, 0, 0, 0.94, 1, 0},
        InjectionCase{"full_stack", 5e-4, 0.72, 0.1, 0.92, 0.98, 0.6, 3, 0},
        InjectionCase{"chk_err", 3e-4, 0, 0, 1.0, 1.0, 0, 2, 0.2},
        InjectionCase{"high_flux", 2e-3, 0.4, 0.05, 0.9, 0.9, 0.8, 4, 0},
        InjectionCase{"implicit_masking", 3e-4, 0, 0.2, 0, 0, 0, 1, 0}),
    [](const auto& info) { return info.param.label; });

// --- Unequal intervals agree too ----------------------------------------------------

TEST(FaultInjectionTest, UnequalIntervalsMatchAnalytical) {
  ClrChainParams p = base_params();
  p.lambda_per_us = 8e-4;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.intervals = 3;
  p.interval_fractions = {0.5, 0.3, 0.2};
  p.checkpoint_time_us = 10.0;

  const ClrChainAnalysis analytic = analyze_clr_chain(p);
  const InjectionResult sim = inject_faults(p, 100000, 11);
  EXPECT_NEAR(sim.mean_exec_time_us / analytic.avg_exec_time_us, 1.0, 0.01);
  EXPECT_NEAR(sim.error_rate, analytic.error_prob, 0.003);
}

}  // namespace
}  // namespace clrearly::reliability
