#include "reliability/task_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "platform/architecture.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "reliability/fault_model.hpp"

namespace clrearly::reliability {
namespace {

BaseImpl proc_impl() {
  BaseImpl impl;
  impl.name = "sw";
  impl.target = platform::PeClass::kEmbeddedProcessor;
  impl.base_exec_time_us = 500.0;
  impl.base_power_w = 0.4;
  return impl;
}

const platform::PeType& proc_type() {
  static const platform::Architecture arch =
      platform::Architecture::paper_default();
  return arch.type(0);
}

const platform::PeType& fabric_type() {
  static const platform::Architecture arch =
      platform::Architecture::paper_default();
  return arch.type(2);
}

TEST(BaseImplTest, Validation) {
  BaseImpl impl = proc_impl();
  EXPECT_NO_THROW(impl.validate());
  impl.base_exec_time_us = 0.0;
  EXPECT_THROW(impl.validate(), std::invalid_argument);
  impl = proc_impl();
  impl.base_power_w = -1.0;
  EXPECT_THROW(impl.validate(), std::invalid_argument);
  impl = proc_impl();
  impl.name.clear();
  EXPECT_THROW(impl.validate(), std::invalid_argument);
}

TEST(BaseImplTest, RunsOnMatchesClass) {
  const BaseImpl impl = proc_impl();
  EXPECT_TRUE(impl.runs_on(proc_type()));
  EXPECT_FALSE(impl.runs_on(fabric_type()));
}

TEST(TaskAnalyzerTest, RejectsClassMismatch) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  EXPECT_THROW(analyzer.evaluate(proc_impl(), fabric_type(), ClrConfig{}),
               std::invalid_argument);
}

TEST(TaskAnalyzerTest, RejectsOutOfRangeConfig) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  EXPECT_THROW(analyzer.evaluate(proc_impl(), proc_type(),
                                 ClrConfig{.hw = 99}),
               std::out_of_range);
  EXPECT_THROW(analyzer.evaluate(proc_impl(), proc_type(),
                                 ClrConfig{.dvfs = 3}),
               std::out_of_range);
}

TEST(TaskAnalyzerTest, BaselineConfigMatchesManualChain) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics m =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{});

  // Reconstruct the expected numbers by hand.
  const double lambda =
      effective_seu_rate(analyzer.environment(), proc_type(), 0);
  ClrChainParams params;
  params.exec_time_us = 500.0;
  params.lambda_per_us = lambda;
  const ClrChainAnalysis chain = analyze_clr_chain(params);

  EXPECT_NEAR(m.avg_exec_time_us, chain.avg_exec_time_us, 1e-9);
  EXPECT_NEAR(m.error_prob, chain.error_prob, 1e-12);
  EXPECT_NEAR(m.avg_power_w, 0.4 + proc_type().idle_power_w, 1e-12);
  EXPECT_NEAR(m.energy_uj, m.avg_exec_time_us * m.avg_power_w, 1e-9);
}

TEST(TaskAnalyzerTest, DvfsSlowsAndWeakens) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics fast =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.dvfs = 0});
  const TaskMetrics slow =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.dvfs = 2});

  // 300 MHz mode: 3x slower, much higher error probability, lower power.
  EXPECT_NEAR(slow.min_exec_time_us / fast.min_exec_time_us, 3.0, 1e-9);
  EXPECT_GT(slow.error_prob, 3.0 * fast.error_prob);
  EXPECT_LT(slow.avg_power_w, fast.avg_power_w);
  // Cooler -> slower aging -> longer MTTF.
  EXPECT_LT(slow.peak_temp_c, fast.peak_temp_c);
  EXPECT_GT(slow.mttf_hours, fast.mttf_hours);
}

TEST(TaskAnalyzerTest, PartialTmrMasksButBurnsPower) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics plain =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{});
  const TaskMetrics tmr =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.hw = 2});

  // Partial TMR masks 72% of surviving errors and nearly doubles power.
  EXPECT_LT(tmr.error_prob, 0.4 * plain.error_prob);
  EXPECT_GT(tmr.avg_power_w, 1.6 * plain.avg_power_w);
  EXPECT_GT(tmr.peak_temp_c, plain.peak_temp_c);
  EXPECT_LT(tmr.mttf_hours, plain.mttf_hours);  // hotter ages faster
}

TEST(TaskAnalyzerTest, CheckpointingAddsOverheadButDetects) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics plain =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{});
  const TaskMetrics chk =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.ssw = 2});

  EXPECT_GT(chk.min_exec_time_us, plain.min_exec_time_us);
  EXPECT_LT(chk.error_prob, plain.error_prob);
}

TEST(TaskAnalyzerTest, AswMaskingReducesErrorAtTimeCost) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics plain =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{});
  const TaskMetrics tripled =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.asw = 3});

  EXPECT_GT(tripled.min_exec_time_us, 3.0 * plain.min_exec_time_us);
  EXPECT_LT(tripled.error_prob, plain.error_prob);
}

TEST(TaskAnalyzerTest, MaskingFactorOfPeTypeMatters) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const platform::Architecture arch = platform::Architecture::paper_default();
  // Type 1 has the stronger architectural masking.
  const TaskMetrics weak =
      analyzer.evaluate(proc_impl(), arch.type(0), ClrConfig{});
  const TaskMetrics strong =
      analyzer.evaluate(proc_impl(), arch.type(1), ClrConfig{});
  EXPECT_GT(weak.error_prob, strong.error_prob);
}

TEST(TaskAnalyzerTest, ImplicitMaskingOverrideSweepsLikeFig6b) {
  TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const ClrConfig cfg{.ssw = 1};  // retry: errors traverse the SSWImpl state

  double prev = 1.0;
  for (double mask : {0.0, 0.05, 0.10, 0.20}) {
    analyzer.set_implicit_masking_override(mask);
    const TaskMetrics m = analyzer.evaluate(proc_impl(), proc_type(), cfg);
    EXPECT_LT(m.error_prob, prev);
    prev = m.error_prob;
  }
  EXPECT_THROW(analyzer.set_implicit_masking_override(1.5),
               std::invalid_argument);
}

TEST(TaskAnalyzerTest, EnergyIsTimeTimesPower) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  for (std::size_t hw = 0; hw < 3; ++hw) {
    const TaskMetrics m =
        analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{.hw = hw});
    EXPECT_NEAR(m.energy_uj, m.avg_exec_time_us * m.avg_power_w, 1e-9);
  }
}

TEST(TaskAnalyzerTest, MttfMatchesWeibullFormula) {
  const TaskAnalyzer analyzer = TaskAnalyzer::paper_default();
  const TaskMetrics m =
      analyzer.evaluate(proc_impl(), proc_type(), ClrConfig{});
  const Weibull weibull(m.eta_hours, proc_type().weibull_beta);
  EXPECT_NEAR(m.mttf_hours, weibull.mttf(), 1e-9);
}

}  // namespace
}  // namespace clrearly::reliability
