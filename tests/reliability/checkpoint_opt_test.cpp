// Tests for the unequal-checkpoint-interval modeling (a capability the
// paper's Section IV explicitly claims for the Markov approach) and the
// checkpoint-count optimizer built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "reliability/clr_chain_builder.hpp"

namespace clrearly::reliability {
namespace {

ClrChainParams protected_task() {
  ClrChainParams p;
  p.exec_time_us = 1000.0;
  p.lambda_per_us = 1.0e-3;  // high enough that checkpoints pay off
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.detection_time_us = 5.0;
  p.tolerance_time_us = 10.0;
  p.checkpoint_time_us = 15.0;
  return p;
}

// --- Unequal intervals ---------------------------------------------------------

TEST(UnequalIntervalsTest, FractionValidation) {
  ClrChainParams p = protected_task();
  p.intervals = 2;
  p.interval_fractions = {0.5};  // wrong size
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.interval_fractions = {0.7, 0.4};  // sums to 1.1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.interval_fractions = {1.0, 0.0};  // non-positive entry
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.interval_fractions = {0.25, 0.75};
  EXPECT_NO_THROW(p.validate());
}

TEST(UnequalIntervalsTest, IntervalTimeHonorsFractions) {
  ClrChainParams p = protected_task();
  p.intervals = 2;
  p.interval_fractions = {0.25, 0.75};
  EXPECT_DOUBLE_EQ(p.interval_time(0), 250.0);
  EXPECT_DOUBLE_EQ(p.interval_time(1), 750.0);
  EXPECT_THROW(p.interval_time(2), std::out_of_range);
  EXPECT_NEAR(p.pne_for_interval(0), std::exp(-1.0e-3 * 250.0), 1e-12);
}

TEST(UnequalIntervalsTest, EqualFractionsMatchDefaultSplit) {
  ClrChainParams implicit = protected_task();
  implicit.intervals = 4;

  ClrChainParams explicit_equal = implicit;
  explicit_equal.interval_fractions = {0.25, 0.25, 0.25, 0.25};

  const ClrChainAnalysis a = analyze_clr_chain(implicit);
  const ClrChainAnalysis b = analyze_clr_chain(explicit_equal);
  EXPECT_NEAR(a.avg_exec_time_us, b.avg_exec_time_us, 1e-9);
  EXPECT_NEAR(a.error_prob, b.error_prob, 1e-12);
}

TEST(UnequalIntervalsTest, SkewedSplitIsWorseThanEqualAtConstantRate) {
  // With a constant fault rate the equal split minimizes expected time
  // (convexity of the per-interval geometric retry cost); any skew loses.
  ClrChainParams equal = protected_task();
  equal.intervals = 2;

  ClrChainParams skewed = equal;
  skewed.interval_fractions = {0.85, 0.15};

  EXPECT_LT(analyze_clr_chain(equal).avg_exec_time_us,
            analyze_clr_chain(skewed).avg_exec_time_us);
}

TEST(UnequalIntervalsTest, MinExecTimeUnaffectedBySplit) {
  ClrChainParams a = protected_task();
  a.intervals = 3;
  ClrChainParams b = a;
  b.interval_fractions = {0.6, 0.3, 0.1};
  EXPECT_DOUBLE_EQ(analyze_clr_chain(a).min_exec_time_us,
                   analyze_clr_chain(b).min_exec_time_us);
}

// --- Checkpoint-count optimization ------------------------------------------------

TEST(CheckpointOptimizerTest, RejectsZeroMax) {
  EXPECT_THROW(optimize_checkpoint_intervals(protected_task(), 0),
               std::invalid_argument);
}

TEST(CheckpointOptimizerTest, SweepCoversAllCounts) {
  const auto result = optimize_checkpoint_intervals(protected_task(), 6);
  ASSERT_EQ(result.avg_time_per_intervals.size(), 6u);
  EXPECT_GE(result.best_intervals, 1u);
  EXPECT_LE(result.best_intervals, 6u);
  // best_avg matches the reported sweep entry.
  EXPECT_DOUBLE_EQ(result.best_avg_time_us,
                   result.avg_time_per_intervals[result.best_intervals - 1]);
  for (double avg : result.avg_time_per_intervals) {
    EXPECT_GE(avg, 1000.0);  // never below the raw execution time
  }
}

TEST(CheckpointOptimizerTest, HighFaultRateWantsMoreCheckpoints) {
  ClrChainParams low = protected_task();
  low.lambda_per_us = 5.0e-5;
  ClrChainParams high = protected_task();
  high.lambda_per_us = 3.0e-3;

  const auto few = optimize_checkpoint_intervals(low, 8);
  const auto many = optimize_checkpoint_intervals(high, 8);
  EXPECT_LT(few.best_intervals, many.best_intervals);
}

TEST(CheckpointOptimizerTest, ExpensiveCheckpointsWantFewer) {
  ClrChainParams cheap = protected_task();
  cheap.checkpoint_time_us = 1.0;
  ClrChainParams costly = protected_task();
  costly.checkpoint_time_us = 120.0;

  const auto many = optimize_checkpoint_intervals(cheap, 8);
  const auto few = optimize_checkpoint_intervals(costly, 8);
  EXPECT_GE(many.best_intervals, few.best_intervals);
}

TEST(CheckpointOptimizerTest, BestBeatsAllAlternatives) {
  const auto result = optimize_checkpoint_intervals(protected_task(), 8);
  for (double avg : result.avg_time_per_intervals) {
    if (std::isnan(avg)) continue;
    EXPECT_LE(result.best_avg_time_us, avg + 1e-9);
  }
}

TEST(CheckpointOptimizerTest, NegligibleFaultRateNeedsNoCheckpoints) {
  ClrChainParams p = protected_task();
  p.lambda_per_us = 1.0e-9;
  const auto result = optimize_checkpoint_intervals(p, 6);
  EXPECT_EQ(result.best_intervals, 1u);
}

}  // namespace
}  // namespace clrearly::reliability
