#include "reliability/methods.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "reliability/clr_config.hpp"

namespace clrearly::reliability {
namespace {

// --- Catalog sanity -----------------------------------------------------------

TEST(MethodCatalogTest, HwCatalogStartsWithNoop) {
  const auto methods = default_hw_methods();
  ASSERT_GE(methods.size(), 2u);
  EXPECT_EQ(methods[0].masking, 0.0);
  EXPECT_EQ(methods[0].time_factor, 1.0);
  EXPECT_EQ(methods[0].power_factor, 1.0);
}

TEST(MethodCatalogTest, HwMaskingIncreasesWithCost) {
  const auto methods = default_hw_methods();
  for (std::size_t i = 1; i < methods.size(); ++i) {
    EXPECT_GT(methods[i].masking, methods[i - 1].masking)
        << methods[i].name;
    EXPECT_GT(methods[i].power_factor, methods[i - 1].power_factor)
        << methods[i].name;
  }
  // Partial TMR roughly doubles power.
  EXPECT_GT(methods.back().power_factor, 1.6);
}

TEST(MethodCatalogTest, SswCatalogStartsWithNoop) {
  const auto methods = default_ssw_methods();
  ASSERT_GE(methods.size(), 3u);
  EXPECT_FALSE(methods[0].is_active());
  EXPECT_EQ(methods[0].intervals, 1u);
}

TEST(MethodCatalogTest, SswCheckpointVariantsCoverIntervals) {
  const auto methods = default_ssw_methods();
  bool saw_retry = false;
  std::size_t max_intervals = 1;
  for (const auto& m : methods) {
    if (m.intervals == 1 && m.is_active()) saw_retry = true;
    max_intervals = std::max(max_intervals, m.intervals);
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GE(max_intervals, 4u);
}

TEST(MethodCatalogTest, AswCatalogStartsWithNoop) {
  const auto methods = default_asw_methods();
  ASSERT_GE(methods.size(), 3u);
  EXPECT_EQ(methods[0].masking, 0.0);
  EXPECT_EQ(methods[0].time_factor, 1.0);
}

TEST(MethodCatalogTest, AswMaskingTradesAgainstTime) {
  const auto methods = default_asw_methods();
  for (std::size_t i = 1; i < methods.size(); ++i) {
    EXPECT_GT(methods[i].masking, methods[i - 1].masking);
    EXPECT_GT(methods[i].time_factor, methods[i - 1].time_factor);
  }
  // Code tripling costs about 3x runtime.
  EXPECT_GT(methods.back().time_factor, 3.0);
}

// --- Validation ---------------------------------------------------------------

TEST(MethodValidationTest, HwMethodRangeChecks) {
  HwMethod m{.name = "x", .masking = 1.5};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.masking = 0.5;
  m.time_factor = 0.9;  // overheads cannot speed up
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.time_factor = 1.0;
  m.name.clear();
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MethodValidationTest, SswMethodRangeChecks) {
  SswMethod m;
  m.name = "x";
  m.intervals = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.intervals = 1;
  m.detection_coverage = 1.2;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.detection_coverage = 0.5;
  m.tolerance_time_frac = -0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(MethodValidationTest, AswMethodRangeChecks) {
  AswMethod m{.name = "x", .masking = -0.1};
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m.masking = 0.5;
  m.power_factor = 0.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

// --- Generic method factories (GenM / GenD / GenT) -----------------------------

TEST(GenericMethodTest, GenMaskingBuildsHwMethod) {
  const HwMethod m = gen_masking(0.6, 0.1, 0.4);
  EXPECT_EQ(m.name, "GenM");
  EXPECT_DOUBLE_EQ(m.masking, 0.6);
  EXPECT_DOUBLE_EQ(m.time_factor, 1.1);
  EXPECT_DOUBLE_EQ(m.power_factor, 1.4);
}

TEST(GenericMethodTest, GenDetectionHasNoTolerance) {
  const SswMethod m = gen_detection(0.85, 0.07);
  EXPECT_EQ(m.name, "GenD");
  EXPECT_DOUBLE_EQ(m.detection_coverage, 0.85);
  EXPECT_EQ(m.tolerance_success, 0.0);
  EXPECT_EQ(m.intervals, 1u);
  EXPECT_TRUE(m.is_active());
}

TEST(GenericMethodTest, GenToleranceFullyParameterized) {
  const SswMethod m = gen_tolerance(0.9, 0.95, 3, 0.05, 0.04, 0.06);
  EXPECT_EQ(m.name, "GenT");
  EXPECT_EQ(m.intervals, 3u);
  EXPECT_DOUBLE_EQ(m.tolerance_success, 0.95);
  EXPECT_DOUBLE_EQ(m.checkpoint_time_frac, 0.06);
}

TEST(GenericMethodTest, FactoriesValidate) {
  EXPECT_THROW(gen_masking(1.5, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(gen_detection(-0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(gen_tolerance(0.9, 0.9, 0, 0.0, 0.0, 0.0),
               std::invalid_argument);
}

// --- ClrSpace ------------------------------------------------------------------

TEST(ClrSpaceTest, PaperDefaultCardinalities) {
  const ClrSpace space = ClrSpace::paper_default();
  EXPECT_EQ(space.hw_methods().size(), 3u);   // none/hardening/partial-TMR
  EXPECT_EQ(space.ssw_methods().size(), 5u);  // none/retry/chk2-4
  EXPECT_EQ(space.asw_methods().size(), 4u);  // none/checksum/hamming/tripling
  // |Ct| with 3 DVFS modes: 3 * 5 * 4 * 3 = 180.
  EXPECT_EQ(space.size(3), 180u);
}

TEST(ClrSpaceTest, AxesRestrictSize) {
  const ClrSpace space = ClrSpace::paper_default();
  EXPECT_EQ(space.size(3, ClrAxes::only_hw()), 3u);
  EXPECT_EQ(space.size(3, ClrAxes::only_ssw()), 5u);
  EXPECT_EQ(space.size(3, ClrAxes::only_asw()), 4u);
  EXPECT_EQ(space.size(3, ClrAxes::only_dvfs()), 3u);
  EXPECT_EQ(space.size(3, ClrAxes::none()), 1u);
}

TEST(ClrSpaceTest, EnumerateCoversAndRespectsAxes) {
  const ClrSpace space = ClrSpace::paper_default();
  const auto all = space.enumerate(3);
  EXPECT_EQ(all.size(), 180u);

  const auto hw_only = space.enumerate(3, ClrAxes::only_hw());
  EXPECT_EQ(hw_only.size(), 3u);
  for (const ClrConfig& c : hw_only) {
    EXPECT_EQ(c.ssw, 0u);
    EXPECT_EQ(c.asw, 0u);
    EXPECT_EQ(c.dvfs, 0u);
  }
}

TEST(ClrSpaceTest, CheckRejectsOutOfRange) {
  const ClrSpace space = ClrSpace::paper_default();
  EXPECT_NO_THROW(space.check(ClrConfig{2, 4, 3, 2}, 3));
  EXPECT_THROW(space.check(ClrConfig{3, 0, 0, 0}, 3), std::out_of_range);
  EXPECT_THROW(space.check(ClrConfig{0, 0, 0, 3}, 3), std::out_of_range);
}

TEST(ClrSpaceTest, RejectsNonNoopBaselines) {
  auto hw = default_hw_methods();
  std::swap(hw[0], hw[1]);  // baseline no longer index 0
  EXPECT_THROW(
      ClrSpace(hw, default_ssw_methods(), default_asw_methods()),
      std::invalid_argument);
}

TEST(ClrSpaceTest, DescribeMentionsAllLayers) {
  const ClrSpace space = ClrSpace::paper_default();
  const std::string text = space.describe(ClrConfig{2, 1, 1, 2});
  EXPECT_NE(text.find("HW:partial-TMR"), std::string::npos);
  EXPECT_NE(text.find("SSW:retry"), std::string::npos);
  EXPECT_NE(text.find("ASW:checksum"), std::string::npos);
  EXPECT_NE(text.find("dvfs2"), std::string::npos);
}

}  // namespace
}  // namespace clrearly::reliability
