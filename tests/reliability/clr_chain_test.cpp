#include "reliability/clr_chain_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/chain.hpp"

namespace clrearly::reliability {
namespace {

ClrChainParams base_params() {
  ClrChainParams p;
  p.exec_time_us = 1000.0;
  p.lambda_per_us = 2.0e-4;  // pne ~ 0.82 over the full task
  return p;
}

// --- Validation ---------------------------------------------------------------

TEST(ClrChainParamsTest, ValidatesRanges) {
  {
    ClrChainParams p = base_params();
    p.exec_time_us = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    ClrChainParams p = base_params();
    p.lambda_per_us = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    ClrChainParams p = base_params();
    p.intervals = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    ClrChainParams p = base_params();
    p.hw_masking = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    ClrChainParams p = base_params();
    p.detection_time_us = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(ClrChainParamsTest, PnePerInterval) {
  ClrChainParams p = base_params();
  EXPECT_NEAR(p.pne_per_interval(), std::exp(-0.2), 1e-12);
  p.intervals = 4;
  EXPECT_NEAR(p.pne_per_interval(), std::exp(-0.05), 1e-12);
}

// --- Unprotected task: closed forms -------------------------------------------

TEST(ClrChainTest, UnprotectedTimingEqualsExecTime) {
  // With no detection/tolerance, execution time never changes: errors fly
  // through the (inactive) mitigation states with zero residence.
  const ClrChainParams p = base_params();
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.avg_exec_time_us, 1000.0, 1e-9);
  EXPECT_NEAR(a.min_exec_time_us, 1000.0, 1e-9);
  EXPECT_NEAR(a.exec_time_stddev_us, 0.0, 1e-6);
}

TEST(ClrChainTest, UnprotectedErrorProbIsOneMinusPne) {
  const ClrChainParams p = base_params();
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 1.0 - std::exp(-0.2), 1e-12);
}

TEST(ClrChainTest, PureMaskingStacksMultiplicatively) {
  ClrChainParams p = base_params();
  p.hw_masking = 0.7;
  p.implicit_ssw_masking = 0.1;
  p.asw_masking = 0.6;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  const double q = (1.0 - std::exp(-0.2)) * 0.3 * 0.9;
  // Undetected (cov=0) errors hit the ASW stage; 40% escape.
  EXPECT_NEAR(a.error_prob, q * 0.4, 1e-12);
  // Masking never changes the timing.
  EXPECT_NEAR(a.avg_exec_time_us, 1000.0, 1e-9);
}

// --- Retry (1 interval, rollback to start): closed forms -----------------------

TEST(ClrChainTest, PerfectRetryMatchesGeometricTime) {
  ClrChainParams p = base_params();
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.detection_time_us = 20.0;
  p.tolerance_time_us = 50.0;
  const double pne = std::exp(-0.2);

  const ClrChainAnalysis a = analyze_clr_chain(p);
  // T = (t + tDet) + (1-pne)(tTol + T)  =>  T = (t + tDet + (1-pne) tTol)/pne
  const double expected = (1000.0 + 20.0 + (1.0 - pne) * 50.0) / pne;
  EXPECT_NEAR(a.avg_exec_time_us, expected, 1e-9);
  // Perfect detection + tolerance leaves no uncorrected errors.
  EXPECT_NEAR(a.error_prob, 0.0, 1e-12);
  EXPECT_NEAR(a.min_exec_time_us, 1020.0, 1e-9);
}

TEST(ClrChainTest, ImperfectRetryErrorClosedForm) {
  ClrChainParams p = base_params();
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.95;
  p.asw_masking = 0.5;
  const double pne = std::exp(-0.2);
  const double q = 1.0 - pne;  // unmasked error mass per pass (no HW/impl mask)

  // Per pass: escape to ASW = q*(1-cov) + q*cov*(1-mTol); retry = q*cov*mTol.
  const double escape = q * (0.1 + 0.9 * 0.05);
  const double retry = q * 0.9 * 0.95;
  const double expected_error = escape * 0.5 / (1.0 - retry);

  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, expected_error, 1e-12);
}

// --- Checkpointing -------------------------------------------------------------

TEST(ClrChainTest, CheckpointMinTimeIncludesOverheads) {
  ClrChainParams p = base_params();
  p.intervals = 3;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.detection_time_us = 10.0;
  p.checkpoint_time_us = 25.0;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  // 3 detection passes + 2 checkpoints on the error-free path.
  EXPECT_NEAR(a.min_exec_time_us, 1000.0 + 3 * 10.0 + 2 * 25.0, 1e-9);
  EXPECT_GT(a.avg_exec_time_us, a.min_exec_time_us);
}

TEST(ClrChainTest, CheckpointingBeatsRetryAtHighFaultRates) {
  // With expensive re-execution (high lambda), losing only one interval per
  // error beats re-running the whole task.
  ClrChainParams retry = base_params();
  retry.lambda_per_us = 2.0e-3;  // pne ~ 0.135 for the whole task
  retry.detection_coverage = 1.0;
  retry.tolerance_success = 1.0;

  ClrChainParams chk = retry;
  chk.intervals = 4;

  const double t_retry = analyze_clr_chain(retry).avg_exec_time_us;
  const double t_chk = analyze_clr_chain(chk).avg_exec_time_us;
  EXPECT_LT(t_chk, t_retry);
}

TEST(ClrChainTest, PerIntervalRetryClosedFormWithCheckpoints) {
  // Perfect detection/tolerance, free overheads: each interval is an
  // independent geometric with pne_i; total = n * (t/n) / pne_i.
  ClrChainParams p = base_params();
  p.intervals = 4;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  const double pne_i = std::exp(-0.05);
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.avg_exec_time_us, 4.0 * 250.0 / pne_i, 1e-9);
  EXPECT_NEAR(a.error_prob, 0.0, 1e-12);
}

TEST(ClrChainTest, CheckpointErrorPathFeedsErrorState) {
  ClrChainParams p = base_params();
  p.intervals = 2;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.checkpoint_error_prob = 0.0;
  const double clean = analyze_clr_chain(p).error_prob;
  EXPECT_NEAR(clean, 0.0, 1e-12);

  p.checkpoint_error_prob = 0.3;
  const double with_chk_err = analyze_clr_chain(p).error_prob;
  // Exactly the probability of reaching the (single) checkpoint times 0.3 —
  // and the checkpoint is always reached under perfect tolerance.
  EXPECT_NEAR(with_chk_err, 0.3, 1e-12);
}

// --- Monotonicity properties ----------------------------------------------------

class MaskingSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(MaskingSweepTest, MoreImplicitMaskingLowersErrorProb) {
  ClrChainParams lo = base_params();
  ClrChainParams hi = base_params();
  lo.implicit_ssw_masking = GetParam();
  hi.implicit_ssw_masking = GetParam() + 0.2;
  EXPECT_GT(analyze_clr_chain(lo).error_prob,
            analyze_clr_chain(hi).error_prob);
}

INSTANTIATE_TEST_SUITE_P(Masks, MaskingSweepTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.4, 0.6));

TEST(ClrChainTest, HigherLambdaRaisesErrorAndTime) {
  ClrChainParams p = base_params();
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.9;
  p.tolerance_time_us = 30.0;
  double prev_err = -1.0, prev_time = 0.0;
  for (double lambda : {1e-5, 1e-4, 5e-4, 2e-3}) {
    p.lambda_per_us = lambda;
    const ClrChainAnalysis a = analyze_clr_chain(p);
    EXPECT_GT(a.error_prob, prev_err);
    EXPECT_GT(a.avg_exec_time_us, prev_time);
    prev_err = a.error_prob;
    prev_time = a.avg_exec_time_us;
  }
}

TEST(ClrChainTest, ZeroLambdaIsPerfect) {
  ClrChainParams p = base_params();
  p.lambda_per_us = 0.0;
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.9;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_DOUBLE_EQ(a.error_prob, 0.0);
  EXPECT_NEAR(a.avg_exec_time_us, a.min_exec_time_us, 1e-9);
}

// --- Structural checks ------------------------------------------------------------

TEST(ClrChainTest, ChainShapesMatchFig3) {
  ClrChainParams p = base_params();
  p.intervals = 2;
  const markov::AbsorbingChain timing = build_timing_chain(p);
  const markov::AbsorbingChain functional = build_functional_chain(p);
  // Per interval: Exec, HWRel, SSWImpl, SSWDet, SSWTol, ASWRel (6) plus one
  // Chkpnt between the two intervals.
  EXPECT_EQ(timing.num_transient(), 13u);
  EXPECT_EQ(timing.num_absorbing(), 1u);
  EXPECT_EQ(functional.num_transient(), 13u);
  EXPECT_EQ(functional.num_absorbing(), 2u);
}

TEST(ClrChainTest, FunctionalAbsorptionProbabilitiesSumToOne) {
  ClrChainParams p = base_params();
  p.detection_coverage = 0.8;
  p.tolerance_success = 0.7;
  p.asw_masking = 0.5;
  p.intervals = 3;
  const markov::AbsorbingChain chain = build_functional_chain(p);
  const double err = chain.absorption_probability(0, kAbsorbError);
  const double ok = chain.absorption_probability(0, kAbsorbNoError);
  EXPECT_NEAR(err + ok, 1.0, 1e-12);
}

TEST(ClrChainTest, NonAbsorbingConfigurationRejected) {
  // pne underflows to zero and tolerance always retries: the task can never
  // finish, which the chain constructor must detect as a singular I - Q.
  ClrChainParams p = base_params();
  p.lambda_per_us = 10.0;  // pne = exp(-10000) == 0 in double precision
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  EXPECT_THROW(analyze_clr_chain(p), std::domain_error);
}

// --- Monte-Carlo cross-validation -------------------------------------------------

struct SimCase {
  double lambda;
  double cov;
  double tol;
  double asw;
  std::size_t intervals;
};

class ClrChainSimTest : public ::testing::TestWithParam<SimCase> {};

TEST_P(ClrChainSimTest, AnalyticalMatchesSimulation) {
  const SimCase c = GetParam();
  ClrChainParams p = base_params();
  p.lambda_per_us = c.lambda;
  p.detection_coverage = c.cov;
  p.tolerance_success = c.tol;
  p.asw_masking = c.asw;
  p.intervals = c.intervals;
  p.detection_time_us = 10.0;
  p.tolerance_time_us = 40.0;
  p.checkpoint_time_us = 20.0;

  const ClrChainAnalysis analytic = analyze_clr_chain(p);

  const markov::AbsorbingChain timing = build_timing_chain(p);
  const auto sim_t = markov::simulate(timing, 0, 60000, 11);
  EXPECT_NEAR(sim_t.mean_time / analytic.avg_exec_time_us, 1.0, 0.01);

  const markov::AbsorbingChain functional = build_functional_chain(p);
  const auto sim_f = markov::simulate(functional, 0, 60000, 13);
  EXPECT_NEAR(sim_f.absorption_frequency[kAbsorbError], analytic.error_prob,
              0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ClrChainSimTest,
    ::testing::Values(SimCase{2e-4, 0.0, 0.0, 0.0, 1},
                      SimCase{2e-4, 0.9, 0.9, 0.0, 1},
                      SimCase{5e-4, 0.95, 0.98, 0.5, 3},
                      SimCase{1e-3, 0.8, 0.9, 0.8, 4},
                      SimCase{1e-4, 1.0, 0.5, 0.2, 2}));

}  // namespace
}  // namespace clrearly::reliability
