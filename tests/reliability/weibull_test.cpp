#include "reliability/weibull.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace clrearly::reliability {
namespace {

TEST(WeibullTest, RejectsNonPositiveParameters) {
  EXPECT_THROW(Weibull(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(Weibull(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(Weibull(-1.0, 2.0), std::invalid_argument);
}

TEST(WeibullTest, Beta1IsExponential) {
  // With beta = 1 the Weibull degenerates to Exp(1/eta): MTTF = eta,
  // R(t) = exp(-t/eta), constant hazard 1/eta.
  const Weibull w(100.0, 1.0);
  EXPECT_NEAR(w.mttf(), 100.0, 1e-10);
  EXPECT_NEAR(w.reliability(100.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(w.hazard(5.0), 0.01, 1e-12);
  EXPECT_NEAR(w.hazard(500.0), 0.01, 1e-12);
}

TEST(WeibullTest, Beta2MttfUsesGammaFunction) {
  // Gamma(1.5) = sqrt(pi)/2.
  const Weibull w(1000.0, 2.0);
  EXPECT_NEAR(w.mttf(), 1000.0 * std::sqrt(std::numbers::pi) / 2.0, 1e-9);
}

TEST(WeibullTest, ReliabilityBoundsAndMonotonicity) {
  const Weibull w(50.0, 2.0);
  EXPECT_DOUBLE_EQ(w.reliability(0.0), 1.0);
  double prev = 1.0;
  for (double t = 10.0; t <= 200.0; t += 10.0) {
    const double r = w.reliability(t);
    EXPECT_LT(r, prev);
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

TEST(WeibullTest, CdfComplementsReliability) {
  const Weibull w(50.0, 1.7);
  for (double t : {0.0, 10.0, 50.0, 200.0}) {
    EXPECT_NEAR(w.cdf(t) + w.reliability(t), 1.0, 1e-14);
  }
}

TEST(WeibullTest, PdfIntegratesToCdf) {
  // Trapezoidal integration of the density reproduces the CDF.
  const Weibull w(40.0, 2.5);
  double integral = 0.0;
  const double dt = 0.01;
  for (double t = 0.0; t < 80.0; t += dt) {
    integral += 0.5 * (w.pdf(t) + w.pdf(t + dt)) * dt;
  }
  EXPECT_NEAR(integral, w.cdf(80.0), 1e-4);
}

TEST(WeibullTest, HazardIncreasesForBetaAbove1) {
  const Weibull w(50.0, 3.0);
  EXPECT_LT(w.hazard(10.0), w.hazard(20.0));
  EXPECT_LT(w.hazard(20.0), w.hazard(40.0));
}

TEST(WeibullTest, PdfLimitsAtZero) {
  EXPECT_DOUBLE_EQ(Weibull(10.0, 2.0).pdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Weibull(10.0, 1.0).pdf(0.0), 0.1);
}

TEST(WeibullTest, HazardAtZeroForBetaBelow1Throws) {
  EXPECT_THROW(Weibull(10.0, 0.5).hazard(0.0), std::domain_error);
}

TEST(WeibullTest, QuantileRoundTripsCdf) {
  const Weibull w(75.0, 1.9);
  for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  }
  EXPECT_THROW(w.quantile(1.0), std::invalid_argument);
  EXPECT_THROW(w.quantile(-0.1), std::invalid_argument);
}

TEST(WeibullTest, NegativeTimeRejected) {
  const Weibull w(10.0, 2.0);
  EXPECT_THROW(w.reliability(-1.0), std::invalid_argument);
  EXPECT_THROW(w.pdf(-1.0), std::invalid_argument);
  EXPECT_THROW(w.hazard(-1.0), std::invalid_argument);
}

// --- Arrhenius aging ---------------------------------------------------------

TEST(ArrheniusAgingTest, ReferenceTemperatureIsIdentity) {
  const ArrheniusAging aging;
  EXPECT_NEAR(aging.scale_eta(1e5, aging.reference_temp_c), 1e5, 1e-6);
}

TEST(ArrheniusAgingTest, HotterShrinksEta) {
  const ArrheniusAging aging;
  const double cool = aging.scale_eta(1e5, 50.0);
  const double ref = aging.scale_eta(1e5, 60.0);
  const double hot = aging.scale_eta(1e5, 90.0);
  EXPECT_GT(cool, ref);
  EXPECT_GT(ref, hot);
}

TEST(ArrheniusAgingTest, AccelerationFactorMatchesClosedForm) {
  ArrheniusAging aging;
  aging.activation_energy_ev = 0.5;
  aging.reference_temp_c = 60.0;
  const double t1_k = 60.0 + 273.15;
  const double t2_k = 85.0 + 273.15;
  const double expected =
      std::exp((0.5 / 8.617333262e-5) * (1.0 / t2_k - 1.0 / t1_k));
  EXPECT_NEAR(aging.scale_eta(1.0, 85.0), expected, 1e-12);
}

TEST(ArrheniusAgingTest, RejectsBadInput) {
  const ArrheniusAging aging;
  EXPECT_THROW(aging.scale_eta(0.0, 60.0), std::invalid_argument);
  EXPECT_THROW(aging.scale_eta(1.0, -300.0), std::invalid_argument);
}

}  // namespace
}  // namespace clrearly::reliability
