// The chain-solve cache key and its contract.
//
// Three layers of protection against a cache that silently corrupts the
// reliability numbers:
//  1. Property tests on chain_cache_key — randomized parameter sets never
//     collide (1e5-draw smoke over the 128-bit key), every individual field
//     perturbs the key, and canonicalization maps representations that build
//     the same chain (equal-split interval_fractions vs the empty default)
//     to the same key.
//  2. Golden-value regressions — hand-derived closed forms for degenerate
//     chains (single interval, perfect detection, certain tolerance) pin
//     avg_exec_time_us and error_prob to literal values, so a cache or
//     refactor that returns stale/mismatched entries fails loudly.
//  3. Differential checks — the cached analyze_clr_chain must be bit-equal
//     to analyze_clr_chain_uncached for randomized parameters, repeated
//     queries, and across eviction pressure at tiny capacities.
#include "reliability/clr_chain_builder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "util/memo_cache.hpp"
#include "util/rng.hpp"

namespace clrearly::reliability {
namespace {

class ChainCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { util::reset_cache_capacity(); }
};

ClrChainParams random_params(util::Rng& rng) {
  ClrChainParams p;
  p.exec_time_us = rng.uniform(1.0, 5000.0);
  p.lambda_per_us = rng.uniform(0.0, 0.01);
  p.hw_masking = rng.uniform();
  p.implicit_ssw_masking = rng.uniform();
  p.detection_coverage = rng.uniform();
  p.tolerance_success = rng.uniform(0.0, 0.999);
  p.asw_masking = rng.uniform();
  p.intervals = 1 + rng.index(4);
  p.detection_time_us = rng.uniform(0.0, 10.0);
  p.tolerance_time_us = rng.uniform(0.0, 50.0);
  p.checkpoint_time_us = rng.uniform(0.0, 20.0);
  p.checkpoint_error_prob = rng.uniform(0.0, 0.05);
  return p;
}

TEST_F(ChainCacheTest, KeyCollisionSmokeOverRandomizedConfigurations) {
  util::Rng rng(2024);
  std::set<std::pair<std::uint64_t, std::uint64_t>> keys;
  for (int draw = 0; draw < 100000; ++draw) {
    const util::Key128 k = chain_cache_key(random_params(rng));
    EXPECT_TRUE(keys.insert({k.lo, k.hi}).second)
        << "key collision at draw " << draw;
  }
}

TEST_F(ChainCacheTest, EveryFieldPerturbsTheKey) {
  util::Rng rng(7);
  for (int draw = 0; draw < 200; ++draw) {
    const ClrChainParams base = random_params(rng);
    const util::Key128 k0 = chain_cache_key(base);
    std::vector<ClrChainParams> variants;
    for (int field = 0; field < 12; ++field) variants.push_back(base);
    variants[0].exec_time_us *= 1.0 + 1e-12;
    variants[1].lambda_per_us += 1e-9;
    variants[2].hw_masking = base.hw_masking * 0.5 + 0.25;
    variants[3].implicit_ssw_masking = base.implicit_ssw_masking * 0.5 + 0.2;
    variants[4].detection_coverage = base.detection_coverage * 0.5 + 0.1;
    variants[5].tolerance_success = base.tolerance_success * 0.5 + 0.05;
    variants[6].asw_masking = base.asw_masking * 0.5 + 0.3;
    variants[7].intervals = base.intervals + 1;
    variants[8].detection_time_us += 0.125;
    variants[9].tolerance_time_us += 0.125;
    variants[10].checkpoint_time_us += 0.125;
    variants[11].checkpoint_error_prob = base.checkpoint_error_prob / 2 + 0.01;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const util::Key128 kv = chain_cache_key(variants[v]);
      EXPECT_FALSE(kv == k0) << "field " << v << " did not perturb the key";
    }
  }
}

TEST_F(ChainCacheTest, CanonicalizationMapsEquivalentConfigsToTheSameKey) {
  util::Rng rng(11);
  for (int draw = 0; draw < 200; ++draw) {
    ClrChainParams base = random_params(rng);

    // Explicit equal splits build bit-identical chains to the empty default
    // whenever the fraction arithmetic is exact (powers of two): x * 0.5 and
    // x / 2 are the same double for every finite x.
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      base.intervals = n;
      base.interval_fractions.clear();
      const util::Key128 implicit_key = chain_cache_key(base);
      base.interval_fractions.assign(n, 1.0 / static_cast<double>(n));
      const util::Key128 explicit_key = chain_cache_key(base);
      EXPECT_TRUE(implicit_key == explicit_key)
          << "equal split over " << n << " intervals changed the key";
      EXPECT_EQ(analyze_clr_chain_uncached(base).avg_exec_time_us,
                analyze_clr_chain(base).avg_exec_time_us);
    }
    base.interval_fractions.clear();

    // -0.0 fields canonicalize onto +0.0 (arithmetically identical chains).
    ClrChainParams zeroed = base;
    zeroed.lambda_per_us = 0.0;
    const util::Key128 plus = chain_cache_key(zeroed);
    zeroed.lambda_per_us = -0.0;
    EXPECT_TRUE(plus == chain_cache_key(zeroed));
  }
}

// ---- Golden values -------------------------------------------------------
//
// All derived by hand from the Fig. 3 topology; see each case's comment.
// Literals are pinned to 15 significant digits so a stale or mismatched
// cache entry (or a behavioral refactor) fails this suite loudly.

TEST_F(ChainCacheTest, GoldenUnprotectedSingleInterval) {
  // No protection at all: one interval, every masking 0, no detection.
  // P[error] = 1 - exp(-lambda * T) and the time chains absorb after one
  // pass of T regardless of outcome.
  ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 0.01;  // lambda * T = 1
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 0.632120558828558, 1e-12);
  EXPECT_DOUBLE_EQ(a.avg_exec_time_us, 100.0);
  EXPECT_DOUBLE_EQ(a.min_exec_time_us, 100.0);
  EXPECT_NEAR(a.exec_time_stddev_us, 0.0, 1e-9);
}

TEST_F(ChainCacheTest, GoldenHardwareMaskingScalesErrorProbability) {
  // HW masking m: an SEU (prob 1 - exp(-1)) escapes with prob (1 - m).
  ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 0.01;
  p.hw_masking = 0.25;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 0.75 * 0.632120558828558, 1e-12);
  EXPECT_DOUBLE_EQ(a.avg_exec_time_us, 100.0);
}

TEST_F(ChainCacheTest, GoldenCertainDetectionAndToleranceRetriesForever) {
  // cov = 1, tolerance success = 1: every error is detected and rolled
  // back, so absorption is always clean (error_prob = 0) and the expected
  // time solves E = T + Tdet + (1 - pne)(Ttol + E):
  //   E = (T + Tdet + (1 - pne) * Ttol) / pne.
  ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 0.01;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.detection_time_us = 2.0;
  p.tolerance_time_us = 5.0;
  const double pne = std::exp(-1.0);
  const double expected = (102.0 + (1.0 - pne) * 5.0) / pne;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 0.0, 1e-15);
  EXPECT_NEAR(a.avg_exec_time_us, expected, 1e-9 * expected);
  EXPECT_NEAR(a.avg_exec_time_us, 285.856155645118, 1e-6);
  EXPECT_DOUBLE_EQ(a.min_exec_time_us, 102.0);
}

TEST_F(ChainCacheTest, GoldenFailedToleranceFallsThroughToAswMasking) {
  // cov = 1 but tolerance never succeeds: every error pays Ttol once, then
  // the ASW layer masks half. error_prob = (1 - pne) * (1 - m_asw) and
  // E[T] = T + (1 - pne) * Ttol.
  ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 0.01;
  p.detection_coverage = 1.0;
  p.tolerance_success = 0.0;
  p.tolerance_time_us = 8.0;
  p.asw_masking = 0.5;
  const double pne = std::exp(-1.0);
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 0.5 * (1.0 - pne), 1e-12);
  EXPECT_NEAR(a.error_prob, 0.316060279414279, 1e-12);
  EXPECT_NEAR(a.avg_exec_time_us, 100.0 + (1.0 - pne) * 8.0, 1e-9);
  EXPECT_NEAR(a.avg_exec_time_us, 105.056964470628, 1e-6);
}

// ---- Differential: cached vs uncached ------------------------------------

TEST_F(ChainCacheTest, CachedSolvesAreBitIdenticalToUncached) {
  util::set_cache_capacity(4096);
  util::Rng rng(99);
  for (int draw = 0; draw < 500; ++draw) {
    const ClrChainParams p = random_params(rng);
    const ClrChainAnalysis pure = analyze_clr_chain_uncached(p);
    // First query fills the cache, second must hit; both bit-equal to pure.
    for (int round = 0; round < 2; ++round) {
      const ClrChainAnalysis cached = analyze_clr_chain(p);
      EXPECT_EQ(pure.min_exec_time_us, cached.min_exec_time_us);
      EXPECT_EQ(pure.avg_exec_time_us, cached.avg_exec_time_us);
      EXPECT_EQ(pure.exec_time_stddev_us, cached.exec_time_stddev_us);
      EXPECT_EQ(pure.error_prob, cached.error_prob);
    }
  }
  const util::CacheStats stats = chain_cache_stats();
  EXPECT_GE(stats.hits, 500u);
}

TEST_F(ChainCacheTest, TinyCapacityEvictionNeverCorruptsResults) {
  util::set_cache_capacity(16);  // constant eviction pressure
  util::Rng rng(123);
  std::vector<ClrChainParams> params;
  for (int draw = 0; draw < 64; ++draw) params.push_back(random_params(rng));
  for (int round = 0; round < 3; ++round) {
    for (const ClrChainParams& p : params) {
      const ClrChainAnalysis pure = analyze_clr_chain_uncached(p);
      const ClrChainAnalysis cached = analyze_clr_chain(p);
      EXPECT_EQ(pure.avg_exec_time_us, cached.avg_exec_time_us);
      EXPECT_EQ(pure.error_prob, cached.error_prob);
    }
  }
}

TEST_F(ChainCacheTest, DisabledCacheStillSolvesCorrectly) {
  util::set_cache_capacity(0);
  ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 0.01;
  const ClrChainAnalysis a = analyze_clr_chain(p);
  EXPECT_NEAR(a.error_prob, 0.632120558828558, 1e-12);
  EXPECT_EQ(chain_cache_stats().hits + chain_cache_stats().misses, 0u);
}

}  // namespace
}  // namespace clrearly::reliability
