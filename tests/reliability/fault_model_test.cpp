#include "reliability/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace clrearly::reliability {
namespace {

platform::PeType test_pe(double masking = 0.2) {
  platform::PeType pe;
  pe.name = "test";
  pe.masking_factor = masking;
  pe.weibull_beta = 2.0;
  pe.weibull_eta_base_hours = 1e5;
  pe.dvfs = platform::DvfsTable::paper_default();
  return pe;
}

TEST(FaultEnvironmentTest, DefaultValidates) {
  EXPECT_NO_THROW(FaultEnvironment{}.validate());
}

TEST(FaultEnvironmentTest, RejectsBadParameters) {
  {
    FaultEnvironment env;
    env.base_seu_rate_per_us = 0.0;
    EXPECT_THROW(env.validate(), std::invalid_argument);
  }
  {
    FaultEnvironment env;
    env.dvfs_sensitivity = -1.0;
    EXPECT_THROW(env.validate(), std::invalid_argument);
  }
  {
    FaultEnvironment env;
    env.environment_factor = 0.0;
    EXPECT_THROW(env.validate(), std::invalid_argument);
  }
}

TEST(EffectiveSeuRateTest, NominalModeAppliesOnlyMasking) {
  FaultEnvironment env;
  const platform::PeType pe = test_pe(0.25);
  const double rate = effective_seu_rate(env, pe, 0);
  EXPECT_NEAR(rate, env.base_seu_rate_per_us * 0.75, 1e-18);
}

TEST(EffectiveSeuRateTest, LowerVoltageRaisesRate) {
  FaultEnvironment env;
  const platform::PeType pe = test_pe();
  const double nominal = effective_seu_rate(env, pe, 0);
  const double mid = effective_seu_rate(env, pe, 1);
  const double slow = effective_seu_rate(env, pe, 2);
  EXPECT_LT(nominal, mid);
  EXPECT_LT(mid, slow);
  // Sensitivity d=2 -> 100x at the slowest mode.
  EXPECT_NEAR(slow / nominal, 100.0, 1e-6);
}

TEST(EffectiveSeuRateTest, EnvironmentFactorScalesLinearly) {
  FaultEnvironment env;
  const platform::PeType pe = test_pe();
  const double ground = effective_seu_rate(env, pe, 0);
  env.environment_factor = 50.0;  // avionics altitude
  EXPECT_NEAR(effective_seu_rate(env, pe, 0), 50.0 * ground, 1e-15);
}

TEST(EffectiveSeuRateTest, StrongerMaskingLowersRate) {
  FaultEnvironment env;
  const double weak = effective_seu_rate(env, test_pe(0.1), 0);
  const double strong = effective_seu_rate(env, test_pe(0.5), 0);
  EXPECT_GT(weak, strong);
}

TEST(ErrorProbabilityTest, MatchesExponentialLaw) {
  EXPECT_DOUBLE_EQ(error_probability(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(error_probability(1.0, 0.0), 0.0);
  EXPECT_NEAR(error_probability(1e-4, 1000.0), 1.0 - std::exp(-0.1), 1e-12);
  // Saturates toward 1.
  EXPECT_NEAR(error_probability(1.0, 100.0), 1.0, 1e-12);
}

TEST(ErrorProbabilityTest, RejectsNegativeArguments) {
  EXPECT_THROW(error_probability(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(error_probability(1.0, -1.0), std::invalid_argument);
}

TEST(ThermalModelTest, JunctionTemperatureIsAffine) {
  ThermalModel thermal;
  thermal.ambient_c = 40.0;
  thermal.theta_c_per_w = 30.0;
  EXPECT_DOUBLE_EQ(thermal.junction_temperature_c(0.0), 40.0);
  EXPECT_DOUBLE_EQ(thermal.junction_temperature_c(1.5), 85.0);
}

TEST(ThermalModelTest, RejectsNegativePower) {
  EXPECT_THROW(ThermalModel{}.junction_temperature_c(-1.0),
               std::invalid_argument);
}

TEST(ThermalModelTest, ValidateRejectsNonPositiveTheta) {
  ThermalModel thermal;
  thermal.theta_c_per_w = 0.0;
  EXPECT_THROW(thermal.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace clrearly::reliability
