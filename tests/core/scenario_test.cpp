#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "app/sobel.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"

namespace clrearly::core {
namespace {

// --- ScenarioSet ---------------------------------------------------------------

TEST(ScenarioSetTest, NormalizesWeights) {
  const ScenarioSet set({{"a", 1.0, 3.0}, {"b", 10.0, 1.0}});
  EXPECT_DOUBLE_EQ(set.scenario(0).weight, 0.75);
  EXPECT_DOUBLE_EQ(set.scenario(1).weight, 0.25);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_THROW(set.scenario(2), std::out_of_range);
}

TEST(ScenarioSetTest, Validation) {
  EXPECT_THROW(ScenarioSet({}), std::invalid_argument);
  EXPECT_THROW(ScenarioSet({{"a", 0.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(ScenarioSet({{"a", 1.0, 0.0}}), std::invalid_argument);
}

TEST(ScenarioSetTest, GroundAndAltitudeProfile) {
  const ScenarioSet set = ScenarioSet::ground_and_altitude();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.scenario(0).name, "ground");
  EXPECT_GT(set.scenario(1).environment_factor,
            set.scenario(0).environment_factor);
  EXPECT_NEAR(set.scenario(0).weight + set.scenario(1).weight, 1.0, 1e-12);
}

// --- ScenarioProblem -------------------------------------------------------------

class ScenarioProblemFixture : public ::testing::Test {
 protected:
  ScenarioProblem make(ScenarioAggregation aggregation,
                       sched::QosSpec spec = {}) const {
    return ScenarioProblem(app::make_sobel_application(),
                           platform::Architecture::paper_default(),
                           reliability::TaskAnalyzer::paper_default(),
                           ScenarioSet::ground_and_altitude(),
                           SystemObjectives{}, spec, aggregation);
  }
};

TEST_F(ScenarioProblemFixture, SharedLayoutAcrossScenarios) {
  const ScenarioProblem problem = make(ScenarioAggregation::kWeighted);
  EXPECT_EQ(problem.layout().num_tasks(), 5u);
  EXPECT_EQ(&problem.layout(), &problem.problem(0).layout());
  // Sub-problems only differ in their fault environment.
  EXPECT_DOUBLE_EQ(
      problem.problem(0).analyzer().environment().environment_factor, 1.0);
  EXPECT_DOUBLE_EQ(
      problem.problem(1).analyzer().environment().environment_factor, 50.0);
}

TEST_F(ScenarioProblemFixture, PerScenarioQosOrdersErrorByFlux) {
  const ScenarioProblem problem = make(ScenarioAggregation::kWeighted);
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const MappingGenome g = problem.layout().random(rng);
    const auto qos = problem.per_scenario_qos(g);
    ASSERT_EQ(qos.size(), 2u);
    // Altitude has at least the ground error probability, and the higher
    // retry pressure can only lengthen the schedule, never shorten it.
    EXPECT_GE(qos[1].error_prob, qos[0].error_prob);
    EXPECT_GE(qos[1].makespan_us, qos[0].makespan_us - 1e-9);
  }
}

TEST_F(ScenarioProblemFixture, WeightedAggregationIsConvexCombination) {
  const ScenarioProblem problem = make(ScenarioAggregation::kWeighted);
  util::Rng rng(4);
  const MappingGenome g = problem.layout().random(rng);
  const auto qos = problem.per_scenario_qos(g);
  const auto eval = problem.evaluate(g);
  ASSERT_EQ(eval.objectives.size(), 2u);
  EXPECT_NEAR(eval.objectives[1],
              0.85 * qos[0].error_prob + 0.15 * qos[1].error_prob, 1e-12);
  EXPECT_NEAR(eval.objectives[0],
              0.85 * qos[0].makespan_us + 0.15 * qos[1].makespan_us, 1e-9);
}

TEST_F(ScenarioProblemFixture, WorstCaseTakesComponentwiseMax) {
  const ScenarioProblem problem = make(ScenarioAggregation::kWorstCase);
  util::Rng rng(5);
  const MappingGenome g = problem.layout().random(rng);
  const auto qos = problem.per_scenario_qos(g);
  const auto eval = problem.evaluate(g);
  EXPECT_NEAR(eval.objectives[1],
              std::max(qos[0].error_prob, qos[1].error_prob), 1e-12);
}

TEST_F(ScenarioProblemFixture, SpecMustHoldInEveryScenario) {
  sched::QosSpec spec;
  spec.min_functional_rel = 0.98;
  const ScenarioProblem problem = make(ScenarioAggregation::kWeighted, spec);
  util::Rng rng(6);
  // Find a genome feasible at ground but not at altitude; its aggregated
  // violation must reflect the altitude failure.
  bool found_case = false;
  for (int trial = 0; trial < 300 && !found_case; ++trial) {
    const MappingGenome g = problem.layout().random(rng);
    const auto qos = problem.per_scenario_qos(g);
    const bool ok_ground = qos[0].functional_rel >= 0.98;
    const bool ok_altitude = qos[1].functional_rel >= 0.98;
    if (ok_ground && !ok_altitude) {
      EXPECT_GT(problem.evaluate(g).violation, 0.0);
      found_case = true;
    }
  }
  EXPECT_TRUE(found_case);
}

TEST_F(ScenarioProblemFixture, RobustDesignSurvivesBothConditions) {
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  const ScenarioProblem problem = make(ScenarioAggregation::kWeighted, spec);

  moea::Nsga2Params ga;
  ga.population_size = 40;
  ga.generations = 25;
  util::Rng rng(7);
  const auto result = moea::run_nsga2(ga, problem.ops(), rng);

  bool any_feasible = false;
  for (std::size_t i : result.front) {
    if (result.population[i].eval.violation > 0.0) continue;
    any_feasible = true;
    const auto qos = problem.per_scenario_qos(result.population[i].genome);
    EXPECT_GE(qos[0].functional_rel, 0.99);
    EXPECT_GE(qos[1].functional_rel, 0.99);  // robust at altitude too
  }
  EXPECT_TRUE(any_feasible);
}

}  // namespace
}  // namespace clrearly::core
