#include "core/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <set>
#include <stdexcept>

#include "app/sobel.hpp"
#include "core/tdse.hpp"
#include "platform/architecture.hpp"

namespace clrearly::core {
namespace {

class ProblemFixture : public ::testing::Test {
 protected:
  app::Application sobel_ = app::make_sobel_application();
  platform::Architecture arch_ = platform::Architecture::paper_default();
  reliability::TaskAnalyzer analyzer_ =
      reliability::TaskAnalyzer::paper_default();

  ClrMappingProblem full_problem() const {
    return ClrMappingProblem(sobel_, arch_, analyzer_, SystemObjectives{},
                             sched::QosSpec{});
  }

  std::vector<std::vector<TaskDesignPoint>> pareto_points() const {
    const Tdse tdse(analyzer_);
    const auto results =
        tdse.run_application(sobel_, arch_, TdseObjectives::tdse_run(1));
    std::vector<std::vector<TaskDesignPoint>> points;
    for (const auto& r : results) points.push_back(r.pareto);
    return points;
  }

  ClrMappingProblem pf_problem() const {
    return ClrMappingProblem(sobel_, arch_, analyzer_, SystemObjectives{},
                             sched::QosSpec{}, pareto_points());
  }
};

// --- SystemObjectives -------------------------------------------------------

TEST(SystemObjectivesTest, DefaultIsMakespanPlusErrorProb) {
  const SystemObjectives obj;
  EXPECT_EQ(obj.count(), 2u);
  sched::QosMetrics m;
  m.makespan_us = 123.0;
  m.error_prob = 0.25;
  const auto v = obj.extract(m);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 123.0);
  EXPECT_EQ(v[1], 0.25);
}

TEST(SystemObjectivesTest, MttfNegatedEnergyPowerAppended) {
  SystemObjectives obj;
  obj.mttf = obj.energy = obj.power = true;
  sched::QosMetrics m;
  m.mttf_hours = 1000.0;
  m.energy_uj = 5.0;
  m.peak_power_w = 2.0;
  const auto v = obj.extract(m);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[2], -1000.0);
  EXPECT_EQ(v[3], 5.0);
  EXPECT_EQ(v[4], 2.0);
}

TEST(SystemObjectivesTest, EmptySelectionThrows) {
  SystemObjectives obj;
  obj.makespan = obj.error_prob = false;
  EXPECT_THROW(obj.extract(sched::QosMetrics{}), std::invalid_argument);
}

// --- fcCLR layout and decode ----------------------------------------------------

TEST_F(ProblemFixture, FullConfigLayoutShape) {
  const ClrMappingProblem problem = full_problem();
  EXPECT_EQ(problem.mode(), ClrMappingProblem::Mode::kFullConfig);
  const GenomeLayout& layout = problem.layout();
  EXPECT_EQ(layout.num_tasks(), 5u);
  EXPECT_EQ(layout.fields_per_task(), ClrMappingProblem::kFullConfigFields);
  // Per-task cardinalities: impl=2, pe=6, hw=3, ssw=5, asw=4, dvfs=3.
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldImpl), 2u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldPeSel), 6u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldHw), 3u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldSsw), 5u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldAsw), 4u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldDvfs), 3u);
}

TEST_F(ProblemFixture, DecodeAlwaysYieldsCompatibleBindings) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const MappingGenome g = problem.layout().random(rng);
    const auto decisions = problem.decode(g);
    ASSERT_EQ(decisions.size(), 5u);
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_LT(decisions[t].pe, arch_.num_pes());
      EXPECT_GT(decisions[t].metrics.avg_exec_time_us, 0.0);
      EXPECT_GT(decisions[t].metrics.mttf_hours, 0.0);
    }
  }
}

TEST_F(ProblemFixture, EvaluationIsDeterministic) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(2);
  const MappingGenome g = problem.layout().random(rng);
  const auto a = problem.evaluate(g);
  const auto b = problem.evaluate(g);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.violation, b.violation);
}

TEST_F(ProblemFixture, CachedMetricsMatchDirectAnalyzerEvaluation) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(3);
  const MappingGenome g = problem.layout().random(rng);
  const auto decisions = problem.decode(g);
  const GenomeLayout& layout = problem.layout();

  for (std::size_t t = 0; t < 5; ++t) {
    const std::size_t type = sobel_.graph.task(t).type;
    const std::size_t impl =
        layout.gene(g, t, ClrMappingProblem::kFieldImpl) %
        sobel_.impls[type].size();
    const auto& pe_type = arch_.type_of(decisions[t].pe);
    reliability::ClrConfig cfg;
    cfg.hw = layout.gene(g, t, ClrMappingProblem::kFieldHw);
    cfg.ssw = layout.gene(g, t, ClrMappingProblem::kFieldSsw);
    cfg.asw = layout.gene(g, t, ClrMappingProblem::kFieldAsw);
    cfg.dvfs =
        layout.gene(g, t, ClrMappingProblem::kFieldDvfs) % pe_type.dvfs.size();
    const auto direct =
        analyzer_.evaluate(sobel_.impls[type][impl], pe_type, cfg);
    EXPECT_DOUBLE_EQ(decisions[t].metrics.avg_exec_time_us,
                     direct.avg_exec_time_us);
    EXPECT_DOUBLE_EQ(decisions[t].metrics.error_prob, direct.error_prob);
    EXPECT_DOUBLE_EQ(decisions[t].metrics.mttf_hours, direct.mttf_hours);
  }
}

TEST_F(ProblemFixture, AxesPinningForcesBaselineConfigs) {
  const ClrMappingProblem problem(sobel_, arch_, analyzer_, SystemObjectives{},
                                  sched::QosSpec{},
                                  reliability::ClrAxes::only_dvfs());
  const GenomeLayout& layout = problem.layout();
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldHw), 1u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldSsw), 1u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldAsw), 1u);
  EXPECT_EQ(layout.cardinality(0, ClrMappingProblem::kFieldDvfs), 3u);
}

TEST_F(ProblemFixture, QosSpecDrivesViolation) {
  sched::QosSpec spec;
  spec.max_makespan_us = 1.0;  // unsatisfiable
  const ClrMappingProblem problem(sobel_, arch_, analyzer_, SystemObjectives{},
                                  spec);
  util::Rng rng(4);
  const MappingGenome g = problem.layout().random(rng);
  EXPECT_GT(problem.evaluate(g).violation, 0.0);
}

// --- pfCLR ------------------------------------------------------------------------

TEST_F(ProblemFixture, ParetoFilteredLayoutShape) {
  const ClrMappingProblem problem = pf_problem();
  EXPECT_EQ(problem.mode(), ClrMappingProblem::Mode::kParetoFiltered);
  const GenomeLayout& layout = problem.layout();
  EXPECT_EQ(layout.fields_per_task(), ClrMappingProblem::kParetoFields);
  const auto points = pareto_points();
  for (std::size_t t = 0; t < 5; ++t) {
    const std::size_t type = sobel_.graph.task(t).type;
    EXPECT_EQ(layout.cardinality(t, ClrMappingProblem::kFieldPoint),
              points[type].size());
  }
}

TEST_F(ProblemFixture, ParetoFilteredDecodeUsesStoredMetrics) {
  const auto points = pareto_points();
  const ClrMappingProblem problem(sobel_, arch_, analyzer_, SystemObjectives{},
                                  sched::QosSpec{}, points);
  util::Rng rng(5);
  const MappingGenome g = problem.layout().random(rng);
  const auto decisions = problem.decode(g);
  const GenomeLayout& layout = problem.layout();
  for (std::size_t t = 0; t < 5; ++t) {
    const std::size_t type = sobel_.graph.task(t).type;
    const auto& point =
        points[type][layout.gene(g, t, ClrMappingProblem::kFieldPoint)];
    EXPECT_DOUBLE_EQ(decisions[t].metrics.avg_exec_time_us,
                     point.metrics.avg_exec_time_us);
    // The chosen PE instance belongs to the point's PE type.
    EXPECT_EQ(arch_.pe(decisions[t].pe).type_index, point.pe_type);
  }
}

TEST_F(ProblemFixture, EmptyParetoSetRejected) {
  auto points = pareto_points();
  points[2].clear();
  EXPECT_THROW(ClrMappingProblem(sobel_, arch_, analyzer_, SystemObjectives{},
                                 sched::QosSpec{}, points),
               std::invalid_argument);
}

// --- pf -> fc translation (the seeding bridge) --------------------------------------

TEST_F(ProblemFixture, TranslationPreservesQos) {
  const ClrMappingProblem pf = pf_problem();
  const ClrMappingProblem fc = full_problem();
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const MappingGenome g = pf.layout().random(rng);
    const MappingGenome translated = pf.translate_to(fc, g);
    EXPECT_NO_THROW(fc.layout().validate(translated));

    const sched::QosMetrics qos_pf = pf.qos(g);
    const sched::QosMetrics qos_fc = fc.qos(translated);
    EXPECT_DOUBLE_EQ(qos_fc.makespan_us, qos_pf.makespan_us);
    EXPECT_DOUBLE_EQ(qos_fc.error_prob, qos_pf.error_prob);
    EXPECT_DOUBLE_EQ(qos_fc.mttf_hours, qos_pf.mttf_hours);
    EXPECT_DOUBLE_EQ(qos_fc.energy_uj, qos_pf.energy_uj);
    EXPECT_DOUBLE_EQ(qos_fc.peak_power_w, qos_pf.peak_power_w);
  }
}

TEST_F(ProblemFixture, TranslationRequiresCorrectModes) {
  const ClrMappingProblem pf = pf_problem();
  const ClrMappingProblem fc = full_problem();
  util::Rng rng(7);
  const MappingGenome g_fc = fc.layout().random(rng);
  EXPECT_THROW(fc.translate_to(pf, g_fc), std::invalid_argument);
  const MappingGenome g_pf = pf.layout().random(rng);
  EXPECT_THROW(pf.translate_to(pf, g_pf), std::invalid_argument);
}

// --- Design-space cardinality (Section V-B formulas) --------------------------------

TEST_F(ProblemFixture, DesignSpaceSizeMatchesClosedForm) {
  // Sobel: T = 5 tasks, P = 6 PEs, I_t = 2 impls, |C_t| = 3*5*4*3 = 180.
  //   log10(6^5 * 5! * (2*180)^5)
  const double expected = 5.0 * std::log10(6.0) + std::log10(120.0) +
                          5.0 * std::log10(2.0 * 180.0);
  EXPECT_NEAR(full_problem().log10_design_space_size(), expected, 1e-9);
}

TEST_F(ProblemFixture, PruningShrinksTheDesignSpace) {
  const double full = full_problem().log10_design_space_size();
  const double pruned = pf_problem().log10_design_space_size();
  EXPECT_LT(pruned, full);
  // Single-layer restriction also shrinks the space.
  const ClrMappingProblem dvfs_only(sobel_, arch_, analyzer_,
                                    SystemObjectives{}, sched::QosSpec{},
                                    reliability::ClrAxes::only_dvfs());
  EXPECT_LT(dvfs_only.log10_design_space_size(), full);
}

// --- ops() ---------------------------------------------------------------------------

TEST_F(ProblemFixture, OpsCallbacksAreCoherent) {
  const ClrMappingProblem problem = full_problem();
  const auto ops = problem.ops();
  util::Rng rng(8);
  MappingGenome a = ops.create(rng);
  MappingGenome b = ops.create(rng);
  EXPECT_NO_THROW(problem.layout().validate(a));
  auto [ca, cb] = ops.crossover(a, b, rng);
  EXPECT_NO_THROW(problem.layout().validate(ca));
  ops.mutate(ca, rng);
  EXPECT_NO_THROW(problem.layout().validate(ca));
  const auto eval = ops.evaluate(ca);
  EXPECT_EQ(eval.objectives.size(), 2u);
}

}  // namespace
}  // namespace clrearly::core
