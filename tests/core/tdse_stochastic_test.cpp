// Tests for the GA-based (stochastic) task-level DSE.
#include <gtest/gtest.h>

#include <stdexcept>

#include "app/sobel.hpp"
#include "core/tdse.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"

namespace clrearly::core {
namespace {

class StochasticTdseFixture : public ::testing::Test {
 protected:
  platform::Architecture arch_ = platform::Architecture::paper_default();
  app::Application sobel_ = app::make_sobel_application();
  Tdse tdse_{reliability::TaskAnalyzer::paper_default()};

  moea::Nsga2Params ga_params() const {
    moea::Nsga2Params ga;
    ga.population_size = 40;
    ga.generations = 30;
    return ga;
  }
};

TEST_F(StochasticTdseFixture, RejectsEmptyImplList) {
  EXPECT_THROW(tdse_.run_stochastic({}, arch_, TdseObjectives::tdse_run(1),
                                    ga_params(), 1),
               std::invalid_argument);
}

TEST_F(StochasticTdseFixture, AllVisitedPointsAreValid) {
  const auto result = tdse_.run_stochastic(
      sobel_.impls[0], arch_, TdseObjectives::tdse_run(1), ga_params(), 2);
  ASSERT_FALSE(result.enumerated.empty());
  for (const TaskDesignPoint& p : result.enumerated) {
    ASSERT_LT(p.impl_index, sobel_.impls[0].size());
    EXPECT_TRUE(sobel_.impls[0][p.impl_index].runs_on(arch_.type(p.pe_type)));
    EXPECT_GT(p.metrics.avg_exec_time_us, 0.0);
  }
}

TEST_F(StochasticTdseFixture, VisitedPointsAreDeduplicated) {
  const auto result = tdse_.run_stochastic(
      sobel_.impls[0], arch_, TdseObjectives::tdse_run(1), ga_params(), 3);
  for (std::size_t i = 0; i < result.enumerated.size(); ++i) {
    for (std::size_t j = i + 1; j < result.enumerated.size(); ++j) {
      const auto& a = result.enumerated[i];
      const auto& b = result.enumerated[j];
      EXPECT_FALSE(a.impl_index == b.impl_index && a.pe_type == b.pe_type &&
                   a.config == b.config);
    }
  }
}

TEST_F(StochasticTdseFixture, FrontIsSubsetOfVisitedAndNonDominated) {
  const TdseObjectives obj = TdseObjectives::tdse_run(1);
  const auto result =
      tdse_.run_stochastic(sobel_.impls[1], arch_, obj, ga_params(), 4);
  ASSERT_FALSE(result.pareto.empty());
  for (const TaskDesignPoint& survivor : result.pareto) {
    const auto vs = obj.extract(survivor.metrics);
    for (const TaskDesignPoint& other : result.enumerated) {
      if (other.pe_type != survivor.pe_type) continue;
      EXPECT_FALSE(moea::dominates(obj.extract(other.metrics), vs));
    }
  }
}

TEST_F(StochasticTdseFixture, ApproachesBruteForceFrontQuality) {
  // The GA search must recover most of the exact front's hypervolume while
  // visiting far fewer points than full enumeration.
  const TdseObjectives obj = TdseObjectives::tdse_run(1);
  const auto exact = tdse_.run(sobel_.impls[0], arch_, obj);
  const auto approx =
      tdse_.run_stochastic(sobel_.impls[0], arch_, obj, ga_params(), 5);

  EXPECT_LT(approx.enumerated.size(), exact.enumerated.size());

  auto to_vectors = [&](const std::vector<TaskDesignPoint>& points) {
    std::vector<moea::Objectives> out;
    for (const auto& p : points) out.push_back(obj.extract(p.metrics));
    return out;
  };
  const auto exact_front = to_vectors(exact.pareto);
  const auto approx_front = to_vectors(approx.pareto);
  const auto ref = moea::common_reference({exact_front, approx_front});
  const double hv_exact = moea::hypervolume(exact_front, ref);
  const double hv_approx = moea::hypervolume(approx_front, ref);
  EXPECT_GT(hv_approx, 0.8 * hv_exact);
  // And it can never beat the exact front.
  EXPECT_LE(hv_approx, hv_exact + 1e-9);
}

TEST_F(StochasticTdseFixture, DeterministicPerSeed) {
  const TdseObjectives obj = TdseObjectives::tdse_run(1);
  const auto a =
      tdse_.run_stochastic(sobel_.impls[2], arch_, obj, ga_params(), 7);
  const auto b =
      tdse_.run_stochastic(sobel_.impls[2], arch_, obj, ga_params(), 7);
  ASSERT_EQ(a.pareto.size(), b.pareto.size());
  for (std::size_t i = 0; i < a.pareto.size(); ++i) {
    EXPECT_EQ(a.pareto[i].config, b.pareto[i].config);
    EXPECT_EQ(a.pareto[i].pe_type, b.pareto[i].pe_type);
  }
}

TEST_F(StochasticTdseFixture, RespectsAxesRestriction) {
  const Tdse restricted(reliability::TaskAnalyzer::paper_default(),
                        reliability::ClrAxes::only_dvfs());
  const auto result = restricted.run_stochastic(
      sobel_.impls[0], arch_, TdseObjectives::tdse_run(1), ga_params(), 8);
  for (const TaskDesignPoint& p : result.enumerated) {
    EXPECT_EQ(p.config.hw, 0u);
    EXPECT_EQ(p.config.ssw, 0u);
    EXPECT_EQ(p.config.asw, 0u);
  }
}

}  // namespace
}  // namespace clrearly::core
