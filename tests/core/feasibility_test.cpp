#include "core/feasibility.hpp"

#include <gtest/gtest.h>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly::core {
namespace {

class FeasibilityFixture : public ::testing::Test {
 protected:
  app::Application sobel_ = app::make_sobel_application();
  platform::Architecture arch_ = platform::Architecture::paper_default();
  reliability::TaskAnalyzer analyzer_ = bench_system_analyzer();
};

TEST_F(FeasibilityFixture, ReportCoversAllLayers) {
  const FeasibilityReport report =
      assess_feasibility(sobel_, arch_, analyzer_, sched::QosSpec{});
  ASSERT_EQ(report.layers.size(), 5u);
  EXPECT_EQ(report.layers[0].layer, "CLR");
  EXPECT_EQ(report.layers[1].layer, "DVFS");
  EXPECT_EQ(report.layers[4].layer, "ASWRel");
  // No constraints: everything is possible.
  EXPECT_TRUE(report.possibly_feasible);
  for (const auto& layer : report.layers) {
    EXPECT_TRUE(layer.reliability_possible);
    EXPECT_TRUE(layer.deadline_possible);
  }
}

TEST_F(FeasibilityFixture, ClrBoundsDominateEverySingleLayer) {
  const FeasibilityReport report =
      assess_feasibility(sobel_, arch_, analyzer_, sched::QosSpec{});
  const LayerFeasibility& clr = report.clr();
  for (std::size_t i = 1; i < report.layers.size(); ++i) {
    // The cross-layer space contains every single-layer space, so its best
    // achievable reliability can only be better and its fastest
    // configuration can only be at least as fast.
    EXPECT_GE(clr.max_functional_rel,
              report.layers[i].max_functional_rel - 1e-12);
    EXPECT_LE(clr.min_makespan_us, report.layers[i].min_makespan_us + 1e-9);
  }
}

TEST_F(FeasibilityFixture, CertifiesReliabilityInfeasibility) {
  sched::QosSpec impossible;
  impossible.min_functional_rel = 1.0;  // perfection is unreachable
  const FeasibilityReport report =
      assess_feasibility(sobel_, arch_, analyzer_, impossible);
  EXPECT_FALSE(report.possibly_feasible);
  EXPECT_FALSE(report.clr().reliability_possible);
}

TEST_F(FeasibilityFixture, CertifiesDeadlineInfeasibility) {
  sched::QosSpec impossible;
  impossible.max_makespan_us = 1.0;  // far below the critical path
  const FeasibilityReport report =
      assess_feasibility(sobel_, arch_, analyzer_, impossible);
  EXPECT_FALSE(report.possibly_feasible);
  EXPECT_FALSE(report.clr().deadline_possible);
  EXPECT_TRUE(report.clr().reliability_possible);
}

TEST_F(FeasibilityFixture, ReproducesTheFig7LayerStory) {
  // Under the bench spec (Fapp >= 0.99 at 20x flux), the analytical bounds
  // must tell the same story the GA experiments found: cross-layer and
  // SSWRel-alone can meet the floor; DVFS-alone cannot.
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  const app::Application syn = app::make_synthetic_application(20, 10, 1020);
  const FeasibilityReport report =
      assess_feasibility(syn, arch_, analyzer_, spec);

  EXPECT_TRUE(report.possibly_feasible);
  const auto layer = [&](const std::string& name) {
    for (const auto& entry : report.layers) {
      if (entry.layer == name) return entry;
    }
    throw std::logic_error("layer missing");
  };
  EXPECT_TRUE(layer("SSWRel").reliability_possible);
  EXPECT_FALSE(layer("DVFS").reliability_possible);
}

TEST_F(FeasibilityFixture, BoundsAreSoundAgainstRealDesigns) {
  // Every design the GA actually produced must respect the bounds.
  util::set_log_level(util::LogLevel::Warn);
  const FeasibilityReport report =
      assess_feasibility(sobel_, arch_, analyzer_, sched::QosSpec{});

  DseOptions options;
  options.ga.population_size = 32;
  options.ga.generations = 12;
  options.seed = 3;
  const DseMethodology dse(sobel_, arch_, analyzer_);
  const DseOutcome outcome = dse.run_proposed(options);
  ASSERT_FALSE(outcome.front.empty());
  for (const auto& point : outcome.front) {
    EXPECT_GE(point[0], report.clr().min_makespan_us - 1e-6);
    EXPECT_GE(point[1], 1.0 - report.clr().max_functional_rel - 1e-9);
  }
}

TEST_F(FeasibilityFixture, TighterPlatformRaisesTheMakespanBound) {
  // A platform with fewer PEs can only raise the packing bound.
  platform::Architecture small;
  const std::size_t t = small.add_type(arch_.type(0));
  small.add_pe(t);
  const std::size_t fabric = small.add_type(arch_.type(2));
  small.add_pe(fabric);

  const FeasibilityReport full =
      assess_feasibility(sobel_, arch_, analyzer_, sched::QosSpec{});
  const FeasibilityReport tight =
      assess_feasibility(sobel_, small, analyzer_, sched::QosSpec{});
  EXPECT_GE(tight.clr().min_makespan_us, full.clr().min_makespan_us - 1e-9);
}

}  // namespace
}  // namespace clrearly::core
