#include "core/encoding.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clrearly::core {
namespace {

GenomeLayout small_layout() {
  // 3 tasks x 2 fields with cardinalities {4, 2} per task.
  return GenomeLayout(3, 2, {4, 2, 4, 2, 4, 2});
}

TEST(GenomeLayoutTest, ConstructionValidation) {
  EXPECT_THROW(GenomeLayout(0, 2, {}), std::invalid_argument);
  EXPECT_THROW(GenomeLayout(2, 0, {}), std::invalid_argument);
  EXPECT_THROW(GenomeLayout(2, 2, {1, 1, 1}), std::invalid_argument);
  EXPECT_THROW(GenomeLayout(1, 2, {1, 0}), std::invalid_argument);
}

TEST(GenomeLayoutTest, Accessors) {
  const GenomeLayout layout = small_layout();
  EXPECT_EQ(layout.num_tasks(), 3u);
  EXPECT_EQ(layout.fields_per_task(), 2u);
  EXPECT_EQ(layout.gene_count(), 6u);
  EXPECT_EQ(layout.cardinality(1, 0), 4u);
  EXPECT_EQ(layout.cardinality(2, 1), 2u);
  EXPECT_THROW(layout.cardinality(3, 0), std::out_of_range);
  EXPECT_THROW(layout.cardinality(0, 2), std::out_of_range);
}

TEST(GenomeLayoutTest, GeneGetSetRoundTrip) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(1);
  MappingGenome g = layout.random(rng);
  layout.set_gene(g, 1, 0, 3);
  EXPECT_EQ(layout.gene(g, 1, 0), 3u);
  EXPECT_THROW(layout.set_gene(g, 1, 0, 4), std::invalid_argument);
  EXPECT_THROW(layout.set_gene(g, 5, 0, 0), std::out_of_range);
  EXPECT_THROW(layout.gene(g, 0, 9), std::out_of_range);
}

TEST(GenomeLayoutTest, RandomGenomesAreValid) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const MappingGenome g = layout.random(rng);
    EXPECT_NO_THROW(layout.validate(g));
  }
}

TEST(GenomeLayoutTest, ValidateCatchesCorruption) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(3);
  MappingGenome g = layout.random(rng);

  MappingGenome bad_order = g;
  bad_order.order = {0, 0, 1};
  EXPECT_THROW(layout.validate(bad_order), std::invalid_argument);

  MappingGenome short_order = g;
  short_order.order = {0, 1};
  EXPECT_THROW(layout.validate(short_order), std::invalid_argument);

  MappingGenome bad_gene = g;
  bad_gene.genes[0] = 99;
  EXPECT_THROW(layout.validate(bad_gene), std::invalid_argument);

  MappingGenome short_genes = g;
  short_genes.genes.pop_back();
  EXPECT_THROW(layout.validate(short_genes), std::invalid_argument);
}

TEST(GenomeLayoutTest, CrossoverProducesValidChildren) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const MappingGenome a = layout.random(rng);
    const MappingGenome b = layout.random(rng);
    const auto [ca, cb] = layout.crossover(a, b, rng);
    EXPECT_NO_THROW(layout.validate(ca));
    EXPECT_NO_THROW(layout.validate(cb));
  }
}

TEST(GenomeLayoutTest, CrossoverTouchesEitherGenesOrOrder) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(5);
  bool saw_gene_exchange = false;
  bool saw_order_exchange = false;
  for (int trial = 0; trial < 200; ++trial) {
    const MappingGenome a = layout.random(rng);
    const MappingGenome b = layout.random(rng);
    const auto [ca, cb] = layout.crossover(a, b, rng);
    if (ca.order == a.order && cb.order == b.order &&
        (ca.genes != a.genes || cb.genes != b.genes)) {
      saw_gene_exchange = true;
    }
    if (ca.genes == a.genes && cb.genes == b.genes &&
        (ca.order != a.order || cb.order != b.order)) {
      saw_order_exchange = true;
    }
  }
  EXPECT_TRUE(saw_gene_exchange);
  EXPECT_TRUE(saw_order_exchange);
}

TEST(GenomeLayoutTest, MutationKeepsGenomesValid) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(6);
  MappingGenome g = layout.random(rng);
  for (int trial = 0; trial < 500; ++trial) {
    layout.mutate(g, rng);
    EXPECT_NO_THROW(layout.validate(g));
  }
}

TEST(GenomeLayoutTest, MutationEventuallyTouchesBothParts) {
  const GenomeLayout layout = small_layout();
  util::Rng rng(7);
  bool order_changed = false;
  bool genes_changed = false;
  for (int trial = 0; trial < 200; ++trial) {
    MappingGenome g = layout.random(rng);
    const MappingGenome before = g;
    layout.mutate(g, rng);
    if (g.order != before.order) order_changed = true;
    if (g.genes != before.genes) genes_changed = true;
  }
  EXPECT_TRUE(order_changed);
  EXPECT_TRUE(genes_changed);
}

}  // namespace
}  // namespace clrearly::core
