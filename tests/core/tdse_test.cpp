#include "core/tdse.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

#include "app/sobel.hpp"
#include "moea/pareto.hpp"
#include "platform/architecture.hpp"

namespace clrearly::core {
namespace {

// --- Objective ladders ----------------------------------------------------------

TEST(TdseObjectivesTest, Table4LadderCounts) {
  EXPECT_EQ(TdseObjectives::table4_row(1).count(), 1u);
  EXPECT_EQ(TdseObjectives::table4_row(2).count(), 2u);
  EXPECT_EQ(TdseObjectives::table4_row(3).count(), 3u);
  EXPECT_EQ(TdseObjectives::table4_row(6).count(), 6u);
  EXPECT_THROW(TdseObjectives::table4_row(0), std::invalid_argument);
  EXPECT_THROW(TdseObjectives::table4_row(7), std::invalid_argument);
}

TEST(TdseObjectivesTest, TdseRunsGrowStrictly) {
  EXPECT_EQ(TdseObjectives::tdse_run(1).count(), 2u);
  EXPECT_EQ(TdseObjectives::tdse_run(2).count(), 3u);
  EXPECT_TRUE(TdseObjectives::tdse_run(2).energy);
  EXPECT_EQ(TdseObjectives::tdse_run(3).count(), 6u);
  EXPECT_THROW(TdseObjectives::tdse_run(0), std::invalid_argument);
  EXPECT_THROW(TdseObjectives::tdse_run(4), std::invalid_argument);
}

TEST(TdseObjectivesTest, ExtractNegatesMttf) {
  reliability::TaskMetrics m;
  m.avg_exec_time_us = 100.0;
  m.error_prob = 0.1;
  m.mttf_hours = 5000.0;
  const auto v = TdseObjectives::table4_row(3).extract(m);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 100.0);
  EXPECT_EQ(v[1], 0.1);
  EXPECT_EQ(v[2], -5000.0);
}

TEST(TdseObjectivesTest, EmptySelectionRejected) {
  TdseObjectives none;
  none.avg_exec_time = false;
  EXPECT_THROW(none.extract(reliability::TaskMetrics{}),
               std::invalid_argument);
  EXPECT_EQ(none.count(), 0u);
}

// --- Enumeration -----------------------------------------------------------------

class TdseFixture : public ::testing::Test {
 protected:
  platform::Architecture arch_ = platform::Architecture::paper_default();
  app::Application sobel_ = app::make_sobel_application();
  Tdse tdse_{reliability::TaskAnalyzer::paper_default()};
};

TEST_F(TdseFixture, EnumerationCountMatchesConfigurationSpace) {
  const auto points = tdse_.enumerate(sobel_.impls[0], arch_);
  // Processor impl: 2 proc PE types x (3*5*4*3 = 180); fabric impl:
  // 1 fabric type x (3*5*4*1 = 60) => 420.
  EXPECT_EQ(points.size(), 2u * 180u + 60u);
}

TEST_F(TdseFixture, EnumerationPairsImplsWithCompatibleTypesOnly) {
  const auto points = tdse_.enumerate(sobel_.impls[0], arch_);
  for (const TaskDesignPoint& p : points) {
    const auto& impl = sobel_.impls[0][p.impl_index];
    EXPECT_TRUE(impl.runs_on(arch_.type(p.pe_type)));
  }
}

TEST_F(TdseFixture, EnumerationRejectsEmptyImplList) {
  EXPECT_THROW(tdse_.enumerate({}, arch_), std::invalid_argument);
}

TEST_F(TdseFixture, AxesRestrictEnumeration) {
  const Tdse dvfs_only(reliability::TaskAnalyzer::paper_default(),
                       reliability::ClrAxes::only_dvfs());
  const auto points = dvfs_only.enumerate(sobel_.impls[0], arch_);
  // Processor impl: 2 types x 3 modes; fabric impl: 1 type x 1 mode.
  EXPECT_EQ(points.size(), 7u);
  for (const TaskDesignPoint& p : points) {
    EXPECT_EQ(p.config.hw, 0u);
    EXPECT_EQ(p.config.ssw, 0u);
    EXPECT_EQ(p.config.asw, 0u);
  }
}

// --- Pareto filtering ---------------------------------------------------------------

TEST_F(TdseFixture, FilterKeepsEveryPeTypeAlive) {
  const auto result =
      tdse_.run(sobel_.impls[0], arch_, TdseObjectives::table4_row(2));
  std::set<std::size_t> pe_types;
  for (const TaskDesignPoint& p : result.pareto) pe_types.insert(p.pe_type);
  EXPECT_EQ(pe_types.size(), 3u);  // all three PE types keep survivors
}

TEST_F(TdseFixture, SingleObjectiveKeepsOnePointPerPeType) {
  // TABLE IV row I: with execution time as the only metric, exactly the
  // fastest configuration survives per PE type.
  const auto result =
      tdse_.run(sobel_.impls[0], arch_, TdseObjectives::table4_row(1));
  std::map<std::size_t, std::size_t> per_type;
  for (const TaskDesignPoint& p : result.pareto) ++per_type[p.pe_type];
  for (const auto& [pe_type, count] : per_type) {
    EXPECT_EQ(count, 1u) << "PE type " << pe_type;
  }
}

TEST_F(TdseFixture, ParetoPointsAreMutuallyNonDominatedWithinGroup) {
  const TdseObjectives obj = TdseObjectives::table4_row(3);
  const auto result = tdse_.run(sobel_.impls[1], arch_, obj);
  for (const TaskDesignPoint& a : result.pareto) {
    for (const TaskDesignPoint& b : result.pareto) {
      if (a.pe_type != b.pe_type) continue;
      const auto va = obj.extract(a.metrics);
      const auto vb = obj.extract(b.metrics);
      if (&a != &b) {
        EXPECT_FALSE(moea::dominates(va, vb) && moea::dominates(vb, va));
      }
    }
  }
}

TEST_F(TdseFixture, NoEnumeratedPointDominatesASurvivor) {
  const TdseObjectives obj = TdseObjectives::table4_row(2);
  const auto result = tdse_.run(sobel_.impls[2], arch_, obj);
  for (const TaskDesignPoint& survivor : result.pareto) {
    const auto vs = obj.extract(survivor.metrics);
    for (const TaskDesignPoint& candidate : result.enumerated) {
      if (candidate.pe_type != survivor.pe_type) continue;
      EXPECT_FALSE(moea::dominates(obj.extract(candidate.metrics), vs));
    }
  }
}

TEST_F(TdseFixture, ParetoCountGrowsWithObjectives) {
  // TABLE IV's structure: counts are non-decreasing down the ladder and
  // stabilize once the added metrics stop discriminating.
  std::size_t prev = 0;
  for (int row = 1; row <= 6; ++row) {
    const auto result =
        tdse_.run(sobel_.impls[0], arch_, TdseObjectives::table4_row(row));
    EXPECT_GE(result.pareto.size(), prev) << "row " << row;
    prev = result.pareto.size();
  }
}

TEST_F(TdseFixture, RunApplicationCoversAllTypes) {
  const auto results =
      tdse_.run_application(sobel_, arch_, TdseObjectives::tdse_run(1));
  ASSERT_EQ(results.size(), 4u);
  for (const TdseResult& r : results) {
    EXPECT_FALSE(r.pareto.empty());
    EXPECT_GE(r.enumerated.size(), r.pareto.size());
  }
}

TEST_F(TdseFixture, MoreTdseObjectivesYieldMoreImplementations) {
  // The Fig. 9 effect: tDSE_3 produces at least as many Pareto
  // implementations as tDSE_1 for every task type.
  const auto run1 =
      tdse_.run_application(sobel_, arch_, TdseObjectives::tdse_run(1));
  const auto run3 =
      tdse_.run_application(sobel_, arch_, TdseObjectives::tdse_run(3));
  for (std::size_t type = 0; type < 4; ++type) {
    EXPECT_GE(run3[type].pareto.size(), run1[type].pareto.size());
  }
}

}  // namespace
}  // namespace clrearly::core
