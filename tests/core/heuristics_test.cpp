#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/experiment.hpp"
#include "core/tdse.hpp"
#include "platform/architecture.hpp"

namespace clrearly::core {
namespace {

ClrMappingProblem sobel_problem(sched::QosSpec spec = {}) {
  return ClrMappingProblem(app::make_sobel_application(),
                           platform::Architecture::paper_default(),
                           bench_system_analyzer(), SystemObjectives{}, spec);
}

TEST(HeftClrTest, RejectsParetoFilteredProblems) {
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const Tdse tdse(bench_system_analyzer());
  const auto results =
      tdse.run_application(sobel, arch, TdseObjectives::tdse_run(1));
  std::vector<std::vector<TaskDesignPoint>> points;
  for (const auto& r : results) points.push_back(r.pareto);
  const ClrMappingProblem pf(sobel, arch, bench_system_analyzer(),
                             SystemObjectives{}, sched::QosSpec{}, points);
  EXPECT_THROW(heft_clr_mapping(pf), std::invalid_argument);
}

TEST(HeftClrTest, ProducesValidGenome) {
  const ClrMappingProblem problem = sobel_problem();
  const HeuristicResult result = heft_clr_mapping(problem);
  EXPECT_NO_THROW(problem.layout().validate(result.genome));
  EXPECT_GT(result.qos.makespan_us, 0.0);
  // No spec: no hardening pass runs, baseline configs everywhere.
  EXPECT_EQ(result.upgrades, 0u);
  EXPECT_TRUE(result.feasible);
  for (const auto& choice : problem.report(result.genome)) {
    EXPECT_EQ(choice.config.hw, 0u);
    EXPECT_EQ(choice.config.ssw, 0u);
    EXPECT_EQ(choice.config.asw, 0u);
  }
}

TEST(HeftClrTest, OrderIsTopological) {
  const ClrMappingProblem problem = sobel_problem();
  const HeuristicResult result = heft_clr_mapping(problem);
  const app::TaskGraph& graph = problem.application().graph;
  std::vector<std::size_t> pos(graph.num_tasks());
  for (std::size_t i = 0; i < result.genome.order.size(); ++i) {
    pos[result.genome.order[i]] = i;
  }
  for (const app::Edge& e : graph.edges()) {
    EXPECT_LT(pos[e.src], pos[e.dst]);
  }
}

TEST(HeftClrTest, BeatsRandomMappingsOnMakespan) {
  const ClrMappingProblem problem = sobel_problem();
  const double heft_makespan = heft_clr_mapping(problem).qos.makespan_us;

  // HEFT must beat the average random baseline-config design. Random
  // genomes also pick protected configs, so compare against randomized
  // mapping genes with configs forced to baseline.
  util::Rng rng(17);
  double total = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    MappingGenome g = problem.layout().random(rng);
    for (std::size_t t = 0; t < problem.layout().num_tasks(); ++t) {
      problem.layout().set_gene(g, t, ClrMappingProblem::kFieldHw, 0);
      problem.layout().set_gene(g, t, ClrMappingProblem::kFieldSsw, 0);
      problem.layout().set_gene(g, t, ClrMappingProblem::kFieldAsw, 0);
      problem.layout().set_gene(g, t, ClrMappingProblem::kFieldDvfs, 0);
    }
    total += problem.qos(g).makespan_us;
  }
  EXPECT_LT(heft_makespan, total / trials);
}

TEST(HeftClrTest, HardeningReachesFeasibility) {
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  const ClrMappingProblem problem = sobel_problem(spec);
  const HeuristicResult result = heft_clr_mapping(problem);

  EXPECT_TRUE(result.feasible);
  EXPECT_GT(result.upgrades, 0u);
  EXPECT_GE(result.qos.functional_rel, 0.99);
  EXPECT_NO_THROW(problem.layout().validate(result.genome));
}

TEST(HeftClrTest, StricterSpecNeedsMoreUpgrades) {
  sched::QosSpec loose;
  loose.min_functional_rel = 0.98;
  sched::QosSpec tight;
  tight.min_functional_rel = 0.999;
  const HeuristicResult a = heft_clr_mapping(sobel_problem(loose));
  const HeuristicResult b = heft_clr_mapping(sobel_problem(tight));
  EXPECT_LE(a.upgrades, b.upgrades);
  EXPECT_GE(b.qos.functional_rel, a.qos.functional_rel - 1e-12);
}

TEST(HeftClrTest, UnreachableSpecReportsInfeasible) {
  sched::QosSpec spec;
  spec.min_functional_rel = 1.0;  // exact perfection is unreachable
  const ClrMappingProblem problem = sobel_problem(spec);
  const HeuristicResult result = heft_clr_mapping(problem);
  EXPECT_FALSE(result.feasible);
  // It still hardened as far as it could.
  EXPECT_GT(result.upgrades, 0u);
}

TEST(HeftClrTest, WorksOnSyntheticApplications) {
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  for (std::size_t tasks : {10, 30}) {
    const ClrMappingProblem problem(
        app::make_synthetic_application(tasks, 10, 700 + tasks),
        platform::Architecture::paper_default(), bench_system_analyzer(),
        SystemObjectives{}, spec);
    const HeuristicResult result = heft_clr_mapping(problem);
    EXPECT_NO_THROW(problem.layout().validate(result.genome));
    EXPECT_TRUE(result.feasible) << tasks << " tasks";
  }
}

TEST(HeftClrTest, Deterministic) {
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  const ClrMappingProblem problem = sobel_problem(spec);
  const HeuristicResult a = heft_clr_mapping(problem);
  const HeuristicResult b = heft_clr_mapping(problem);
  EXPECT_EQ(a.genome, b.genome);
  EXPECT_EQ(a.upgrades, b.upgrades);
}

TEST(HeftClrTest, SeedsImproveGaConvergence) {
  // The heuristic genome used as a seed must not hurt, and at a small
  // budget should help the GA reach feasibility quickly.
  sched::QosSpec spec;
  spec.min_functional_rel = 0.99;
  const app::Application syn = app::make_synthetic_application(20, 10, 720);
  const ClrMappingProblem problem(syn, platform::Architecture::paper_default(),
                                  bench_system_analyzer(), SystemObjectives{},
                                  spec);
  const HeuristicResult heuristic = heft_clr_mapping(problem);
  ASSERT_TRUE(heuristic.feasible);

  moea::Nsga2Params ga;
  ga.population_size = 24;
  ga.generations = 4;  // deliberately tiny
  util::Rng rng(5);
  const auto seeded = moea::run_nsga2(ga, problem.ops(), rng,
                                      {heuristic.genome});
  bool any_feasible = false;
  for (std::size_t i : seeded.front) {
    if (seeded.population[i].eval.violation <= 0.0) any_feasible = true;
  }
  EXPECT_TRUE(any_feasible);
}

}  // namespace
}  // namespace clrearly::core
