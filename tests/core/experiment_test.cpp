// Tests for the bench scaffolding (core/experiment) and the DSE flows'
// behavior under infeasible specs.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/sobel.hpp"
#include "core/baselines.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly::core {
namespace {

class FastModeTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("CLREARLY_FAST"); }
};

TEST_F(FastModeTest, OffByDefaultAndZero) {
  unsetenv("CLREARLY_FAST");
  EXPECT_FALSE(fast_mode());
  setenv("CLREARLY_FAST", "", 1);
  EXPECT_FALSE(fast_mode());
  setenv("CLREARLY_FAST", "0", 1);
  EXPECT_FALSE(fast_mode());
}

TEST_F(FastModeTest, AnyOtherValueEnables) {
  setenv("CLREARLY_FAST", "1", 1);
  EXPECT_TRUE(fast_mode());
  setenv("CLREARLY_FAST", "yes", 1);
  EXPECT_TRUE(fast_mode());
}

TEST_F(FastModeTest, ScalesBenchKnobs) {
  setenv("CLREARLY_FAST", "1", 1);
  const auto fast_params = bench_ga_params();
  const auto fast_counts = bench_task_counts();
  unsetenv("CLREARLY_FAST");
  const auto full_params = bench_ga_params();
  const auto full_counts = bench_task_counts();

  EXPECT_LT(fast_params.population_size, full_params.population_size);
  EXPECT_LT(fast_params.generations, full_params.generations);
  EXPECT_LT(fast_counts.size(), full_counts.size());
  // Operator probabilities stay at the paper's values in both modes.
  EXPECT_DOUBLE_EQ(fast_params.crossover_prob, full_params.crossover_prob);
  EXPECT_DOUBLE_EQ(fast_params.mutation_indpb, full_params.mutation_indpb);
}

TEST(BenchOptionsTest, EncodesTheEvaluationSetup) {
  const DseOptions options = bench_options(77);
  EXPECT_EQ(options.seed, 77u);
  EXPECT_EQ(options.objectives.count(), 2u);
  ASSERT_TRUE(options.spec.min_functional_rel.has_value());
  EXPECT_DOUBLE_EQ(*options.spec.min_functional_rel, 0.99);
}

TEST(BenchAnalyzerTest, HarsherThanPaperDefault) {
  const auto bench = bench_system_analyzer();
  const auto base = reliability::TaskAnalyzer::paper_default();
  EXPECT_GT(bench.environment().environment_factor,
            base.environment().environment_factor);
}

class WriteFrontsCsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::filesystem::remove("results/experiment_test.csv");
  }
};

TEST_F(WriteFrontsCsvTest, WritesSeriesRows) {
  const std::vector<std::pair<std::string, std::vector<moea::Objectives>>>
      series{{"alpha", {{1.0, 2.0}, {3.0, 4.0}}}, {"beta", {{5.0, 6.0}}}};
  const std::string path =
      write_fronts_csv("experiment_test.csv", series, {"x", "y"});
  EXPECT_EQ(path, "results/experiment_test.csv");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream oss;
  oss << in.rdbuf();
  const std::string text = oss.str();
  EXPECT_NE(text.find("series,x,y"), std::string::npos);
  EXPECT_NE(text.find("alpha,1,2"), std::string::npos);
  EXPECT_NE(text.find("alpha,3,4"), std::string::npos);
  EXPECT_NE(text.find("beta,5,6"), std::string::npos);
}

TEST(InfeasibleSpecTest, FlowsReportEmptyFronts) {
  util::set_log_level(util::LogLevel::Warn);
  DseOptions options;
  options.ga.population_size = 16;
  options.ga.generations = 4;
  options.seed = 2;
  options.spec.max_makespan_us = 0.001;  // unachievable

  const DseMethodology dse(app::make_sobel_application(),
                           platform::Architecture::paper_default(),
                           reliability::TaskAnalyzer::paper_default());
  EXPECT_TRUE(dse.run_fcclr(options).front.empty());
  EXPECT_TRUE(dse.run_pfclr(options).front.empty());
  EXPECT_TRUE(dse.run_proposed(options).front.empty());
  const AgnosticOutcome agnostic = run_agnostic(dse, options);
  EXPECT_TRUE(agnostic.combined_front.empty());
}

}  // namespace
}  // namespace clrearly::core
