// Determinism guarantee of the parallel evaluation engine: because the RNG
// is consumed only in the serial variation phase and evaluation is pure,
// every DSE flow must produce bit-identical fronts, archives and evaluation
// counts at any thread count. These tests pin serial (1 thread) against
// parallel (4 threads) runs of all three flows on the paper's Sobel
// application (the models/sobel.json system model).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "app/mjpeg.hpp"
#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/heuristics.hpp"
#include "moea/island.hpp"
#include "core/sim_bridge.hpp"
#include "platform/architecture.hpp"
#include "sim/schedule_sim.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace clrearly {
namespace {

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override { util::set_thread_count(0); }

  static core::DseOptions options() {
    core::DseOptions o;
    o.ga.population_size = 24;
    o.ga.generations = 8;
    o.seed = 7;
    return o;
  }

  static core::DseMethodology methodology() {
    return core::DseMethodology(app::make_sobel_application(),
                                platform::Architecture::paper_default(),
                                reliability::TaskAnalyzer::paper_default());
  }

  static void expect_identical(const core::DseOutcome& serial,
                               const core::DseOutcome& parallel) {
    EXPECT_EQ(serial.evaluations, parallel.evaluations);
    ASSERT_EQ(serial.front.size(), parallel.front.size());
    for (std::size_t i = 0; i < serial.front.size(); ++i) {
      EXPECT_EQ(serial.front[i], parallel.front[i]) << "front point " << i;
    }
    ASSERT_EQ(serial.front_genomes.size(), parallel.front_genomes.size());
    for (std::size_t i = 0; i < serial.front_genomes.size(); ++i) {
      EXPECT_EQ(serial.front_genomes[i], parallel.front_genomes[i])
          << "front genome " << i;
    }
  }
};

TEST_F(DeterminismTest, FcClrFlowIsThreadCountInvariant) {
  const core::DseMethodology dse = methodology();
  util::set_thread_count(1);
  const core::DseOutcome serial = dse.run_fcclr(options());
  util::set_thread_count(4);
  const core::DseOutcome parallel = dse.run_fcclr(options());
  ASSERT_FALSE(serial.front.empty());
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, PfClrFlowIsThreadCountInvariant) {
  const core::DseMethodology dse = methodology();
  util::set_thread_count(1);
  const core::DseOutcome serial = dse.run_pfclr(options());
  util::set_thread_count(4);
  const core::DseOutcome parallel = dse.run_pfclr(options());
  ASSERT_FALSE(serial.front.empty());
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, ProposedFlowIsThreadCountInvariant) {
  const core::DseMethodology dse = methodology();
  util::set_thread_count(1);
  const core::DseOutcome serial = dse.run_proposed(options());
  util::set_thread_count(4);
  const core::DseOutcome parallel = dse.run_proposed(options());
  ASSERT_FALSE(serial.front.empty());
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, KResilientFlowIsThreadCountInvariant) {
  // The permanent-fault flow wraps fcCLR evaluation in the k-resilience
  // certification (repair + degraded scoring per failure set) — all pure
  // functions of the genome, so the guarantee must carry over unchanged.
  const core::DseMethodology dse = methodology();
  core::DseOptions o = options();
  o.resilience.max_failures = 1;
  util::set_thread_count(1);
  const core::DseOutcome serial = dse.run_kresilient(o);
  util::set_thread_count(4);
  const core::DseOutcome parallel = dse.run_kresilient(o);
  ASSERT_FALSE(serial.front.empty());
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, FailureInjectionIsThreadCountInvariant) {
  // Permanent-fault Monte Carlo: PE-loss draws are a fixed prefix of each
  // trial's split stream, so injection runs are bit-identical at any thread
  // count just like the plain simulator.
  const core::DseMethodology dse = methodology();
  core::DseOptions o = options();
  o.resilience.max_failures = 1;
  util::set_thread_count(1);
  const core::DseOutcome outcome = dse.run_kresilient(o);
  ASSERT_FALSE(outcome.front_genomes.empty());
  const core::ResilientProblem problem = dse.build_resilient_problem(o);
  const core::MappingGenome& genome = outcome.front_genomes.front();

  const sim::FailureSimResult serial =
      core::simulate_resilient_design_point(problem, genome, 4000, 7);
  util::set_thread_count(4);
  const sim::FailureSimResult parallel =
      core::simulate_resilient_design_point(problem, genome, 4000, 7);

  EXPECT_TRUE(sim::failure_sim_results_identical(serial, parallel));
  EXPECT_GT(serial.available_trials, 0u);
}

TEST_F(DeterminismTest, TdseResultsAreThreadCountInvariant) {
  const core::DseMethodology dse = methodology();
  util::set_thread_count(1);
  const auto serial = dse.run_tdse(options());
  util::set_thread_count(4);
  const auto parallel = dse.run_tdse(options());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t type = 0; type < serial.size(); ++type) {
    ASSERT_EQ(serial[type].enumerated.size(), parallel[type].enumerated.size());
    ASSERT_EQ(serial[type].pareto.size(), parallel[type].pareto.size());
    for (std::size_t i = 0; i < serial[type].pareto.size(); ++i) {
      const core::TaskDesignPoint& a = serial[type].pareto[i];
      const core::TaskDesignPoint& b = parallel[type].pareto[i];
      EXPECT_EQ(a.impl_index, b.impl_index);
      EXPECT_EQ(a.pe_type, b.pe_type);
      EXPECT_EQ(a.config.hw, b.config.hw);
      EXPECT_EQ(a.config.ssw, b.config.ssw);
      EXPECT_EQ(a.config.asw, b.config.asw);
      EXPECT_EQ(a.config.dvfs, b.config.dvfs);
      EXPECT_EQ(a.metrics.avg_exec_time_us, b.metrics.avg_exec_time_us);
      EXPECT_EQ(a.metrics.error_prob, b.metrics.error_prob);
      EXPECT_EQ(a.metrics.mttf_hours, b.metrics.mttf_hours);
    }
  }
}

TEST_F(DeterminismTest, ScheduleSimulatorIsThreadCountInvariant) {
  // The Monte Carlo schedule simulator carries the same guarantee as the
  // evaluation engine: per-trial split RNG streams and per-index outcome
  // slots make a (seed, trials) run bit-identical at any thread count.
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::ClrMappingProblem problem(
      sobel, arch, reliability::TaskAnalyzer::paper_default(),
      core::SystemObjectives{}, sched::QosSpec{});

  const core::DseMethodology dse = methodology();
  util::set_thread_count(1);
  const core::DseOutcome outcome = dse.run_fcclr(options());
  ASSERT_FALSE(outcome.front_genomes.empty());
  const core::MappingGenome& genome = outcome.front_genomes.front();

  sim::SimOptions sim_options;
  sim_options.trials = 4000;
  sim_options.seed = 7;
  const sim::SimResult serial =
      core::simulate_design_point(problem, genome, sim_options);
  util::set_thread_count(4);
  const sim::SimResult parallel =
      core::simulate_design_point(problem, genome, sim_options);

  EXPECT_TRUE(sim::sim_results_identical(serial, parallel));
  EXPECT_GT(serial.makespan_mean_us, 0.0);
}

TEST_F(DeterminismTest, IslandFlowIsThreadCountInvariant) {
  // The island-model layer carries the same contract as every flow above:
  // per-island split streams, serial migration and merge, so the sharded
  // fcCLR run is bit-identical at any worker count.
  const core::DseMethodology dse = methodology();
  core::DseOptions o = options();
  o.island.islands = 3;
  o.island.migration_interval = 3;
  o.island.migration_size = 2;
  util::set_thread_count(1);
  const core::DseOutcome serial = dse.run_fcclr(o);
  util::set_thread_count(4);
  const core::DseOutcome parallel = dse.run_fcclr(o);
  ASSERT_FALSE(serial.front.empty());
  expect_identical(serial, parallel);
}

TEST_F(DeterminismTest, IslandFlowIsRepeatableAcrossRuns) {
  const core::DseMethodology dse = methodology();
  core::DseOptions o = options();
  o.island.islands = 4;
  o.island.migration_interval = 2;
  o.island.migration_size = 1;
  const core::DseOutcome first = dse.run_fcclr(o);
  const core::DseOutcome second = dse.run_fcclr(o);
  ASSERT_FALSE(first.front.empty());
  expect_identical(first, second);
}

TEST_F(DeterminismTest, Islands1MatchesHandRolledNsga2) {
  // --islands 1 through the DSE entry point must reproduce the pre-island
  // single-population flow bit for bit: same heuristic seeding, same RNG
  // stream, same front. Pinned on both paper applications.
  for (const app::Application& application :
       {app::make_sobel_application(), app::make_mjpeg_application()}) {
    const core::DseMethodology dse(application,
                                   platform::Architecture::paper_default(),
                                   reliability::TaskAnalyzer::paper_default());
    core::DseOptions o = options();  // island.islands defaults to 1
    o.heuristic_seed = true;  // run_fcclr only seeds with HEFT when asked to
    const core::ClrMappingProblem problem = dse.build_fcclr_problem(o);

    util::Rng rng(o.seed);
    std::vector<core::MappingGenome> seeds{core::heft_clr_mapping(problem).genome};
    const auto direct = moea::run_nsga2(
        o.ga, problem.ops(o.ga.mutation_indpb), rng, std::move(seeds));

    // Mirror DseMethodology::collect: feasible front members, each distinct
    // objective vector reported once, in front order.
    std::vector<moea::Objectives> expected_front;
    std::vector<core::MappingGenome> expected_genomes;
    for (std::size_t i : direct.front) {
      if (direct.population[i].eval.violation > 0.0) continue;
      const moea::Objectives& obj = direct.population[i].eval.objectives;
      if (std::find(expected_front.begin(), expected_front.end(), obj) !=
          expected_front.end()) {
        continue;
      }
      expected_front.push_back(obj);
      expected_genomes.push_back(direct.population[i].genome);
    }

    const core::DseOutcome via_dse = dse.run_fcclr(o, problem);
    EXPECT_EQ(via_dse.evaluations, direct.evaluations);
    EXPECT_EQ(via_dse.front, expected_front);
    EXPECT_EQ(via_dse.front_genomes, expected_genomes);
  }
}

TEST_F(DeterminismTest, ArchiveIsThreadCountInvariant) {
  // Exercise the external archive (batched merge) through run_nsga2 itself:
  // the archives of serial and parallel runs must match member for member.
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::ClrMappingProblem problem(
      sobel, arch, reliability::TaskAnalyzer::paper_default(),
      core::SystemObjectives{}, sched::QosSpec{});

  moea::Nsga2Params params;
  params.population_size = 24;
  params.generations = 8;
  params.archive_size = 16;

  util::set_thread_count(1);
  util::Rng rng_serial(7);
  const auto serial = moea::run_nsga2(params, problem.ops(), rng_serial);

  util::set_thread_count(4);
  util::Rng rng_parallel(7);
  const auto parallel = moea::run_nsga2(params, problem.ops(), rng_parallel);

  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  ASSERT_FALSE(serial.archive.empty());
  ASSERT_EQ(serial.archive.size(), parallel.archive.size());
  for (std::size_t i = 0; i < serial.archive.size(); ++i) {
    EXPECT_EQ(serial.archive[i].genome, parallel.archive[i].genome);
    EXPECT_EQ(serial.archive[i].eval.objectives,
              parallel.archive[i].eval.objectives);
    EXPECT_EQ(serial.archive[i].eval.violation,
              parallel.archive[i].eval.violation);
  }
  ASSERT_EQ(serial.front.size(), parallel.front.size());
  for (std::size_t i = 0; i < serial.front.size(); ++i) {
    EXPECT_EQ(serial.population[serial.front[i]].eval.objectives,
              parallel.population[parallel.front[i]].eval.objectives);
  }
}

}  // namespace
}  // namespace clrearly
