// Unit tests of the permanent-fault scenario axis: PE failure
// probabilities, failure-set enumeration, degraded-mode repair, and the
// ResilientProblem fitness/analytic-prediction semantics.
#include "core/resilience.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "app/sobel.hpp"
#include "core/tdse.hpp"
#include "platform/architecture.hpp"
#include "reliability/weibull.hpp"

namespace clrearly::core {
namespace {

class ResilienceFixture : public ::testing::Test {
 protected:
  app::Application sobel_ = app::make_sobel_application();
  platform::Architecture arch_ = platform::Architecture::paper_default();
  reliability::TaskAnalyzer analyzer_ =
      reliability::TaskAnalyzer::paper_default();

  ClrMappingProblem full_problem() const {
    return ClrMappingProblem(sobel_, arch_, analyzer_, SystemObjectives{},
                             sched::QosSpec{});
  }

  ResilientProblem resilient_problem(ResilienceSpec spec) const {
    return ResilientProblem(sobel_, arch_, analyzer_, std::move(spec),
                            SystemObjectives{}, sched::QosSpec{});
  }
};

// --- ResilienceSpec::validate ----------------------------------------------

TEST_F(ResilienceFixture, ValidateAcceptsDefaultOnPaperArchitecture) {
  EXPECT_NO_THROW(ResilienceSpec{}.validate(arch_.num_pes()));
}

TEST_F(ResilienceFixture, ValidateRejectsMalformedSpecs) {
  ResilienceSpec spec;
  spec.max_failures = arch_.num_pes();  // must stay below the PE count
  EXPECT_THROW(spec.validate(arch_.num_pes()), std::invalid_argument);

  spec = ResilienceSpec{};
  spec.mission_hours = 0.0;
  EXPECT_THROW(spec.validate(arch_.num_pes()), std::invalid_argument);

  spec = ResilienceSpec{};
  spec.spare_penalty_weight = -1.0;
  EXPECT_THROW(spec.validate(arch_.num_pes()), std::invalid_argument);

  spec = ResilienceSpec{};
  spec.spare_pes = {arch_.num_pes()};  // out of range
  EXPECT_THROW(spec.validate(arch_.num_pes()), std::invalid_argument);

  spec = ResilienceSpec{};
  spec.spare_pes = {1, 1};  // duplicate
  EXPECT_THROW(spec.validate(arch_.num_pes()), std::invalid_argument);

  EXPECT_THROW(ResilienceSpec{}.validate(0), std::invalid_argument);
}

// --- failure probabilities --------------------------------------------------

TEST_F(ResilienceFixture, FailureProbabilitiesAreTheWeibullMissionCdf) {
  const double mission_hours = 20000.0;
  const std::vector<double> q = pe_failure_probabilities(arch_, mission_hours);
  ASSERT_EQ(q.size(), arch_.num_pes());
  for (std::size_t pe = 0; pe < q.size(); ++pe) {
    const platform::PeType& type = arch_.type_of(pe);
    const reliability::Weibull weibull(type.weibull_eta_base_hours,
                                       type.weibull_beta);
    EXPECT_EQ(q[pe], weibull.cdf(mission_hours)) << "PE " << pe;
    EXPECT_GT(q[pe], 0.0);
    EXPECT_LT(q[pe], 1.0);
  }
}

TEST_F(ResilienceFixture, FailureProbabilitiesGrowWithMissionTime) {
  const std::vector<double> early = pe_failure_probabilities(arch_, 1000.0);
  const std::vector<double> late = pe_failure_probabilities(arch_, 50000.0);
  for (std::size_t pe = 0; pe < early.size(); ++pe) {
    EXPECT_LT(early[pe], late[pe]) << "PE " << pe;
  }
  EXPECT_THROW(pe_failure_probabilities(arch_, 0.0), std::invalid_argument);
}

// --- failure-set enumeration ------------------------------------------------

TEST(FailureSetTest, EnumerationIsCountThenLexicographic) {
  const auto sets = enumerate_failure_sets(4, 2);
  // C(4,1) + C(4,2) = 4 + 6.
  ASSERT_EQ(sets.size(), 10u);
  const std::vector<std::vector<char>> expected = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
      {1, 1, 0, 0}, {1, 0, 1, 0}, {1, 0, 0, 1},
      {0, 1, 1, 0}, {0, 1, 0, 1}, {0, 0, 1, 1}};
  EXPECT_EQ(sets, expected);
}

TEST(FailureSetTest, ZeroBudgetEnumeratesNothing) {
  EXPECT_TRUE(enumerate_failure_sets(4, 0).empty());
}

TEST(FailureSetTest, ExactSetProbabilitiesSumToOne) {
  const std::vector<double> q = {0.1, 0.25, 0.03};
  double total = 0.0;
  for (unsigned bits = 0; bits < 8; ++bits) {
    std::vector<char> mask(3, 0);
    for (std::size_t i = 0; i < 3; ++i) mask[i] = (bits >> i) & 1u;
    total += failure_set_probability(q, mask);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(failure_set_probability(q, {1, 0, 0}), 0.1 * 0.75 * 0.97,
              1e-15);
  EXPECT_THROW(failure_set_probability(q, {1, 0}), std::invalid_argument);
}

// --- degraded-mode repair ---------------------------------------------------

TEST_F(ResilienceFixture, RepairNeverMapsToAFailedPe) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const MappingGenome genome = problem.layout().random(rng);
    for (std::size_t failed_pe = 0; failed_pe < arch_.num_pes(); ++failed_pe) {
      std::vector<char> failed(arch_.num_pes(), 0);
      failed[failed_pe] = 1;
      const auto repaired = problem.repair_for_failures(genome, failed);
      if (!repaired.has_value()) continue;  // unrepairable is allowed
      EXPECT_NO_THROW(problem.layout().validate(*repaired));
      for (const auto& task : problem.resolve(*repaired)) {
        EXPECT_NE(task.pe, failed_pe);
      }
    }
  }
}

TEST_F(ResilienceFixture, RepairLeavesUnaffectedTasksUntouched) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const MappingGenome genome = problem.layout().random(rng);
    const auto before = problem.resolve(genome);
    for (std::size_t failed_pe = 0; failed_pe < arch_.num_pes(); ++failed_pe) {
      std::vector<char> failed(arch_.num_pes(), 0);
      failed[failed_pe] = 1;
      const auto repaired = problem.repair_for_failures(genome, failed);
      if (!repaired.has_value()) continue;
      const auto after = problem.resolve(*repaired);
      ASSERT_EQ(after.size(), before.size());
      for (std::size_t t = 0; t < before.size(); ++t) {
        if (before[t].pe == failed_pe) continue;  // the displaced task
        EXPECT_EQ(after[t].pe, before[t].pe) << "task " << t;
        EXPECT_EQ(after[t].impl_index, before[t].impl_index) << "task " << t;
      }
    }
  }
}

TEST_F(ResilienceFixture, RepairIsUnrepairableWhenAWholeClassDies) {
  // Kill every reconfigurable-region PE: any genome with a task whose chosen
  // implementation targets the fabric has nowhere to put it (fcCLR repair
  // keeps the implementation choice).
  const ClrMappingProblem problem = full_problem();
  std::vector<char> fabric_down(arch_.num_pes(), 0);
  std::size_t fabric_pes = 0;
  for (std::size_t pe = 0; pe < arch_.num_pes(); ++pe) {
    if (arch_.type_of(pe).pe_class == platform::PeClass::kReconfigurableRegion) {
      fabric_down[pe] = 1;
      ++fabric_pes;
    }
  }
  ASSERT_GT(fabric_pes, 0u);

  util::Rng rng(13);
  bool saw_unrepairable = false;
  bool saw_repairable = false;
  for (int trial = 0; trial < 100; ++trial) {
    const MappingGenome genome = problem.layout().random(rng);
    bool uses_fabric = false;
    for (const auto& task : problem.resolve(genome)) {
      if (fabric_down[task.pe]) uses_fabric = true;
    }
    const auto repaired = problem.repair_for_failures(genome, fabric_down);
    if (uses_fabric) {
      // A displaced fabric task may or may not have a processor-class
      // implementation; when repair succeeds it must avoid the fabric.
      if (!repaired.has_value()) {
        saw_unrepairable = true;
        continue;
      }
    }
    if (repaired.has_value()) {
      saw_repairable = true;
      for (const auto& task : problem.resolve(*repaired)) {
        EXPECT_FALSE(fabric_down[task.pe]);
      }
    }
  }
  EXPECT_TRUE(saw_unrepairable);
  EXPECT_TRUE(saw_repairable);
}

TEST_F(ResilienceFixture, RepairRejectsWrongMaskSize) {
  const ClrMappingProblem problem = full_problem();
  util::Rng rng(14);
  const MappingGenome genome = problem.layout().random(rng);
  EXPECT_THROW(problem.repair_for_failures(genome, std::vector<char>(2, 0)),
               std::invalid_argument);
}

TEST_F(ResilienceFixture, ParetoModeRepairAvoidsFailedPes) {
  const Tdse tdse(analyzer_);
  const auto results =
      tdse.run_application(sobel_, arch_, TdseObjectives::tdse_run(1));
  std::vector<std::vector<TaskDesignPoint>> points;
  for (const auto& r : results) points.push_back(r.pareto);
  const ClrMappingProblem pf(sobel_, arch_, analyzer_, SystemObjectives{},
                             sched::QosSpec{}, std::move(points));
  ASSERT_EQ(pf.mode(), ClrMappingProblem::Mode::kParetoFiltered);

  util::Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    const MappingGenome genome = pf.layout().random(rng);
    for (std::size_t failed_pe = 0; failed_pe < arch_.num_pes(); ++failed_pe) {
      std::vector<char> failed(arch_.num_pes(), 0);
      failed[failed_pe] = 1;
      const auto repaired = pf.repair_for_failures(genome, failed);
      if (!repaired.has_value()) continue;
      EXPECT_NO_THROW(pf.layout().validate(*repaired));
      for (const auto& task : pf.resolve(*repaired)) {
        EXPECT_NE(task.pe, failed_pe);
      }
    }
  }
}

// --- ResilientProblem fitness ----------------------------------------------

TEST_F(ResilienceFixture, DegradedModesAlignWithFailureSets) {
  ResilienceSpec spec;
  spec.max_failures = 2;
  const ResilientProblem problem = resilient_problem(spec);
  // C(6,1) + C(6,2) on the six-PE paper platform.
  EXPECT_EQ(problem.failure_sets().size(), 6u + 15u);

  util::Rng rng(16);
  const MappingGenome genome = problem.layout().random(rng);
  const auto modes = problem.degraded_modes(genome);
  ASSERT_EQ(modes.size(), problem.failure_sets().size());
  const std::vector<double>& q = problem.failure_probabilities();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    EXPECT_EQ(modes[i].failed, problem.failure_sets()[i]);
    EXPECT_EQ(modes[i].probability,
              failure_set_probability(q, modes[i].failed));
    if (modes[i].repairable) {
      EXPECT_GT(modes[i].qos.makespan_us, 0.0);
      for (const auto& task : problem.nominal().resolve(modes[i].mapping)) {
        EXPECT_FALSE(modes[i].failed[task.pe]);
      }
    }
  }
}

TEST_F(ResilienceFixture, ViolationIsMonotoneInTheFailureBudget) {
  // The k-resilient violation is nominal + spares + max over failure sets of
  // size <= k; a larger k maximizes over a superset, so violations can only
  // grow. This is the invariant behind "k-front is (k-1)-feasible".
  ResilienceSpec k0;
  k0.max_failures = 0;
  ResilienceSpec k1;
  k1.max_failures = 1;
  ResilienceSpec k2;
  k2.max_failures = 2;
  // A degraded constraint that actually bites, so violations are non-zero.
  for (ResilienceSpec* spec : {&k0, &k1, &k2}) {
    spec->degraded_spec.max_makespan_us = 400.0;
  }
  const ResilientProblem p0 = resilient_problem(k0);
  const ResilientProblem p1 = resilient_problem(k1);
  const ResilientProblem p2 = resilient_problem(k2);

  util::Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const MappingGenome genome = p0.layout().random(rng);
    const double v0 = p0.evaluate(genome).violation;
    const double v1 = p1.evaluate(genome).violation;
    const double v2 = p2.evaluate(genome).violation;
    EXPECT_LE(v0, v1);
    EXPECT_LE(v1, v2);
  }
}

TEST_F(ResilienceFixture, NominalObjectivesAreUnchangedByTheResilienceAxis) {
  const ClrMappingProblem nominal = full_problem();
  const ResilientProblem resilient = resilient_problem(ResilienceSpec{});
  util::Rng rng(18);
  for (int trial = 0; trial < 20; ++trial) {
    const MappingGenome genome = nominal.layout().random(rng);
    EXPECT_EQ(resilient.evaluate(genome).objectives,
              nominal.evaluate(genome).objectives);
  }
}

TEST_F(ResilienceFixture, SparePenaltyChargesTasksPlacedOnSpares) {
  ResilienceSpec with_spare;
  with_spare.spare_pes = {0};
  with_spare.spare_penalty_weight = 3.5;
  const ResilientProblem spared = resilient_problem(with_spare);
  const ResilientProblem unspared = resilient_problem(ResilienceSpec{});

  util::Rng rng(19);
  bool charged = false;
  for (int trial = 0; trial < 30; ++trial) {
    const MappingGenome genome = spared.layout().random(rng);
    std::size_t on_spare = 0;
    for (const auto& task : spared.nominal().resolve(genome)) {
      on_spare += task.pe == 0;
    }
    const double delta = spared.evaluate(genome).violation -
                         unspared.evaluate(genome).violation;
    EXPECT_NEAR(delta, 3.5 * static_cast<double>(on_spare), 1e-9);
    charged = charged || on_spare > 0;
  }
  EXPECT_TRUE(charged);  // the sample must actually exercise the penalty
}

TEST_F(ResilienceFixture, AnalyticPredictionMatchesHandComputedMixture) {
  const ResilientProblem problem = resilient_problem(ResilienceSpec{});
  util::Rng rng(20);
  const MappingGenome genome = problem.layout().random(rng);

  double p_nominal = 1.0;
  for (double q : problem.failure_probabilities()) p_nominal *= 1.0 - q;
  const sched::QosMetrics nominal_qos = problem.nominal().qos(genome);
  double availability = p_nominal;
  double makespan_acc = p_nominal * nominal_qos.makespan_us;
  for (const auto& mode : problem.degraded_modes(genome)) {
    if (!mode.repairable) continue;
    availability += mode.probability;
    makespan_acc += mode.probability * mode.qos.makespan_us;
  }

  const auto pred = problem.analytic_prediction(genome);
  EXPECT_NEAR(pred.availability, availability, 1e-12);
  ASSERT_GT(availability, 0.0);
  EXPECT_NEAR(pred.expected_makespan_us, makespan_acc / availability, 1e-9);
  EXPECT_GE(pred.worst_makespan_us, nominal_qos.makespan_us);
  EXPECT_LT(pred.availability, 1.0);  // the all-failed outcome is never covered
  EXPECT_GT(pred.availability, 0.9);  // mission loss rates are small
}

TEST_F(ResilienceFixture, EvaluateIsAPureFunctionOfTheGenome) {
  const ResilientProblem problem = resilient_problem(ResilienceSpec{});
  util::Rng rng(21);
  const MappingGenome genome = problem.layout().random(rng);
  const auto a = problem.evaluate(genome);
  const auto b = problem.evaluate(genome);
  EXPECT_EQ(a.objectives, b.objectives);
  EXPECT_EQ(a.violation, b.violation);
}

}  // namespace
}  // namespace clrearly::core
