// The load-bearing guarantee of the memoization layer: caching is an
// implementation detail that must never change a search result. For
// randomized problems, seeds, and thread counts, a cache-off run and
// cache-on runs (roomy capacity and tiny, eviction-thrashed capacity) of
// every DSE flow must produce bit-identical fronts, front genomes, and
// evaluation counts — and run_nsga2 itself must produce bit-identical
// populations, archives, objectives, and violations. Both caches are in
// play here: the genome-level fitness cache inside ClrMappingProblem and
// the chain-solve cache under the reliability analysis.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "moea/nsga2.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"
#include "util/memo_cache.hpp"
#include "util/thread_pool.hpp"

namespace clrearly {
namespace {

class CacheEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }
  void TearDown() override {
    util::reset_cache_capacity();
    util::set_thread_count(0);
  }
};

core::DseOptions small_options(std::uint64_t seed) {
  core::DseOptions o;
  o.ga.population_size = 16;
  o.ga.generations = 5;
  o.seed = seed;
  return o;
}

void expect_identical(const core::DseOutcome& a, const core::DseOutcome& b) {
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
  ASSERT_EQ(a.front_genomes.size(), b.front_genomes.size());
  for (std::size_t i = 0; i < a.front_genomes.size(); ++i) {
    EXPECT_EQ(a.front_genomes[i], b.front_genomes[i]) << "front genome " << i;
  }
}

using FlowFn = core::DseOutcome (core::DseMethodology::*)(
    const core::DseOptions&) const;

/// Run one flow cache-off, then cache-on at a roomy and a tiny (eviction
/// pressure) capacity, across serial and 4-thread pools; all runs must be
/// bit-identical to the cache-off baseline.
void check_flow_with_options(const core::DseMethodology& dse, FlowFn flow,
                             const core::DseOptions& options) {
  util::set_cache_capacity(0);
  util::set_thread_count(1);
  const core::DseOutcome baseline = (dse.*flow)(options);
  ASSERT_FALSE(baseline.front.empty());

  for (const std::size_t capacity : {std::size_t{2048}, std::size_t{32}}) {
    util::set_cache_capacity(capacity);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      util::set_thread_count(threads);
      const core::DseOutcome cached = (dse.*flow)(options);
      SCOPED_TRACE(::testing::Message()
                   << "capacity " << capacity << ", threads " << threads);
      expect_identical(baseline, cached);
    }
  }
}

void check_flow(const core::DseMethodology& dse, FlowFn flow,
                std::uint64_t seed) {
  check_flow_with_options(dse, flow, small_options(seed));
}

TEST_F(CacheEquivalenceTest, FcClrFlowOnSobel) {
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  check_flow(dse, &core::DseMethodology::run_fcclr, 7);
}

TEST_F(CacheEquivalenceTest, PfClrFlowOnSobel) {
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  check_flow(dse, &core::DseMethodology::run_pfclr, 11);
}

TEST_F(CacheEquivalenceTest, ProposedFlowOnSobel) {
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  check_flow(dse, &core::DseMethodology::run_proposed, 13);
}

TEST_F(CacheEquivalenceTest, KResilientFlowOnSobel) {
  // The k-resilient evaluation adds its own memoized layer (the
  // ResilientProblem fitness cache) on top of the nominal problem's; both
  // must stay invisible to results under eviction pressure and threading.
  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  core::DseOptions options = small_options(17);
  options.resilience.max_failures = 1;
  check_flow_with_options(dse, &core::DseMethodology::run_kresilient, options);
}

TEST_F(CacheEquivalenceTest, AllFlowsOnRandomizedSyntheticApplications) {
  // Randomized problem structure: TGFF-style graphs of varying size with
  // fresh characterization seeds, each checked across flows and seeds.
  const struct { std::size_t tasks; std::uint64_t app_seed; } specs[] = {
      {10, 301}, {14, 302}};
  const FlowFn flows[] = {&core::DseMethodology::run_fcclr,
                          &core::DseMethodology::run_pfclr,
                          &core::DseMethodology::run_proposed};
  std::uint64_t ga_seed = 40;
  for (const auto& spec : specs) {
    const core::DseMethodology dse(
        app::make_synthetic_application(spec.tasks, 10, spec.app_seed),
        platform::Architecture::paper_default(),
        reliability::TaskAnalyzer::paper_default());
    for (const FlowFn flow : flows) {
      SCOPED_TRACE(::testing::Message() << "tasks " << spec.tasks
                                        << ", ga seed " << ga_seed);
      check_flow(dse, flow, ga_seed++);
    }
  }
}

TEST_F(CacheEquivalenceTest, ArchivePointsAndViolationsMatchBitForBit) {
  // Drop below the DseOutcome surface: run_nsga2's full state — population
  // objectives, constraint violations, archive members — must be identical
  // with and without the caches, including the within-batch genome dedupe
  // path that only engages when ops.hash/ops.equal are set.
  const app::Application sobel = app::make_sobel_application();
  const platform::Architecture arch = platform::Architecture::paper_default();
  const core::ClrMappingProblem problem(
      sobel, arch, reliability::TaskAnalyzer::paper_default(),
      core::SystemObjectives{}, sched::QosSpec{});

  moea::Nsga2Params params;
  params.population_size = 16;
  params.generations = 6;
  params.archive_size = 12;

  util::set_cache_capacity(0);
  util::set_thread_count(1);
  util::Rng rng_off(21);
  const auto off = moea::run_nsga2(params, problem.ops(), rng_off);
  ASSERT_FALSE(off.population.empty());

  for (const std::size_t capacity : {std::size_t{4096}, std::size_t{32}}) {
    util::set_cache_capacity(capacity);
    // A fresh problem so the fitness cache is built at the new capacity.
    const core::ClrMappingProblem cached_problem(
        sobel, arch, reliability::TaskAnalyzer::paper_default(),
        core::SystemObjectives{}, sched::QosSpec{});
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(::testing::Message()
                   << "capacity " << capacity << ", threads " << threads);
      util::set_thread_count(threads);
      util::Rng rng_on(21);
      const auto on = moea::run_nsga2(params, cached_problem.ops(), rng_on);

      EXPECT_EQ(off.evaluations, on.evaluations);
      ASSERT_EQ(off.population.size(), on.population.size());
      for (std::size_t i = 0; i < off.population.size(); ++i) {
        EXPECT_EQ(off.population[i].genome, on.population[i].genome);
        EXPECT_EQ(off.population[i].eval.objectives,
                  on.population[i].eval.objectives);
        EXPECT_EQ(off.population[i].eval.violation,
                  on.population[i].eval.violation);
      }
      ASSERT_EQ(off.archive.size(), on.archive.size());
      for (std::size_t i = 0; i < off.archive.size(); ++i) {
        EXPECT_EQ(off.archive[i].genome, on.archive[i].genome);
        EXPECT_EQ(off.archive[i].eval.objectives,
                  on.archive[i].eval.objectives);
        EXPECT_EQ(off.archive[i].eval.violation, on.archive[i].eval.violation);
      }
      ASSERT_EQ(off.front.size(), on.front.size());
      for (std::size_t i = 0; i < off.front.size(); ++i) {
        EXPECT_EQ(off.population[off.front[i]].eval.objectives,
                  on.population[on.front[i]].eval.objectives);
      }
    }
    // The roomy run must actually exercise the cache, not bypass it.
    if (capacity >= 4096) {
      const util::CacheStats stats = cached_problem.fitness_cache_stats();
      EXPECT_GT(stats.hits + stats.misses, 0u);
    }
  }
}

}  // namespace
}  // namespace clrearly
