// Property-based tests of the permanent-fault axis over randomly generated
// platform/task-graph instances: a small seeded fuzzer draws TGFF-style
// synthetic applications and checks the structural invariants the
// k-resilience machinery promises on every instance —
//   1. a k-resilient front is contained in the (k-1)-resilient feasible set
//      (violation is monotone in the failure budget),
//   2. degraded-mode repair never maps a task onto a failed PE,
//   3. reported front points are mutually non-dominated.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "app/characterizer.hpp"
#include "core/dse.hpp"
#include "moea/pareto.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly {
namespace {

struct Instance {
  std::size_t tasks;
  std::uint64_t app_seed;
  std::uint64_t ga_seed;
};

// Small but varied: graph sizes and characterization seeds both move.
const Instance kInstances[] = {
    {6, 501, 31}, {9, 502, 32}, {12, 503, 33}, {15, 504, 34}};

class ResiliencePropertyTest : public ::testing::TestWithParam<Instance> {
 protected:
  static void SetUpTestSuite() { util::set_log_level(util::LogLevel::Warn); }

  static core::DseMethodology methodology(const Instance& instance) {
    return core::DseMethodology(
        app::make_synthetic_application(instance.tasks, 8, instance.app_seed),
        platform::Architecture::paper_default(),
        reliability::TaskAnalyzer::paper_default());
  }

  static core::DseOptions options(const Instance& instance,
                                  std::size_t max_failures) {
    core::DseOptions o;
    o.ga.population_size = 16;
    o.ga.generations = 6;
    o.seed = instance.ga_seed;
    o.resilience.max_failures = max_failures;
    return o;
  }
};

TEST_P(ResiliencePropertyTest, KResilientFrontIsKMinusOneFeasible) {
  const Instance& instance = GetParam();
  const core::DseMethodology dse = methodology(instance);
  const core::DseOutcome outcome = dse.run_kresilient(options(instance, 1));
  ASSERT_FALSE(outcome.front_genomes.empty());

  // Every k=1 front point must be feasible under the k=0 problem (nominal
  // spec only) — the containment direction of the monotonicity argument.
  const core::ResilientProblem weaker =
      dse.build_resilient_problem(options(instance, 0));
  const core::ResilientProblem certified =
      dse.build_resilient_problem(options(instance, 1));
  for (const core::MappingGenome& genome : outcome.front_genomes) {
    EXPECT_EQ(certified.evaluate(genome).violation, 0.0);
    EXPECT_EQ(weaker.evaluate(genome).violation, 0.0);
  }
}

TEST_P(ResiliencePropertyTest, RepairNeverUsesAFailedPe) {
  const Instance& instance = GetParam();
  const core::DseMethodology dse = methodology(instance);
  const core::ResilientProblem problem =
      dse.build_resilient_problem(options(instance, 2));

  util::Rng rng(instance.ga_seed);
  for (int trial = 0; trial < 20; ++trial) {
    const core::MappingGenome genome = problem.layout().random(rng);
    for (const auto& mode : problem.degraded_modes(genome)) {
      if (!mode.repairable) continue;
      for (const auto& task : problem.nominal().resolve(mode.mapping)) {
        EXPECT_FALSE(mode.failed[task.pe]);
      }
    }
  }
}

TEST_P(ResiliencePropertyTest, FrontPointsAreMutuallyNonDominated) {
  const Instance& instance = GetParam();
  const core::DseMethodology dse = methodology(instance);
  const core::DseOutcome outcome = dse.run_kresilient(options(instance, 1));
  ASSERT_FALSE(outcome.front.empty());
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    for (std::size_t j = 0; j < outcome.front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(moea::dominates(outcome.front[i], outcome.front[j]))
          << "point " << i << " dominates point " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SyntheticInstances, ResiliencePropertyTest,
                         ::testing::ValuesIn(kInstances),
                         [](const ::testing::TestParamInfo<Instance>& info) {
                           return "Tasks" + std::to_string(info.param.tasks);
                         });

}  // namespace
}  // namespace clrearly
