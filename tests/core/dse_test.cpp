#include "core/dse.hpp"

#include <gtest/gtest.h>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/baselines.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly::core {
namespace {

class DseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::set_log_level(util::LogLevel::Warn);
  }

  DseMethodology sobel_dse() const {
    return DseMethodology(app::make_sobel_application(),
                          platform::Architecture::paper_default(),
                          reliability::TaskAnalyzer::paper_default());
  }

  DseOptions small_options(std::uint64_t seed) const {
    DseOptions options;
    options.ga.population_size = 24;
    options.ga.generations = 8;
    options.seed = seed;
    return options;
  }
};

TEST_F(DseFixture, TdseProducesPointsForEveryType) {
  const DseMethodology dse = sobel_dse();
  const auto tdse = dse.run_tdse(small_options(1));
  ASSERT_EQ(tdse.size(), 4u);
  for (const auto& r : tdse) EXPECT_FALSE(r.pareto.empty());
}

TEST_F(DseFixture, FcclrProducesNonDominatedFeasibleFront) {
  const DseMethodology dse = sobel_dse();
  const DseOutcome outcome = dse.run_fcclr(small_options(2));
  ASSERT_FALSE(outcome.front.empty());
  EXPECT_GT(outcome.evaluations, 0u);
  // Front members must be mutually non-dominated.
  for (const auto& a : outcome.front) {
    for (const auto& b : outcome.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moea::dominates(a, b));
    }
  }
  // Genomes decode back to the reported objectives.
  ASSERT_EQ(outcome.front.size(), outcome.front_genomes.size());
}

TEST_F(DseFixture, PfclrRunsOnTdseResults) {
  const DseMethodology dse = sobel_dse();
  const auto tdse = dse.run_tdse(small_options(3));
  const DseOutcome outcome = dse.run_pfclr(small_options(3), tdse);
  EXPECT_FALSE(outcome.front.empty());
}

TEST_F(DseFixture, ProposedCombinesEvaluationBudget) {
  const DseMethodology dse = sobel_dse();
  const DseOptions options = small_options(4);
  const DseOutcome pf = dse.run_pfclr(options);
  const DseOutcome proposed = dse.run_proposed(options);
  // Proposed spends the pfCLR budget plus a full fcCLR run.
  EXPECT_GT(proposed.evaluations, pf.evaluations);
  EXPECT_FALSE(proposed.front.empty());
}

TEST_F(DseFixture, FlowsAreDeterministicPerSeed) {
  const DseMethodology dse = sobel_dse();
  const DseOutcome a = dse.run_fcclr(small_options(5));
  const DseOutcome b = dse.run_fcclr(small_options(5));
  EXPECT_EQ(a.front, b.front);
  const DseOutcome c = dse.run_fcclr(small_options(6));
  EXPECT_NE(a.front, c.front);
}

TEST_F(DseFixture, FrontHasNoDuplicateObjectiveVectors) {
  const DseMethodology dse = sobel_dse();
  const DseOutcome outcome = dse.run_proposed(small_options(7));
  for (std::size_t i = 0; i < outcome.front.size(); ++i) {
    for (std::size_t j = i + 1; j < outcome.front.size(); ++j) {
      EXPECT_NE(outcome.front[i], outcome.front[j]);
    }
  }
}

TEST_F(DseFixture, ProposedAtLeastMatchesPfclrHypervolume) {
  // The paper's TABLE VII shape: proposed >= pfCLR (usually strictly).
  const DseMethodology dse = sobel_dse();
  const DseOptions options = small_options(8);
  const auto tdse = dse.run_tdse(options);
  const DseOutcome pf = dse.run_pfclr(options, tdse);
  const DseOutcome proposed = dse.run_proposed(options, tdse);

  const auto ref = moea::common_reference({pf.front, proposed.front});
  EXPECT_GE(moea::hypervolume(proposed.front, ref),
            moea::hypervolume(pf.front, ref) * 0.999);
}

TEST_F(DseFixture, HeuristicSeedingNeverHurtsAndHelpsWhenConstrained) {
  const DseMethodology dse = sobel_dse();
  DseOptions options = small_options(13);
  options.ga.generations = 3;  // tiny budget: the seed must matter
  options.spec.min_functional_rel = 0.995;

  DseOptions seeded = options;
  seeded.heuristic_seed = true;
  const DseOutcome with_seed = dse.run_fcclr(seeded);
  // The heuristic seed makes the initial population feasible, so even a
  // 3-generation run reports a non-empty front.
  EXPECT_FALSE(with_seed.front.empty());
}

TEST_F(DseFixture, ReportDescribesEveryTask) {
  const DseMethodology dse = sobel_dse();
  const DseOutcome outcome = dse.run_fcclr(small_options(14));
  ASSERT_FALSE(outcome.front_genomes.empty());

  const ClrMappingProblem problem(
      app::make_sobel_application(), platform::Architecture::paper_default(),
      reliability::TaskAnalyzer::paper_default(), SystemObjectives{},
      sched::QosSpec{});
  const auto report = problem.report(outcome.front_genomes.front());
  ASSERT_EQ(report.size(), 5u);
  for (const auto& choice : report) {
    EXPECT_FALSE(choice.task_name.empty());
    EXPECT_FALSE(choice.impl_name.empty());
    EXPECT_FALSE(choice.pe_type_name.empty());
    EXPECT_NE(choice.config_text.find("HW:"), std::string::npos);
    EXPECT_LT(choice.pe, 6u);
    EXPECT_GT(choice.metrics.avg_exec_time_us, 0.0);
  }
}

// --- Baselines -------------------------------------------------------------------

TEST_F(DseFixture, SingleLayerAxes) {
  EXPECT_EQ(to_string(SingleLayer::kDvfs), "DVFS");
  EXPECT_EQ(to_string(SingleLayer::kHwRel), "HWRel");
  EXPECT_EQ(to_string(SingleLayer::kSswRel), "SSWRel");
  EXPECT_EQ(to_string(SingleLayer::kAswRel), "ASWRel");

  const auto axes = axes_for(SingleLayer::kSswRel);
  EXPECT_TRUE(axes.ssw);
  EXPECT_FALSE(axes.hw);
  EXPECT_FALSE(axes.asw);
  EXPECT_FALSE(axes.dvfs);
}

TEST_F(DseFixture, SingleLayerRunsComplete) {
  const DseMethodology dse = sobel_dse();
  const DseOutcome outcome =
      run_single_layer(dse, small_options(9), SingleLayer::kHwRel);
  EXPECT_FALSE(outcome.front.empty());
}

TEST_F(DseFixture, AgnosticCombinesFourLayers) {
  const DseMethodology dse = sobel_dse();
  const AgnosticOutcome outcome = run_agnostic(dse, small_options(10));
  EXPECT_EQ(outcome.per_layer.size(), 4u);
  EXPECT_FALSE(outcome.combined_front.empty());
  // The union front dominates-or-equals every per-layer point.
  std::size_t total_eval = 0;
  for (const auto& run : outcome.per_layer) total_eval += run.evaluations;
  EXPECT_EQ(outcome.evaluations, total_eval);

  for (const auto& point : outcome.combined_front) {
    for (const auto& other : outcome.combined_front) {
      if (&point == &other) continue;
      EXPECT_FALSE(moea::dominates(other, point));
    }
  }
}

TEST_F(DseFixture, ClrBeatsAgnosticOnSynthetic) {
  // The Fig. 7 headline with a fixed seed: on a 20-task application under
  // the paper's high-fault operating conditions, the cross-layer front's
  // hypervolume beats the agnostic union of single-layer fronts.
  const app::Application syn = app::make_synthetic_application(20, 10, 1020);
  const DseMethodology dse(syn, platform::Architecture::paper_default(),
                           bench_system_analyzer());
  DseOptions options = small_options(11);
  options.ga.population_size = 100;
  options.ga.generations = 60;
  options.spec.min_functional_rel = 0.99;
  const DseOutcome clr = dse.run_proposed(options);
  const AgnosticOutcome agnostic = run_agnostic(dse, options);

  const auto ref =
      moea::common_reference({clr.front, agnostic.combined_front});
  EXPECT_GT(moea::hypervolume(clr.front, ref),
            moea::hypervolume(agnostic.combined_front, ref));
}

// --- Synthetic application integration --------------------------------------------

TEST_F(DseFixture, WorksOnSyntheticApplication) {
  const app::Application syn = app::make_synthetic_application(15, 10, 42);
  const DseMethodology dse(syn, platform::Architecture::paper_default(),
                           reliability::TaskAnalyzer::paper_default());
  const DseOutcome outcome = dse.run_proposed(small_options(12));
  EXPECT_FALSE(outcome.front.empty());
  for (const auto& point : outcome.front) {
    EXPECT_GT(point[0], 0.0);                       // makespan positive
    EXPECT_GE(point[1], 0.0);                       // error prob in [0,1]
    EXPECT_LE(point[1], 1.0);
  }
}

}  // namespace
}  // namespace clrearly::core
