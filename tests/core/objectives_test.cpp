// Tests for the weighted Eq. 5 objective vector and many-objective
// (3+ objectives) system-level optimization.
#include <gtest/gtest.h>

#include "app/sobel.hpp"
#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "moea/hypervolume.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly::core {
namespace {

sched::QosMetrics sample_metrics() {
  sched::QosMetrics m;
  m.makespan_us = 1000.0;
  m.error_prob = 0.05;
  m.functional_rel = 0.95;
  m.mttf_hours = 2.0e4;
  m.energy_uj = 400.0;
  m.peak_power_w = 2.5;
  return m;
}

TEST(SystemObjectivesTest, AllSelectsFiveMetrics) {
  const SystemObjectives obj = SystemObjectives::all();
  EXPECT_EQ(obj.count(), 5u);
  const auto v = obj.extract(sample_metrics());
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 1000.0);
  EXPECT_EQ(v[1], 0.05);
  EXPECT_EQ(v[2], -2.0e4);
  EXPECT_EQ(v[3], 400.0);
  EXPECT_EQ(v[4], 2.5);
}

TEST(SystemObjectivesTest, WeightsScaleComponents) {
  SystemObjectives obj;
  obj.w_makespan = 0.001;
  obj.w_error_prob = 100.0;
  const auto v = obj.extract(sample_metrics());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(SystemObjectivesTest, WeightsDoNotChangeDominance) {
  // Scaling objectives positively preserves Pareto dominance.
  sched::QosMetrics a = sample_metrics();
  sched::QosMetrics b = sample_metrics();
  b.makespan_us = 1200.0;
  b.error_prob = 0.08;

  SystemObjectives plain;
  SystemObjectives weighted;
  weighted.w_makespan = 0.01;
  weighted.w_error_prob = 42.0;
  EXPECT_TRUE(moea::dominates(plain.extract(a), plain.extract(b)));
  EXPECT_TRUE(moea::dominates(weighted.extract(a), weighted.extract(b)));
}

TEST(SystemObjectivesTest, ScalarizeSumsWeightedComponents) {
  SystemObjectives obj;
  obj.w_makespan = 0.001;
  obj.w_error_prob = 10.0;
  EXPECT_DOUBLE_EQ(obj.scalarize(sample_metrics()), 1.0 + 0.5);
}

TEST(ManyObjectiveDseTest, TriObjectiveRunProducesValidFront) {
  util::set_log_level(util::LogLevel::Warn);
  // Makespan + error probability + lifetime: exercises the WFG hypervolume
  // path and the 3-D non-dominated sorting at system level.
  SystemObjectives objectives;
  objectives.mttf = true;

  DseOptions options;
  options.objectives = objectives;
  options.ga.population_size = 40;
  options.ga.generations = 15;
  options.seed = 4;

  const DseMethodology dse(app::make_sobel_application(),
                           platform::Architecture::paper_default(),
                           bench_system_analyzer());
  const DseOutcome outcome = dse.run_proposed(options);

  ASSERT_FALSE(outcome.front.empty());
  for (const auto& p : outcome.front) {
    ASSERT_EQ(p.size(), 3u);
    EXPECT_GT(p[0], 0.0);   // makespan
    EXPECT_GE(p[1], 0.0);   // error probability
    EXPECT_LT(p[2], 0.0);   // negated MTTF
  }
  // Mutually non-dominated in 3-D.
  for (const auto& a : outcome.front) {
    for (const auto& b : outcome.front) {
      if (&a == &b) continue;
      EXPECT_FALSE(moea::dominates(a, b));
    }
  }
  // 3-D hypervolume computes without issue.
  const auto ref = moea::common_reference({outcome.front});
  EXPECT_GT(moea::hypervolume(outcome.front, ref), 0.0);
}

TEST(ManyObjectiveDseTest, LifetimeObjectiveShiftsFrontTowardLongLife) {
  util::set_log_level(util::LogLevel::Warn);
  const DseMethodology dse(app::make_sobel_application(),
                           platform::Architecture::paper_default(),
                           bench_system_analyzer());

  DseOptions bi = DseOptions{};
  bi.ga.population_size = 40;
  bi.ga.generations = 15;
  bi.seed = 5;

  DseOptions tri = bi;
  tri.objectives.mttf = true;

  const DseOutcome front_bi = dse.run_proposed(bi);
  const DseOutcome front_tri = dse.run_proposed(tri);
  ASSERT_FALSE(front_bi.front.empty());
  ASSERT_FALSE(front_tri.front.empty());

  // Evaluate the realized MTTF of both fronts through a common problem.
  const ClrMappingProblem problem(app::make_sobel_application(),
                                  platform::Architecture::paper_default(),
                                  bench_system_analyzer(), SystemObjectives{},
                                  sched::QosSpec{});
  auto best_mttf = [&](const DseOutcome& outcome) {
    double best = 0.0;
    for (const auto& genome : outcome.front_genomes) {
      best = std::max(best, problem.qos(genome).mttf_hours);
    }
    return best;
  };
  EXPECT_GE(best_mttf(front_tri), best_mttf(front_bi));
}

}  // namespace
}  // namespace clrearly::core
