// Wire-format tests: JSON round-trips for the serve job format, strict
// rejection of malformed/unknown input, and the replay pin — a spooled spec
// re-executes bit-identically through the same flow entry points.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/dse.hpp"
#include "core/scenario.hpp"
#include "io/serialize.hpp"
#include "util/json.hpp"

namespace clrearly {
namespace {

io::JobSpec small_spec() {
  io::JobSpec spec;
  spec.name = "unit";
  spec.flow = "pfclr";
  spec.seed = 42;
  spec.threads = 2;
  spec.heuristic_seed = true;
  spec.scenario = {"bench", 3.5, 1.0};
  spec.ga.population_size = 12;
  spec.ga.generations = 3;
  spec.ga.crossover_prob = 0.75;
  spec.ga.mutation_prob = 0.3;
  spec.ga.mutation_indpb = 0.07;
  spec.objectives.mttf = true;
  spec.objectives.w_error_prob = 2.0;
  spec.spec.min_functional_rel = 0.9;
  spec.spec.max_energy_uj = 1e9;
  spec.tdse_objectives = core::TdseObjectives::table4_row(3);
  spec.application = io::resolve_application("sobel");
  spec.architecture = io::resolve_architecture("default");
  return spec;
}

/// Canonical-JSON equality: JsonObject is a sorted map and doubles print
/// shortest-round-trip, so equal specs serialize to equal strings.
std::string canon(const io::JobSpec& spec) {
  return util::json_serialize(io::to_json(spec));
}

TEST(WireFormatTest, JobSpecRoundTripsThroughJson) {
  const io::JobSpec spec = small_spec();
  const io::JobSpec back =
      io::job_spec_from_json(util::json_parse(canon(spec)));
  EXPECT_EQ(canon(spec), canon(back));
  EXPECT_EQ(back.flow, "pfclr");
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.threads, 2u);
  EXPECT_TRUE(back.heuristic_seed);
  EXPECT_DOUBLE_EQ(back.scenario.environment_factor, 3.5);
  EXPECT_EQ(back.ga.population_size, 12u);
  ASSERT_TRUE(back.spec.min_functional_rel.has_value());
  EXPECT_DOUBLE_EQ(*back.spec.min_functional_rel, 0.9);
  EXPECT_FALSE(back.spec.max_makespan_us.has_value());
}

TEST(WireFormatTest, ScenarioSetRoundTrips) {
  const core::ScenarioSet scenarios = core::ScenarioSet::ground_and_altitude();
  const core::ScenarioSet back =
      io::scenario_set_from_json(io::to_json(scenarios));
  ASSERT_EQ(back.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(back.scenario(i), scenarios.scenario(i));
  }
}

TEST(WireFormatTest, QosSpecAbsentKeysStayUnset) {
  const sched::QosSpec empty =
      io::qos_spec_from_json(util::json_parse("{}"));
  EXPECT_FALSE(empty.max_makespan_us.has_value());
  EXPECT_FALSE(empty.min_functional_rel.has_value());
  EXPECT_FALSE(empty.min_mttf_hours.has_value());
  EXPECT_FALSE(empty.max_energy_uj.has_value());
  EXPECT_FALSE(empty.max_peak_power_w.has_value());
}

TEST(WireFormatTest, AcceptsSpecStringShorthands) {
  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1,
    "application": "synthetic:6:3"
  })"));
  EXPECT_EQ(spec.application.graph.num_tasks(), 6u);
  EXPECT_EQ(spec.architecture.num_pes(),
            platform::Architecture::paper_default().num_pes());
  EXPECT_EQ(spec.flow, "proposed");
  EXPECT_EQ(spec.seed, 1u);
}

TEST(WireFormatTest, RejectsUnknownFormatVersion) {
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(
                   R"({"format_version": 2, "application": "sobel"})")),
               std::runtime_error);
  // And a missing version is just as unacceptable.
  EXPECT_THROW(
      io::job_spec_from_json(util::json_parse(R"({"application": "sobel"})")),
      std::runtime_error);
}

TEST(WireFormatTest, RejectsUnknownTopLevelKeys) {
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1,
                 "application": "sobel",
                 "sed": 7
               })")),
               std::runtime_error);
}

TEST(WireFormatTest, RejectsBadFlowAndMalformedFields) {
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "flow": "warp-speed"
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "seed": -3
               })")),
               std::runtime_error);
  // Nsga2Params::validate() flags semantic nonsense as invalid_argument.
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "ga": {"population_size": 1}
               })")),
               std::invalid_argument);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "ga": {"generations": "many"}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "scenario": {"environment_factor": -1}
               })")),
               std::runtime_error);
}

TEST(WireFormatTest, ResilienceSpecRoundTripsThroughJson) {
  io::JobSpec spec = small_spec();
  spec.flow = "kresilient";
  spec.resilience.max_failures = 2;
  spec.resilience.mission_hours = 8760.0;
  spec.resilience.spare_pes = {1, 3};
  spec.resilience.spare_penalty_weight = 2.5;
  spec.resilience.degraded_spec.max_makespan_us = 5000.0;
  spec.resilience.degraded_spec.max_energy_uj = 2e8;

  const io::JobSpec back =
      io::job_spec_from_json(util::json_parse(canon(spec)));
  EXPECT_EQ(canon(spec), canon(back));
  EXPECT_EQ(back.flow, "kresilient");
  EXPECT_EQ(back.resilience.max_failures, 2u);
  EXPECT_DOUBLE_EQ(back.resilience.mission_hours, 8760.0);
  ASSERT_EQ(back.resilience.spare_pes.size(), 2u);
  EXPECT_EQ(back.resilience.spare_pes[0], 1u);
  EXPECT_EQ(back.resilience.spare_pes[1], 3u);
  EXPECT_DOUBLE_EQ(back.resilience.spare_penalty_weight, 2.5);
  ASSERT_TRUE(back.resilience.degraded_spec.max_makespan_us.has_value());
  EXPECT_DOUBLE_EQ(*back.resilience.degraded_spec.max_makespan_us, 5000.0);
  ASSERT_TRUE(back.resilience.degraded_spec.max_energy_uj.has_value());
  EXPECT_DOUBLE_EQ(*back.resilience.degraded_spec.max_energy_uj, 2e8);
  EXPECT_FALSE(back.resilience.degraded_spec.min_functional_rel.has_value());
  EXPECT_EQ(back.resilience, spec.resilience);
}

TEST(WireFormatTest, ResilienceAbsentKeepsDefaults) {
  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1,
    "application": "sobel"
  })"));
  EXPECT_EQ(spec.resilience, core::ResilienceSpec{});
  EXPECT_EQ(spec.resilience.max_failures, 1u);
  EXPECT_DOUBLE_EQ(spec.resilience.mission_hours, 20000.0);
  EXPECT_TRUE(spec.resilience.spare_pes.empty());
}

TEST(WireFormatTest, AcceptsKResilientFlow) {
  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1,
    "application": "sobel",
    "flow": "kresilient",
    "resilience": {"max_failures": 1, "mission_hours": 10000}
  })"));
  EXPECT_EQ(spec.flow, "kresilient");
  EXPECT_EQ(spec.resilience.max_failures, 1u);
  EXPECT_DOUBLE_EQ(spec.resilience.mission_hours, 10000.0);
}

TEST(WireFormatTest, RejectsMalformedResilience) {
  // Unknown sub-keys inside "resilience" are rejected just like top-level.
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "resilience": {"max_failure": 1}
               })")),
               std::runtime_error);
  // Semantic validation runs against the resolved architecture: a failure
  // budget that equals the PE count can never leave a surviving mapping.
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "resilience": {"max_failures": 99}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "resilience": {"mission_hours": -5}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "resilience": {"spare_pes": [99]}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "resilience": {"max_failures": -1}
               })")),
               std::runtime_error);
}

TEST(WireFormatTest, IslandsRoundTripThroughJson) {
  io::JobSpec spec = small_spec();
  spec.island.islands = 4;
  spec.island.migration_interval = 7;
  spec.island.migration_size = 9;
  const io::JobSpec back =
      io::job_spec_from_json(util::json_parse(canon(spec)));
  EXPECT_EQ(canon(spec), canon(back));
  EXPECT_EQ(back.island.islands, 4u);
  EXPECT_EQ(back.island.migration_interval, 7u);
  EXPECT_EQ(back.island.migration_size, 9u);
  EXPECT_EQ(back.island, spec.island);
}

TEST(WireFormatTest, IslandsAbsentKeepsSinglePopulationDefaults) {
  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1,
    "application": "sobel"
  })"));
  EXPECT_EQ(spec.island, moea::IslandParams{});
  EXPECT_EQ(spec.island.islands, 1u);
}

TEST(WireFormatTest, RejectsMalformedIslands) {
  // Unknown sub-keys inside "islands" are rejected just like top-level.
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "islands": {"cout": 2}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "islands": {"count": 0}
               })")),
               std::runtime_error);
  EXPECT_THROW(io::job_spec_from_json(util::json_parse(R"({
                 "format_version": 1, "application": "sobel",
                 "islands": {"count": 2, "migration_interval": 0}
               })")),
               std::runtime_error);
}

TEST(WireFormatTest, ModelKeySeesIslandChanges) {
  // Island sharding changes which search ran, and ModelSession mirrors the
  // spec's island half (server/job.cpp), so the key must see it.
  const io::JobSpec a = small_spec();
  io::JobSpec b = a;
  b.island.islands = 4;
  EXPECT_NE(a.model_key(), b.model_key());
  io::JobSpec c = a;
  c.island.migration_interval = 3;
  EXPECT_NE(a.model_key(), c.model_key());
  io::JobSpec d = a;
  d.island.migration_size = 12;
  EXPECT_NE(a.model_key(), d.model_key());
}

TEST(WireFormatTest, ModelKeySeesResilienceChanges) {
  const io::JobSpec a = small_spec();
  io::JobSpec b = a;
  b.resilience.max_failures = 2;
  EXPECT_NE(a.model_key(), b.model_key());
  io::JobSpec c = a;
  c.resilience.mission_hours = 1000.0;
  EXPECT_NE(a.model_key(), c.model_key());
  io::JobSpec d = a;
  d.resilience.degraded_spec.max_makespan_us = 123.0;
  EXPECT_NE(a.model_key(), d.model_key());
}

TEST(WireFormatTest, ModelKeyIgnoresSearchHalfAndSeesModelHalf) {
  const io::JobSpec a = small_spec();
  io::JobSpec b = a;
  b.seed = 999;
  b.flow = "fcclr";
  b.name = "other";
  b.ga.generations = 50;
  b.threads = 8;
  EXPECT_EQ(a.model_key(), b.model_key());

  io::JobSpec c = a;
  c.scenario.environment_factor = 50.0;
  EXPECT_NE(a.model_key(), c.model_key());
  io::JobSpec d = a;
  d.spec.max_makespan_us = 1e7;
  EXPECT_NE(a.model_key(), d.model_key());
}

TEST(WireFormatTest, SpooledSpecReplaysBitIdentically) {
  io::JobSpec spec = small_spec();
  spec.flow = "proposed";
  spec.ga.population_size = 10;
  spec.ga.generations = 2;
  spec.heuristic_seed = false;
  spec.spec = {};

  const std::string path = ::testing::TempDir() + "/wire_replay.spec.json";
  io::save_job_spec(path, spec);
  const io::JobSpec replay = io::load_job_spec(path);
  EXPECT_EQ(canon(spec), canon(replay));

  const core::DseMethodology dse_a(
      spec.application, spec.architecture,
      core::make_condition_analyzer(spec.scenario.environment_factor));
  const core::DseMethodology dse_b(
      replay.application, replay.architecture,
      core::make_condition_analyzer(replay.scenario.environment_factor));
  const core::DseOutcome a = dse_a.run_proposed(spec.options());
  const core::DseOutcome b = dse_b.run_proposed(replay.options());
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i], b.front[i]) << "front point " << i;
  }
  EXPECT_EQ(a.evaluations, b.evaluations);
  std::remove(path.c_str());
}

TEST(WireFormatTest, ProgressHookObservesEveryGeneration) {
  const io::JobSpec spec = small_spec();
  const core::DseMethodology dse(
      spec.application, spec.architecture,
      core::make_condition_analyzer(spec.scenario.environment_factor));
  core::DseOptions with_hook = spec.options();
  std::size_t calls = 0;
  std::size_t last_generation = 0;
  with_hook.ga.on_generation =
      [&](const moea::GenerationProgress& progress) {
        ++calls;
        last_generation = progress.generation;
        EXPECT_EQ(progress.generations, with_hook.ga.generations);
        EXPECT_GT(progress.evaluations, 0u);
        EXPECT_GT(progress.front_size, 0u);
      };
  const core::DseOutcome hooked = dse.run_pfclr(with_hook);
  // One call per generation plus the final-front call.
  EXPECT_EQ(calls, with_hook.ga.generations + 1);
  EXPECT_EQ(last_generation, with_hook.ga.generations);

  // The hook is a pure observer: results match the hook-free run bit for bit.
  const core::DseOutcome plain = dse.run_pfclr(spec.options());
  ASSERT_EQ(hooked.front.size(), plain.front.size());
  for (std::size_t i = 0; i < hooked.front.size(); ++i) {
    EXPECT_EQ(hooked.front[i], plain.front[i]);
  }
}

}  // namespace
}  // namespace clrearly
