#include "io/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "app/characterizer.hpp"
#include "app/sobel.hpp"
#include "core/dse.hpp"

namespace clrearly::io {
namespace {

void expect_same_architecture(const platform::Architecture& a,
                              const platform::Architecture& b) {
  ASSERT_EQ(a.num_types(), b.num_types());
  ASSERT_EQ(a.num_pes(), b.num_pes());
  for (std::size_t t = 0; t < a.num_types(); ++t) {
    const platform::PeType& x = a.type(t);
    const platform::PeType& y = b.type(t);
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.pe_class, y.pe_class);
    EXPECT_DOUBLE_EQ(x.masking_factor, y.masking_factor);
    EXPECT_DOUBLE_EQ(x.weibull_beta, y.weibull_beta);
    EXPECT_DOUBLE_EQ(x.weibull_eta_base_hours, y.weibull_eta_base_hours);
    EXPECT_DOUBLE_EQ(x.idle_power_w, y.idle_power_w);
    ASSERT_EQ(x.dvfs.size(), y.dvfs.size());
    for (std::size_t d = 0; d < x.dvfs.size(); ++d) {
      EXPECT_EQ(x.dvfs.mode(d), y.dvfs.mode(d));
    }
  }
  for (std::size_t p = 0; p < a.num_pes(); ++p) {
    EXPECT_EQ(a.pe(p).type_index, b.pe(p).type_index);
  }
  EXPECT_DOUBLE_EQ(a.interconnect().bandwidth_kb_per_us,
                   b.interconnect().bandwidth_kb_per_us);
  EXPECT_DOUBLE_EQ(a.interconnect().latency_us, b.interconnect().latency_us);
}

void expect_same_application(const app::Application& a,
                             const app::Application& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_DOUBLE_EQ(a.period_us, b.period_us);
  ASSERT_EQ(a.graph.num_tasks(), b.graph.num_tasks());
  for (std::size_t t = 0; t < a.graph.num_tasks(); ++t) {
    EXPECT_EQ(a.graph.task(t).name, b.graph.task(t).name);
    EXPECT_EQ(a.graph.task(t).type, b.graph.task(t).type);
    EXPECT_DOUBLE_EQ(a.graph.task(t).criticality,
                     b.graph.task(t).criticality);
  }
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  ASSERT_EQ(a.impls.size(), b.impls.size());
  for (std::size_t type = 0; type < a.impls.size(); ++type) {
    ASSERT_EQ(a.impls[type].size(), b.impls[type].size());
    for (std::size_t i = 0; i < a.impls[type].size(); ++i) {
      const auto& x = a.impls[type][i];
      const auto& y = b.impls[type][i];
      EXPECT_EQ(x.name, y.name);
      EXPECT_EQ(x.target, y.target);
      EXPECT_DOUBLE_EQ(x.base_exec_time_us, y.base_exec_time_us);
      EXPECT_DOUBLE_EQ(x.base_power_w, y.base_power_w);
      EXPECT_DOUBLE_EQ(x.vulnerability, y.vulnerability);
      EXPECT_DOUBLE_EQ(x.ssw_overhead_factor, y.ssw_overhead_factor);
    }
  }
}

TEST(SerializeArchitectureTest, PaperDefaultRoundTrips) {
  const platform::Architecture original =
      platform::Architecture::paper_default();
  const platform::Architecture restored =
      architecture_from_json(to_json(original));
  expect_same_architecture(original, restored);
}

TEST(SerializeArchitectureTest, InterconnectRoundTrips) {
  platform::Architecture original = platform::Architecture::paper_default();
  platform::Interconnect icn;
  icn.bandwidth_kb_per_us = 4.0;
  icn.latency_us = 1.5;
  original.set_interconnect(icn);
  const platform::Architecture restored =
      architecture_from_json(to_json(original));
  expect_same_architecture(original, restored);
  EXPECT_TRUE(restored.interconnect().models_communication());
}

TEST(SerializeArchitectureTest, LoadValidatesTypes) {
  // A PE referencing a missing type index must be rejected by add_pe.
  const auto json = util::json_parse(R"({
    "types": [],
    "pes": [0]
  })");
  EXPECT_THROW(architecture_from_json(json), std::out_of_range);
}

TEST(SerializeApplicationTest, SobelRoundTrips) {
  const app::Application original = app::make_sobel_application();
  const app::Application restored = application_from_json(to_json(original));
  expect_same_application(original, restored);
  EXPECT_NO_THROW(restored.validate());
}

TEST(SerializeApplicationTest, SyntheticRoundTrips) {
  const app::Application original = app::make_synthetic_application(25, 10, 9);
  const app::Application restored = application_from_json(to_json(original));
  expect_same_application(original, restored);
}

TEST(SerializeApplicationTest, OptionalFieldsDefault) {
  const auto json = util::json_parse(R"({
    "name": "mini",
    "period_us": 1000,
    "tasks": [{"name": "t0", "type": 0}],
    "edges": [],
    "impls": [[{"name": "i", "target": "processor",
                "base_exec_time_us": 10, "base_power_w": 0.1}]]
  })");
  const app::Application a = application_from_json(json);
  EXPECT_DOUBLE_EQ(a.graph.task(0).criticality, 1.0);
  EXPECT_DOUBLE_EQ(a.impls[0][0].vulnerability, 1.0);
  EXPECT_DOUBLE_EQ(a.impls[0][0].ssw_overhead_factor, 1.0);
}

TEST(SerializeApplicationTest, BadClassTagRejected) {
  const auto json = util::json_parse(R"({
    "name": "mini", "period_us": 1000,
    "tasks": [{"name": "t0", "type": 0}],
    "edges": [],
    "impls": [[{"name": "i", "target": "gpu",
                "base_exec_time_us": 10, "base_power_w": 0.1}]]
  })");
  EXPECT_THROW(application_from_json(json), std::runtime_error);
}

class SerializeFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       "clrearly_serialize_test.json")
                          .string();
  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(SerializeFileTest, ArchitectureFileRoundTrip) {
  const platform::Architecture original =
      platform::Architecture::paper_default();
  save_architecture(path_, original);
  const platform::Architecture restored = load_architecture(path_);
  expect_same_architecture(original, restored);
}

TEST_F(SerializeFileTest, ApplicationFileRoundTrip) {
  const app::Application original = app::make_sobel_application();
  save_application(path_, original);
  const app::Application restored = load_application(path_);
  expect_same_application(original, restored);
}

TEST_F(SerializeFileTest, MissingFileThrows) {
  EXPECT_THROW(load_application("/nonexistent_xyz/app.json"),
               std::runtime_error);
  EXPECT_THROW(save_application("/nonexistent_xyz/app.json",
                                app::make_sobel_application()),
               std::runtime_error);
}

TEST_F(SerializeFileTest, LoadedModelDrivesDse) {
  // The acid test: a round-tripped model must produce the same DSE result
  // as the in-memory original.
  save_application(path_, app::make_sobel_application());
  const app::Application loaded = load_application(path_);

  const platform::Architecture arch = platform::Architecture::paper_default();
  core::DseOptions options;
  options.ga.population_size = 16;
  options.ga.generations = 4;
  options.seed = 3;

  const core::DseMethodology dse_orig(app::make_sobel_application(), arch,
                                      reliability::TaskAnalyzer::paper_default());
  const core::DseMethodology dse_load(loaded, arch,
                                      reliability::TaskAnalyzer::paper_default());
  EXPECT_EQ(dse_orig.run_pfclr(options).front,
            dse_load.run_pfclr(options).front);
}

}  // namespace
}  // namespace clrearly::io
