#include "moea/hypervolume.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::moea {
namespace {

TEST(Hypervolume2DTest, SinglePointIsBoxArea) {
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 2.0}}, {3.0, 5.0}), 2.0 * 3.0);
}

TEST(Hypervolume2DTest, TwoIncomparablePointsUnionArea) {
  // ref (4,4): boxes (1,3)->3x1=3... compute union:
  // p1=(1,3): gain (3,1); p2=(3,1): gain (1,3).
  // union area = 3*1 + 1*3 - 1*1 = 5.
  EXPECT_DOUBLE_EQ(hypervolume({{1.0, 3.0}, {3.0, 1.0}}, {4.0, 4.0}), 5.0);
}

TEST(Hypervolume2DTest, DominatedPointAddsNothing) {
  const double base = hypervolume({{1.0, 1.0}}, {4.0, 4.0});
  const double with_dominated =
      hypervolume({{1.0, 1.0}, {2.0, 2.0}}, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(base, with_dominated);
}

TEST(Hypervolume2DTest, DuplicatePointsCountOnce) {
  const double once = hypervolume({{1.0, 2.0}}, {3.0, 3.0});
  const double twice = hypervolume({{1.0, 2.0}, {1.0, 2.0}}, {3.0, 3.0});
  EXPECT_DOUBLE_EQ(once, twice);
}

TEST(Hypervolume2DTest, PointsBeyondReferenceIgnored) {
  EXPECT_DOUBLE_EQ(hypervolume({{5.0, 5.0}}, {4.0, 4.0}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume({{4.0, 1.0}}, {4.0, 4.0}), 0.0);  // boundary
  const double mixed =
      hypervolume({{1.0, 1.0}, {9.0, 9.0}}, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(mixed, 9.0);
}

TEST(Hypervolume2DTest, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {1.0, 1.0}), 0.0);
}

TEST(Hypervolume2DTest, StaircaseFront) {
  // Classic staircase with ref (5,5):
  // (1,4): 4x1, (2,3): adds 3x... compute: sweep desc gain0.
  // gains: (4,1), (3,2), (2,3), (1,4) -> area = 4*1 + 3*1 + 2*1 + 1*1 = 10.
  const std::vector<Objectives> front{
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume(front, {5.0, 5.0}), 10.0);
}

TEST(HypervolumeErrorsTest, DimensionMismatchThrows) {
  EXPECT_THROW(hypervolume({{1.0, 2.0, 3.0}}, {4.0, 4.0}),
               std::invalid_argument);
  EXPECT_THROW(hypervolume({{1.0}}, {}), std::invalid_argument);
}

TEST(Hypervolume3DTest, SingleBox) {
  EXPECT_DOUBLE_EQ(hypervolume({{0.0, 0.0, 0.0}}, {2.0, 3.0, 4.0}), 24.0);
}

TEST(Hypervolume3DTest, TwoDisjointishBoxesInclusionExclusion) {
  // p1 gains (2,2,1), p2 gains (1,1,3) w.r.t. ref (3,3,3)... overlap
  // (1,1,1): union = 4 + 3 - 1 = 6.
  const std::vector<Objectives> front{{1.0, 1.0, 2.0}, {2.0, 2.0, 0.0}};
  EXPECT_DOUBLE_EQ(hypervolume(front, {3.0, 3.0, 3.0}), 6.0);
}

TEST(Hypervolume3DTest, DominatedPointAddsNothing) {
  const std::vector<Objectives> front{{0.0, 0.0, 0.0}};
  const std::vector<Objectives> extra{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
  EXPECT_DOUBLE_EQ(hypervolume(front, {2.0, 2.0, 2.0}),
                   hypervolume(extra, {2.0, 2.0, 2.0}));
}

TEST(Hypervolume3DTest, DegenerateThirdObjectiveMatches2D) {
  // All points share objective 2 = 0 with ref 1: volume = 2D area x 1.
  const std::vector<Objectives> front3{
      {1.0, 4.0, 0.0}, {2.0, 3.0, 0.0}, {3.0, 2.0, 0.0}, {4.0, 1.0, 0.0}};
  const std::vector<Objectives> front2{
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};
  EXPECT_NEAR(hypervolume(front3, {5.0, 5.0, 1.0}),
              hypervolume(front2, {5.0, 5.0}), 1e-12);
}

// Property: Monte-Carlo estimate agrees with the WFG recursion in 3-D/4-D.
class HypervolumeMonteCarloTest : public ::testing::TestWithParam<int> {};

TEST_P(HypervolumeMonteCarloTest, MatchesSampling) {
  const int dims = GetParam();
  util::Rng rng(100 + dims);
  std::vector<Objectives> front;
  for (int i = 0; i < 12; ++i) {
    Objectives p(dims);
    for (int d = 0; d < dims; ++d) p[d] = rng.uniform(0.0, 1.0);
    front.push_back(p);
  }
  Objectives ref(dims, 1.0);
  const double exact = hypervolume(front, ref);

  // Monte-Carlo: fraction of the unit cube dominated by some point.
  const int samples = 200000;
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    Objectives x(dims);
    for (int d = 0; d < dims; ++d) x[d] = rng.uniform(0.0, 1.0);
    for (const Objectives& p : front) {
      bool dominated = true;
      for (int d = 0; d < dims; ++d) {
        if (p[d] > x[d]) {
          dominated = false;
          break;
        }
      }
      if (dominated) {
        ++hits;
        break;
      }
    }
  }
  const double estimate = static_cast<double>(hits) / samples;
  EXPECT_NEAR(exact, estimate, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypervolumeMonteCarloTest,
                         ::testing::Values(2, 3, 4, 5));

// --- common_reference ---------------------------------------------------------

TEST(CommonReferenceTest, TakesComponentwiseMaxWithMargin) {
  const std::vector<std::vector<Objectives>> fronts{
      {{1.0, 5.0}, {2.0, 4.0}}, {{3.0, 1.0}}};
  const Objectives ref = common_reference(fronts, 0.1);
  EXPECT_NEAR(ref[0], 3.0 * 1.1, 1e-12);
  EXPECT_NEAR(ref[1], 5.0 * 1.1, 1e-12);
}

TEST(CommonReferenceTest, EveryPointContributesUnderReference) {
  const std::vector<std::vector<Objectives>> fronts{
      {{1.0, 5.0}, {3.0, 1.0}, {2.0, 2.0}}};
  const Objectives ref = common_reference(fronts);
  for (const Objectives& p : fronts[0]) {
    EXPECT_GT(hypervolume({p}, ref), 0.0);
  }
}

TEST(CommonReferenceTest, HandlesNegativeCoordinates) {
  // Negated-MTTF objectives are negative; the margin must still inflate
  // toward worse (greater) values.
  const std::vector<std::vector<Objectives>> fronts{{{-10.0, 1.0}}};
  const Objectives ref = common_reference(fronts, 0.1);
  EXPECT_GT(ref[0], -10.0);
  EXPECT_GT(hypervolume({{-10.0, 1.0}}, ref), 0.0);
}

TEST(CommonReferenceTest, EmptyThrows) {
  EXPECT_THROW(common_reference({}), std::invalid_argument);
  EXPECT_THROW(common_reference({{}, {}}), std::invalid_argument);
}

// --- hypervolume_gain_percent ----------------------------------------------------

TEST(HypervolumeGainTest, ComputesRelativeImprovement) {
  const std::vector<Objectives> base{{2.0, 2.0}};
  const std::vector<Objectives> better{{1.0, 1.0}};
  const Objectives ref{3.0, 3.0};
  // hv(base) = 1, hv(better) = 4 -> +300%.
  EXPECT_NEAR(hypervolume_gain_percent(better, base, ref), 300.0, 1e-9);
  EXPECT_NEAR(hypervolume_gain_percent(base, base, ref), 0.0, 1e-12);
}

}  // namespace
}  // namespace clrearly::moea
