#include "moea/indicators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace clrearly::moea {
namespace {

const std::vector<Objectives> kStaircase{
    {1.0, 4.0}, {2.0, 3.0}, {3.0, 2.0}, {4.0, 1.0}};

TEST(ObjectiveDistanceTest, EuclideanNorm) {
  EXPECT_DOUBLE_EQ(objective_distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(objective_distance({1.0}, {1.0}), 0.0);
  EXPECT_THROW(objective_distance({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(GenerationalDistanceTest, ZeroWhenOnReference) {
  EXPECT_DOUBLE_EQ(generational_distance(kStaircase, kStaircase), 0.0);
  const std::vector<Objectives> subset{{2.0, 3.0}};
  EXPECT_DOUBLE_EQ(generational_distance(subset, kStaircase), 0.0);
}

TEST(GenerationalDistanceTest, MeasuresMeanNearestDistance) {
  const std::vector<Objectives> shifted{{1.0, 5.0}, {2.0, 4.0}};
  // Each point is exactly 1.0 above its reference twin.
  EXPECT_DOUBLE_EQ(generational_distance(shifted, kStaircase), 1.0);
}

TEST(GenerationalDistanceTest, EmptyInputsRejected) {
  EXPECT_THROW(generational_distance({}, kStaircase), std::invalid_argument);
  EXPECT_THROW(generational_distance(kStaircase, {}), std::invalid_argument);
}

TEST(IgdTest, PenalizesPoorCoverage) {
  // A front collapsed to one corner covers the reference badly even though
  // its GD is zero.
  const std::vector<Objectives> corner{{1.0, 4.0}};
  EXPECT_DOUBLE_EQ(generational_distance(corner, kStaircase), 0.0);
  EXPECT_GT(inverted_generational_distance(corner, kStaircase), 1.0);
  // The full reference covers itself perfectly.
  EXPECT_DOUBLE_EQ(inverted_generational_distance(kStaircase, kStaircase),
                   0.0);
}

TEST(EpsilonIndicatorTest, ZeroOrNegativeWhenCovering) {
  EXPECT_LE(epsilon_indicator(kStaircase, kStaircase), 0.0);
  const std::vector<Objectives> better{
      {0.5, 3.5}, {1.5, 2.5}, {2.5, 1.5}, {3.5, 0.5}};
  EXPECT_DOUBLE_EQ(epsilon_indicator(better, kStaircase), -0.5);
}

TEST(EpsilonIndicatorTest, MeasuresWorstShift) {
  const std::vector<Objectives> shifted{
      {1.5, 4.5}, {2.5, 3.5}, {3.5, 2.5}, {4.5, 1.5}};
  EXPECT_DOUBLE_EQ(epsilon_indicator(shifted, kStaircase), 0.5);
}

TEST(CoverageTest, FullAndPartialCoverage) {
  const std::vector<Objectives> dominating{{0.5, 0.5}};
  EXPECT_DOUBLE_EQ(coverage(dominating, kStaircase), 1.0);
  EXPECT_DOUBLE_EQ(coverage(kStaircase, dominating), 0.0);

  const std::vector<Objectives> half{{1.0, 4.0}, {2.0, 3.0}};
  EXPECT_DOUBLE_EQ(coverage(half, kStaircase), 0.5);  // covers its two twins
}

TEST(CoverageTest, SelfCoverageIsOne) {
  // Weak domination: every point covers itself.
  EXPECT_DOUBLE_EQ(coverage(kStaircase, kStaircase), 1.0);
}

TEST(CoverageTest, EmptySecondSetRejected) {
  EXPECT_THROW(coverage(kStaircase, {}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(coverage({}, kStaircase), 0.0);
}

TEST(SpreadTest, UniformFrontHasZeroDelta) {
  EXPECT_NEAR(spread_delta(kStaircase), 0.0, 1e-12);
}

TEST(SpreadTest, ClusteredFrontHasPositiveDelta) {
  const std::vector<Objectives> clustered{
      {1.0, 4.0}, {1.1, 3.9}, {1.2, 3.8}, {4.0, 1.0}};
  EXPECT_GT(spread_delta(clustered), 0.5);
}

TEST(SpreadTest, Validation) {
  EXPECT_THROW(spread_delta({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(spread_delta({{1.0, 2.0, 3.0}, {2.0, 1.0, 3.0}}),
               std::invalid_argument);
  // Coincident points: delta defined as 0.
  EXPECT_DOUBLE_EQ(spread_delta({{1.0, 1.0}, {1.0, 1.0}}), 0.0);
}

}  // namespace
}  // namespace clrearly::moea
