#include "moea/nsga2.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "moea/hypervolume.hpp"

namespace clrearly::moea {
namespace {

// Test genome: a vector of doubles in [0, 1].
using RealGenome = std::vector<double>;

Nsga2Ops<RealGenome> real_ops(
    std::size_t dims, std::function<Evaluation(const RealGenome&)> eval) {
  Nsga2Ops<RealGenome> ops;
  ops.create = [dims](util::Rng& rng) {
    RealGenome g(dims);
    for (double& x : g) x = rng.uniform();
    return g;
  };
  ops.crossover = [](const RealGenome& a, const RealGenome& b, util::Rng& rng) {
    RealGenome ca = a, cb = b;
    const std::size_t cut = rng.index(a.size() + 1);
    for (std::size_t i = cut; i < a.size(); ++i) std::swap(ca[i], cb[i]);
    return std::make_pair(ca, cb);
  };
  ops.mutate = [](RealGenome& g, util::Rng& rng) {
    g[rng.index(g.size())] = rng.uniform();
  };
  ops.evaluate = std::move(eval);
  return ops;
}

// --- Parameter validation -------------------------------------------------------

TEST(Nsga2ParamsTest, Validation) {
  Nsga2Params p;
  EXPECT_NO_THROW(p.validate());
  p.population_size = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Nsga2Params{};
  p.tournament_k = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Nsga2Params{};
  p.crossover_prob = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Nsga2Test, MissingCallbacksRejected) {
  Nsga2Params params;
  Nsga2Ops<RealGenome> ops;  // all empty
  util::Rng rng(1);
  EXPECT_THROW(run_nsga2(params, ops, rng), std::invalid_argument);
}

// --- Convergence on ZDT1-style bi-objective problem ------------------------------
// f1 = x0; f2 = g * (1 - sqrt(x0/g)), g = 1 + 9 * mean(x1..). True front:
// x1.. = 0, f2 = 1 - sqrt(f1).

Evaluation zdt1(const RealGenome& x) {
  double tail = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) tail += x[i];
  const double g = 1.0 + 9.0 * tail / static_cast<double>(x.size() - 1);
  Evaluation e;
  const double f1 = x[0];
  e.objectives = {f1, g * (1.0 - std::sqrt(f1 / g))};
  return e;
}

TEST(Nsga2Test, ConvergesTowardZdt1Front) {
  Nsga2Params params;
  params.population_size = 60;
  params.generations = 80;
  params.mutation_prob = 0.3;
  util::Rng rng(7);
  const auto result = run_nsga2(params, real_ops(6, zdt1), rng);

  ASSERT_FALSE(result.front.empty());
  // Every front point should be close to the analytical front
  // f2 = 1 - sqrt(f1) (within a modest slack for a small run).
  double worst_gap = 0.0;
  for (const Objectives& p : result.front_objectives()) {
    const double ideal_f2 = 1.0 - std::sqrt(p[0]);
    worst_gap = std::max(worst_gap, p[1] - ideal_f2);
  }
  EXPECT_LT(worst_gap, 0.35);

  // Decent spread across f1.
  double min_f1 = 1.0, max_f1 = 0.0;
  for (const Objectives& p : result.front_objectives()) {
    min_f1 = std::min(min_f1, p[0]);
    max_f1 = std::max(max_f1, p[0]);
  }
  EXPECT_LT(min_f1, 0.15);
  EXPECT_GT(max_f1, 0.6);
}

TEST(Nsga2Test, MoreGenerationsImproveHypervolume) {
  Nsga2Params short_run;
  short_run.population_size = 40;
  short_run.generations = 5;
  Nsga2Params long_run = short_run;
  long_run.generations = 60;

  util::Rng rng_a(3), rng_b(3);
  const auto quick = run_nsga2(short_run, real_ops(8, zdt1), rng_a);
  const auto deep = run_nsga2(long_run, real_ops(8, zdt1), rng_b);

  const Objectives ref{1.1, 11.0};
  EXPECT_GT(hypervolume(deep.front_objectives(), ref),
            hypervolume(quick.front_objectives(), ref));
}

TEST(Nsga2Test, DeterministicForSeed) {
  Nsga2Params params;
  params.population_size = 20;
  params.generations = 10;
  util::Rng rng_a(9), rng_b(9);
  const auto a = run_nsga2(params, real_ops(4, zdt1), rng_a);
  const auto b = run_nsga2(params, real_ops(4, zdt1), rng_b);
  ASSERT_EQ(a.front.size(), b.front.size());
  EXPECT_EQ(a.front_objectives(), b.front_objectives());
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Nsga2Test, EvaluationCountMatchesSchedule) {
  Nsga2Params params;
  params.population_size = 20;
  params.generations = 10;
  util::Rng rng(2);
  const auto result = run_nsga2(params, real_ops(3, zdt1), rng);
  // init + generations * offspring.
  EXPECT_EQ(result.evaluations, 20u + 10u * 20u);
  EXPECT_EQ(result.population.size(), 20u);
}

// --- Constraint handling -----------------------------------------------------------

TEST(Nsga2Test, ConstraintsSteerToFeasibleRegion) {
  // Minimize (x0, x1) subject to x0 + x1 >= 1 (violation when below).
  auto eval = [](const RealGenome& x) {
    Evaluation e;
    e.objectives = {x[0], x[1]};
    e.violation = std::max(0.0, 1.0 - (x[0] + x[1]));
    return e;
  };
  Nsga2Params params;
  params.population_size = 50;
  params.generations = 60;
  params.mutation_prob = 0.3;
  util::Rng rng(5);
  const auto result = run_nsga2(params, real_ops(2, eval), rng);

  ASSERT_FALSE(result.front.empty());
  for (std::size_t i : result.front) {
    EXPECT_LE(result.population[i].eval.violation, 1e-9);
    const auto& obj = result.population[i].eval.objectives;
    // The feasible optimum is the line x0 + x1 = 1.
    EXPECT_NEAR(obj[0] + obj[1], 1.0, 0.15);
  }
}

// --- Seeding -----------------------------------------------------------------------

TEST(Nsga2Test, SeedsSurviveWhenOptimal) {
  // Single-objective-ish: minimize sum. Seed with the global optimum; it
  // must remain in the final front.
  auto eval = [](const RealGenome& x) {
    Evaluation e;
    double sum = 0.0;
    for (double v : x) sum += v;
    e.objectives = {sum, sum};
    return e;
  };
  Nsga2Params params;
  params.population_size = 20;
  params.generations = 5;
  util::Rng rng(6);
  std::vector<RealGenome> seeds{RealGenome(4, 0.0)};
  const auto result = run_nsga2(params, real_ops(4, eval), rng, seeds);
  double best = 1e9;
  for (const Objectives& p : result.front_objectives()) {
    best = std::min(best, p[0]);
  }
  EXPECT_EQ(best, 0.0);
}

TEST(Nsga2Test, SeedingAcceleratesConvergence) {
  Nsga2Params params;
  params.population_size = 30;
  params.generations = 6;  // deliberately short: seeding must matter

  // Near-optimal ZDT1 seeds.
  std::vector<RealGenome> seeds;
  for (int i = 0; i < 10; ++i) {
    RealGenome g(8, 0.0);
    g[0] = static_cast<double>(i) / 9.0;
    seeds.push_back(g);
  }
  util::Rng rng_seeded(4), rng_cold(4);
  const auto seeded = run_nsga2(params, real_ops(8, zdt1), rng_seeded, seeds);
  const auto cold = run_nsga2(params, real_ops(8, zdt1), rng_cold);

  const Objectives ref{1.1, 11.0};
  EXPECT_GT(hypervolume(seeded.front_objectives(), ref),
            hypervolume(cold.front_objectives(), ref));
}

// --- External archive ----------------------------------------------------------------

TEST(Nsga2Test, ArchiveDisabledByDefault) {
  Nsga2Params params;
  params.population_size = 20;
  params.generations = 5;
  util::Rng rng(10);
  const auto result = run_nsga2(params, real_ops(4, zdt1), rng);
  EXPECT_TRUE(result.archive.empty());
}

TEST(Nsga2Test, ArchiveNeverWorseThanFinalFront) {
  Nsga2Params params;
  params.population_size = 30;
  params.generations = 20;
  params.archive_size = 200;
  util::Rng rng(11);
  const auto result = run_nsga2(params, real_ops(6, zdt1), rng);

  ASSERT_FALSE(result.archive.empty());
  const Objectives ref{1.1, 11.0};
  EXPECT_GE(hypervolume(result.archive_objectives(), ref),
            hypervolume(result.front_objectives(), ref) - 1e-12);
}

TEST(Nsga2Test, ArchiveIsMutuallyNonDominatedAndFeasible) {
  auto eval = [](const RealGenome& x) {
    Evaluation e;
    e.objectives = {x[0], x[1]};
    e.violation = std::max(0.0, 0.5 - x[0]);  // x0 >= 0.5 required
    return e;
  };
  Nsga2Params params;
  params.population_size = 30;
  params.generations = 15;
  params.archive_size = 100;
  util::Rng rng(12);
  const auto result = run_nsga2(params, real_ops(2, eval), rng);

  for (const auto& a : result.archive) {
    EXPECT_LE(a.eval.violation, 0.0);
    for (const auto& b : result.archive) {
      if (&a == &b) continue;
      EXPECT_FALSE(dominates(a.eval.objectives, b.eval.objectives));
    }
  }
}

TEST(Nsga2Test, ArchiveRespectsCapacity) {
  Nsga2Params params;
  params.population_size = 40;
  params.generations = 30;
  params.archive_size = 10;
  util::Rng rng(13);
  const auto result = run_nsga2(params, real_ops(6, zdt1), rng);
  EXPECT_LE(result.archive.size(), 10u);
  EXPECT_GE(result.archive.size(), 2u);
}

// --- Survivor selection / ranking helpers -------------------------------------------

TEST(RankCrowdingTest, RanksMatchFronts) {
  const std::vector<Objectives> points{{1.0, 1.0}, {2.0, 2.0}, {0.5, 3.0}};
  const auto rc = rank_and_crowding(points, {0.0, 0.0, 0.0});
  EXPECT_EQ(rc.rank[0], 0u);
  EXPECT_EQ(rc.rank[1], 1u);
  EXPECT_EQ(rc.rank[2], 0u);
}

TEST(SurvivorSelectionTest, KeepsWholeBetterFronts) {
  const std::vector<Objectives> points{
      {1.0, 1.0}, {5.0, 5.0}, {0.5, 2.0}, {6.0, 6.0}};
  const auto keep = survivor_selection(points, {0, 0, 0, 0}, 2);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_TRUE((keep[0] == 0 && keep[1] == 2) || (keep[0] == 2 && keep[1] == 0));
}

TEST(SurvivorSelectionTest, PartialFrontPrefersSpread) {
  // Front of 4 incomparable points; keep 3. Index 1 sits between close
  // neighbors on both sides (smallest crowding distance) and must be the
  // one dropped; the boundary points (0, 3) are infinite-distance keepers.
  const std::vector<Objectives> points{
      {0.0, 10.0}, {1.0, 9.0}, {1.1, 8.9}, {10.0, 0.0}};
  const auto keep = survivor_selection(points, {0, 0, 0, 0}, 3);
  ASSERT_EQ(keep.size(), 3u);
  for (std::size_t i : keep) {
    EXPECT_NE(i, 1u);
  }
}

TEST(SurvivorSelectionTest, TargetLargerThanPoolThrows) {
  EXPECT_THROW(survivor_selection({{1.0}}, {0.0}, 2), std::invalid_argument);
}

}  // namespace
}  // namespace clrearly::moea
