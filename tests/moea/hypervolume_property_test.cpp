// Property tests on the hypervolume indicator and its interaction with
// Pareto dominance — invariants any correct implementation must satisfy,
// checked over randomized fronts.
#include <gtest/gtest.h>

#include "moea/hypervolume.hpp"
#include "moea/pareto.hpp"
#include "util/rng.hpp"

namespace clrearly::moea {
namespace {

std::vector<Objectives> random_front(std::size_t n, std::size_t dims,
                                     util::Rng& rng) {
  std::vector<Objectives> front;
  for (std::size_t i = 0; i < n; ++i) {
    Objectives p(dims);
    for (double& x : p) x = rng.uniform(0.0, 1.0);
    front.push_back(std::move(p));
  }
  return front;
}

struct HvShape {
  std::size_t points;
  std::size_t dims;
  std::uint64_t seed;
};

class HypervolumeProperty : public ::testing::TestWithParam<HvShape> {};

TEST_P(HypervolumeProperty, AddingPointsNeverDecreasesVolume) {
  util::Rng rng(GetParam().seed);
  auto front = random_front(GetParam().points, GetParam().dims, rng);
  const Objectives ref(GetParam().dims, 1.05);

  std::vector<Objectives> growing;
  double prev = 0.0;
  for (const Objectives& p : front) {
    growing.push_back(p);
    const double hv = hypervolume(growing, ref);
    EXPECT_GE(hv, prev - 1e-12);
    prev = hv;
  }
}

TEST_P(HypervolumeProperty, DominatedPointsContributeNothing) {
  util::Rng rng(GetParam().seed + 10);
  const auto front = random_front(GetParam().points, GetParam().dims, rng);
  const Objectives ref(GetParam().dims, 1.05);

  const double full = hypervolume(front, ref);
  const double filtered = hypervolume(pareto_filter(front), ref);
  EXPECT_NEAR(full, filtered, 1e-10);
}

TEST_P(HypervolumeProperty, VolumeBoundedByEnclosingBox) {
  util::Rng rng(GetParam().seed + 20);
  const auto front = random_front(GetParam().points, GetParam().dims, rng);
  const Objectives ref(GetParam().dims, 1.05);
  // Points live in [0,1]^d, ref at 1.05: volume can never exceed 1.05^d.
  double bound = 1.0;
  for (std::size_t d = 0; d < GetParam().dims; ++d) bound *= 1.05;
  const double hv = hypervolume(front, ref);
  EXPECT_GE(hv, 0.0);
  EXPECT_LE(hv, bound + 1e-12);
}

TEST_P(HypervolumeProperty, TranslationInvariance) {
  // Shifting every point and the reference by the same offset preserves the
  // volume exactly.
  util::Rng rng(GetParam().seed + 30);
  auto front = random_front(GetParam().points, GetParam().dims, rng);
  Objectives ref(GetParam().dims, 1.05);
  const double base = hypervolume(front, ref);

  const double offset = rng.uniform(-5.0, 5.0);
  for (Objectives& p : front) {
    for (double& x : p) x += offset;
  }
  for (double& r : ref) r += offset;
  EXPECT_NEAR(hypervolume(front, ref), base, 1e-9);
}

TEST_P(HypervolumeProperty, PermutationInvariance) {
  util::Rng rng(GetParam().seed + 40);
  auto front = random_front(GetParam().points, GetParam().dims, rng);
  const Objectives ref(GetParam().dims, 1.05);
  const double base = hypervolume(front, ref);
  rng.shuffle(front);
  EXPECT_NEAR(hypervolume(front, ref), base, 1e-10);
}

TEST_P(HypervolumeProperty, StrictlyBetterFrontHasLargerVolume) {
  util::Rng rng(GetParam().seed + 50);
  const auto front = random_front(GetParam().points, GetParam().dims, rng);
  const Objectives ref(GetParam().dims, 1.05);

  std::vector<Objectives> improved = front;
  for (Objectives& p : improved) {
    for (double& x : p) x *= 0.8;  // strictly closer to the ideal
  }
  EXPECT_GT(hypervolume(improved, ref), hypervolume(front, ref));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HypervolumeProperty,
    ::testing::Values(HvShape{5, 2, 1}, HvShape{20, 2, 2}, HvShape{60, 2, 3},
                      HvShape{10, 3, 4}, HvShape{25, 3, 5},
                      HvShape{12, 4, 6}, HvShape{10, 5, 7}));

}  // namespace
}  // namespace clrearly::moea
