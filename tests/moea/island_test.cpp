#include "moea/island.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "moea/nsga2.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::moea {
namespace {

using RealGenome = std::vector<double>;

Nsga2Ops<RealGenome> real_ops(
    std::size_t dims, std::function<Evaluation(const RealGenome&)> eval) {
  Nsga2Ops<RealGenome> ops;
  ops.create = [dims](util::Rng& rng) {
    RealGenome g(dims);
    for (double& x : g) x = rng.uniform();
    return g;
  };
  ops.crossover = [](const RealGenome& a, const RealGenome& b, util::Rng& rng) {
    RealGenome ca = a, cb = b;
    const std::size_t cut = rng.index(a.size() + 1);
    for (std::size_t i = cut; i < a.size(); ++i) std::swap(ca[i], cb[i]);
    return std::make_pair(ca, cb);
  };
  ops.mutate = [](RealGenome& g, util::Rng& rng) {
    g[rng.index(g.size())] = rng.uniform();
  };
  ops.evaluate = std::move(eval);
  return ops;
}

Evaluation zdt1(const RealGenome& x) {
  double tail = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) tail += x[i];
  const double g = 1.0 + 9.0 * tail / static_cast<double>(x.size() - 1);
  Evaluation e;
  const double f1 = x[0];
  e.objectives = {f1, g * (1.0 - std::sqrt(f1 / g))};
  return e;
}

// --- Parameter validation ---------------------------------------------------

TEST(IslandParamsTest, Validation) {
  IslandParams p;
  EXPECT_NO_THROW(p.validate());
  p.islands = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = IslandParams{};
  p.migration_interval = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  // migration_size 0 is legal: islands evolve fully independently.
  p = IslandParams{};
  p.migration_size = 0;
  EXPECT_NO_THROW(p.validate());
}

TEST(IslandTest, ShardingTooSmallThrows) {
  Nsga2Params ga;
  ga.population_size = 4;
  ga.generations = 2;
  IslandParams island;
  island.islands = 3;  // shares of 2/1/1 — below the 2-member minimum
  util::Rng rng(1);
  EXPECT_THROW(run_island_nsga2(ga, island, real_ops(4, zdt1), rng),
               std::invalid_argument);
}

// --- islands == 1 degrades to the plain path bit for bit --------------------

TEST(IslandTest, Islands1BitIdenticalToRunNsga2) {
  Nsga2Params ga;
  ga.population_size = 24;
  ga.generations = 12;
  const auto ops = real_ops(6, zdt1);

  util::Rng direct_rng(17);
  const auto direct = run_nsga2(ga, ops, direct_rng);

  IslandParams island;  // islands == 1
  util::Rng island_rng(17);
  const auto via_island = run_island_nsga2(ga, island, ops, island_rng);

  EXPECT_EQ(direct.evaluations, via_island.evaluations);
  EXPECT_EQ(direct.front_objectives(), via_island.front_objectives());
  ASSERT_EQ(direct.population.size(), via_island.population.size());
  for (std::size_t i = 0; i < direct.population.size(); ++i) {
    EXPECT_EQ(direct.population[i].genome, via_island.population[i].genome);
  }
}

// --- Determinism ------------------------------------------------------------

TEST(IslandTest, DeterministicAcrossRepeatedRuns) {
  Nsga2Params ga;
  ga.population_size = 30;
  ga.generations = 15;
  IslandParams island;
  island.islands = 3;
  island.migration_interval = 5;
  island.migration_size = 2;
  const auto ops = real_ops(6, zdt1);

  util::Rng rng_a(23), rng_b(23);
  const auto a = run_island_nsga2(ga, island, ops, rng_a);
  const auto b = run_island_nsga2(ga, island, ops, rng_b);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.front_objectives(), b.front_objectives());
  ASSERT_EQ(a.population.size(), b.population.size());
  for (std::size_t i = 0; i < a.population.size(); ++i) {
    EXPECT_EQ(a.population[i].genome, b.population[i].genome);
  }
}

TEST(IslandTest, ThreadCountInvariant) {
  Nsga2Params ga;
  ga.population_size = 30;
  ga.generations = 10;
  IslandParams island;
  island.islands = 3;
  island.migration_interval = 4;
  island.migration_size = 2;
  const auto ops = real_ops(6, zdt1);

  util::set_thread_count(1);
  util::Rng rng_serial(31);
  const auto serial = run_island_nsga2(ga, island, ops, rng_serial);

  util::set_thread_count(4);
  util::Rng rng_parallel(31);
  const auto parallel = run_island_nsga2(ga, island, ops, rng_parallel);
  util::set_thread_count(0);  // restore the hardware default

  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  EXPECT_EQ(serial.front_objectives(), parallel.front_objectives());
  ASSERT_EQ(serial.population.size(), parallel.population.size());
  for (std::size_t i = 0; i < serial.population.size(); ++i) {
    EXPECT_EQ(serial.population[i].genome, parallel.population[i].genome);
  }
}

// --- Budget and progress contract -------------------------------------------

TEST(IslandTest, EvaluationBudgetMatchesSinglePopulation) {
  Nsga2Params ga;
  ga.population_size = 32;
  ga.generations = 10;
  const auto ops = real_ops(5, zdt1);

  util::Rng rng_single(41);
  const auto single = run_nsga2(ga, ops, rng_single);

  IslandParams island;
  island.islands = 4;
  island.migration_interval = 3;
  island.migration_size = 2;
  util::Rng rng_island(41);
  const auto sharded = run_island_nsga2(ga, island, ops, rng_island);

  // Migration copies evaluated individuals, it never re-evaluates, so the
  // logical budget is identical: init + generations * population.
  EXPECT_EQ(single.evaluations, sharded.evaluations);
  EXPECT_EQ(sharded.evaluations, 32u + 10u * 32u);
  EXPECT_EQ(sharded.population.size(), 32u);
}

TEST(IslandTest, EpochHookFiresPerEpochAndAfterMerge) {
  Nsga2Params ga;
  ga.population_size = 24;
  ga.generations = 10;
  std::vector<std::size_t> generations_seen;
  std::vector<bool> had_front_points;
  ga.on_generation = [&](const GenerationProgress& progress) {
    generations_seen.push_back(progress.generation);
    had_front_points.push_back(progress.front_points != nullptr &&
                               !progress.front_points->empty());
  };
  IslandParams island;
  island.islands = 3;
  island.migration_interval = 4;
  island.migration_size = 2;
  util::Rng rng(47);
  run_island_nsga2(ga, island, real_ops(5, zdt1), rng);

  // Epoch boundaries at 4 and 8 generations, then the final merge at 10.
  EXPECT_EQ(generations_seen,
            (std::vector<std::size_t>{4, 8, 10}));
  for (bool had : had_front_points) EXPECT_TRUE(had);
}

// --- Migration primitives ----------------------------------------------------

TEST(MigrationTest, EmigrantsStrideSampleTheFeasibleFront) {
  Nsga2Params ga;
  ga.population_size = 40;
  ga.generations = 20;
  util::Rng rng(53);
  Nsga2Engine<RealGenome> engine(ga, real_ops(6, zdt1), rng);
  for (std::size_t g = 0; g < ga.generations; ++g) engine.advance();

  EXPECT_TRUE(engine.emigrants(0).empty());

  const auto out = engine.emigrants(4);
  ASSERT_EQ(out.size(), 4u);
  // Lexicographic stride: sorted by objective vector, starting at the lex
  // smallest, spanning toward the far end instead of clustering.
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].eval.objectives, out[i].eval.objectives);
  }
  EXPECT_LT(out.front().eval.objectives[0], out.back().eval.objectives[0]);

  // Requesting more than the front holds returns the whole front.
  const auto all = engine.emigrants(10 * ga.population_size);
  EXPECT_LE(all.size(), ga.population_size);
  EXPECT_GE(all.size(), out.size());
}

TEST(MigrationTest, ImmigrationKeepsBudgetAndPopulationSize) {
  Nsga2Params ga;
  ga.population_size = 20;
  ga.generations = 10;
  const auto ops = real_ops(5, zdt1);
  util::Rng rng_a(59), rng_b(61);
  Nsga2Engine<RealGenome> home(ga, ops, rng_a);
  Nsga2Engine<RealGenome> away(ga, ops, rng_b);
  for (std::size_t g = 0; g < 5; ++g) {
    home.advance();
    away.advance();
  }

  const std::size_t away_evals = away.evaluations();
  auto migrants = home.emigrants(4);
  ASSERT_FALSE(migrants.empty());
  away.immigrate(std::move(migrants));

  // Immigrants arrive pre-evaluated: no budget spent, and survivor
  // selection keeps the population at its configured size.
  EXPECT_EQ(away.evaluations(), away_evals);
  EXPECT_EQ(away.population().size(), ga.population_size);
  EXPECT_EQ(away.points().size(), ga.population_size);
}

TEST(MigrationTest, ZeroMigrationSizeRunsIndependentIslands) {
  Nsga2Params ga;
  ga.population_size = 24;
  ga.generations = 8;
  IslandParams island;
  island.islands = 3;
  island.migration_interval = 2;
  island.migration_size = 0;
  util::Rng rng(67);
  const auto result = run_island_nsga2(ga, island, real_ops(5, zdt1), rng);
  EXPECT_EQ(result.evaluations, 24u + 8u * 24u);
  EXPECT_FALSE(result.front.empty());
}

// --- Region bias (cone separation) -------------------------------------------

TEST(MigrationTest, RegionBiasRedirectsSearchWithoutFakingFeasibility) {
  // Two engines, same seed: one biased against the low-f1 half of the
  // objective space. The biased engine's population concentrates at high
  // f1, but its emigrants and final front still report true violations.
  Nsga2Params ga;
  ga.population_size = 30;
  ga.generations = 25;
  const auto ops = real_ops(6, zdt1);

  util::Rng rng_plain(71), rng_biased(71);
  Nsga2Engine<RealGenome> plain(ga, ops, rng_plain);
  Nsga2Engine<RealGenome> biased(ga, ops, rng_biased);
  biased.set_region_bias([](const Objectives& objectives) {
    return std::max(0.0, 0.5 - objectives[0]);
  });
  for (std::size_t g = 0; g < ga.generations; ++g) {
    plain.advance();
    biased.advance();
  }

  auto mean_f1 = [](const Nsga2Engine<RealGenome>& engine) {
    double sum = 0.0;
    for (const Objectives& p : engine.points()) sum += p[0];
    return sum / static_cast<double>(engine.points().size());
  };
  EXPECT_GT(mean_f1(biased), mean_f1(plain));

  for (const auto& member : biased.emigrants(8)) {
    EXPECT_EQ(member.eval.violation, 0.0);  // true violation, not the bias
  }
}

}  // namespace
}  // namespace clrearly::moea
