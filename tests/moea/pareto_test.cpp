#include "moea/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::moea {
namespace {

TEST(DominatesTest, BasicCases) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));  // weak + one strict
  EXPECT_FALSE(dominates({1.0, 2.0}, {1.0, 2.0}));  // equal: no strict gain
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // incomparable
  EXPECT_FALSE(dominates({2.0, 2.0}, {1.0, 1.0}));
}

TEST(DominatesTest, MismatchedVectorsThrow) {
  EXPECT_THROW(dominates({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(dominates({}, {}), std::invalid_argument);
}

TEST(ConstrainedDominatesTest, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(constrained_dominates({9.0, 9.0}, 0.0, {1.0, 1.0}, 0.5));
  EXPECT_FALSE(constrained_dominates({1.0, 1.0}, 0.5, {9.0, 9.0}, 0.0));
}

TEST(ConstrainedDominatesTest, LessViolationWinsAmongInfeasible) {
  EXPECT_TRUE(constrained_dominates({9.0, 9.0}, 0.1, {1.0, 1.0}, 0.5));
  EXPECT_FALSE(constrained_dominates({1.0, 1.0}, 0.5, {9.0, 9.0}, 0.1));
  // Equal violation: neither dominates by violation alone.
  EXPECT_FALSE(constrained_dominates({9.0, 9.0}, 0.5, {1.0, 1.0}, 0.5));
}

TEST(ConstrainedDominatesTest, ParetoDecidesAmongFeasible) {
  EXPECT_TRUE(constrained_dominates({1.0, 1.0}, 0.0, {2.0, 2.0}, 0.0));
  EXPECT_FALSE(constrained_dominates({1.0, 3.0}, 0.0, {2.0, 2.0}, 0.0));
}

TEST(ParetoFrontTest, ExtractsNonDominated) {
  const std::vector<Objectives> points{
      {1.0, 4.0}, {2.0, 3.0}, {3.0, 3.0}, {4.0, 1.0}, {2.5, 2.5}};
  const auto front = pareto_front_indices(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3, 4}));
}

TEST(ParetoFrontTest, DuplicatesAllRetained) {
  const std::vector<Objectives> points{{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto front = pareto_front_indices(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFrontTest, SinglePointIsItsOwnFront) {
  EXPECT_EQ(pareto_front_indices({{5.0, 5.0}}).size(), 1u);
  EXPECT_TRUE(pareto_front_indices({}).empty());
}

TEST(ParetoFilterTest, ReturnsPointsInOrder) {
  const std::vector<Objectives> points{{3.0, 1.0}, {2.0, 2.0}, {9.0, 9.0}};
  const auto filtered = pareto_filter(points);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered[0], (Objectives{3.0, 1.0}));
  EXPECT_EQ(filtered[1], (Objectives{2.0, 2.0}));
}

TEST(NonDominatedSortTest, LayersCorrectly) {
  // Front 0: (1,1); front 1: (2,2); front 2: (3,3).
  const std::vector<Objectives> points{{3.0, 3.0}, {1.0, 1.0}, {2.0, 2.0}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{0}));
}

TEST(NonDominatedSortTest, IncomparablePointsShareAFront) {
  const std::vector<Objectives> points{{1.0, 4.0}, {4.0, 1.0}, {2.0, 3.0}};
  const auto fronts = non_dominated_sort(points);
  ASSERT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 3u);
}

TEST(NonDominatedSortTest, ConstrainedPutsInfeasibleLast) {
  const std::vector<Objectives> points{{1.0, 1.0}, {5.0, 5.0}, {2.0, 2.0}};
  const std::vector<double> violations{0.7, 0.0, 0.1};
  const auto fronts = non_dominated_sort(points, violations);
  // Feasible (5,5) first; then violation 0.1; then 0.7.
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(fronts[1], (std::vector<std::size_t>{2}));
  EXPECT_EQ(fronts[2], (std::vector<std::size_t>{0}));
}

TEST(NonDominatedSortTest, ViolationSizeMismatchThrows) {
  EXPECT_THROW(non_dominated_sort({{1.0}}, {0.0, 0.0}), std::invalid_argument);
}

TEST(NonDominatedSortTest, EveryPointAppearsExactlyOnce) {
  util::Rng rng(6);
  std::vector<Objectives> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0),
                      rng.uniform(0.0, 10.0)});
  }
  const auto fronts = non_dominated_sort(points);
  std::vector<bool> seen(points.size(), false);
  for (const auto& front : fronts) {
    for (std::size_t i : front) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(NonDominatedSortTest, FrontRanksAreConsistentWithDominance) {
  util::Rng rng(7);
  std::vector<Objectives> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  const auto fronts = non_dominated_sort(points);
  std::vector<std::size_t> rank(points.size());
  for (std::size_t f = 0; f < fronts.size(); ++f) {
    for (std::size_t i : fronts[f]) rank[i] = f;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (dominates(points[i], points[j])) {
        EXPECT_LT(rank[i], rank[j]);
      }
    }
  }
}

TEST(CrowdingDistanceTest, BoundariesAreInfinite) {
  const std::vector<Objectives> points{
      {1.0, 5.0}, {2.0, 4.0}, {3.0, 3.0}, {4.0, 2.0}, {5.0, 1.0}};
  const std::vector<std::size_t> front{0, 1, 2, 3, 4};
  const auto crowd = crowding_distance(points, front);
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[4]));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(crowd[i]));
    EXPECT_GT(crowd[i], 0.0);
  }
}

TEST(CrowdingDistanceTest, DenserPointsGetSmallerDistance) {
  // Points on a line; the middle point of the tight pair is most crowded.
  const std::vector<Objectives> points{
      {0.0, 10.0}, {1.0, 9.0}, {1.2, 8.8}, {10.0, 0.0}};
  const auto crowd = crowding_distance(points, {0, 1, 2, 3});
  EXPECT_LT(crowd[1], crowd[2]);
}

TEST(CrowdingDistanceTest, DegenerateObjectiveHandled) {
  // All points share objective 1: its span is zero and contributes nothing.
  const std::vector<Objectives> points{{1.0, 5.0}, {2.0, 5.0}, {3.0, 5.0}};
  const auto crowd = crowding_distance(points, {0, 1, 2});
  EXPECT_TRUE(std::isinf(crowd[0]));
  EXPECT_TRUE(std::isinf(crowd[2]));
  EXPECT_TRUE(std::isfinite(crowd[1]));
}

TEST(CrowdingDistanceTest, EmptyAndSingletonFronts) {
  const std::vector<Objectives> points{{1.0, 1.0}};
  EXPECT_TRUE(crowding_distance(points, {}).empty());
  const auto single = crowding_distance(points, {0});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_TRUE(std::isinf(single[0]));
}

}  // namespace
}  // namespace clrearly::moea
