#include "moea/operators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace clrearly::moea {
namespace {

TEST(IsPermutationTest, Detects) {
  EXPECT_TRUE(is_permutation({0, 1, 2}));
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_TRUE(is_permutation({}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 3}));
}

TEST(RandomPermutationTest, ValidAndVaried) {
  util::Rng rng(1);
  std::set<Permutation> seen;
  for (int i = 0; i < 20; ++i) {
    const Permutation p = random_permutation(8, rng);
    EXPECT_TRUE(is_permutation(p));
    seen.insert(p);
  }
  EXPECT_GT(seen.size(), 15u);  // 20 draws from 8! rarely collide
}

class OrderCrossoverTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrderCrossoverTest, ChildrenAreValidPermutations) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  for (int trial = 0; trial < 50; ++trial) {
    const Permutation a = random_permutation(n, rng);
    const Permutation b = random_permutation(n, rng);
    const auto [ca, cb] = order_crossover(a, b, rng);
    EXPECT_TRUE(is_permutation(ca));
    EXPECT_TRUE(is_permutation(cb));
    EXPECT_EQ(ca.size(), n);
    EXPECT_EQ(cb.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, OrderCrossoverTest,
                         ::testing::Values(2, 3, 5, 10, 30, 100));

TEST(OrderCrossoverTest, ChildKeepsParentPrefix) {
  // With n = 2 the cut is always 1: child A = [a0, then missing from b].
  const Permutation a{0, 1};
  const Permutation b{1, 0};
  util::Rng rng(5);
  const auto [ca, cb] = order_crossover(a, b, rng);
  EXPECT_EQ(ca[0], 0u);
  EXPECT_EQ(cb[0], 1u);
}

TEST(OrderCrossoverTest, TrivialSizesPassThrough) {
  util::Rng rng(6);
  const auto [ca, cb] = order_crossover({0}, {0}, rng);
  EXPECT_EQ(ca, Permutation{0});
  EXPECT_EQ(cb, Permutation{0});
}

TEST(OrderCrossoverTest, SizeMismatchThrows) {
  util::Rng rng(7);
  EXPECT_THROW(order_crossover({0, 1}, {0, 1, 2}, rng), std::invalid_argument);
}

TEST(SwapMutationTest, SwapsExactlyTwoPositions) {
  util::Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    Permutation p = random_permutation(12, rng);
    const Permutation before = p;
    swap_mutation(p, rng);
    EXPECT_TRUE(is_permutation(p));
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] != before[i]) ++diffs;
    }
    EXPECT_EQ(diffs, 2u);  // two distinct positions always change
  }
}

TEST(SwapMutationTest, TinyPermutationsAreNoops) {
  util::Rng rng(9);
  Permutation empty;
  swap_mutation(empty, rng);
  EXPECT_TRUE(empty.empty());
  Permutation one{0};
  swap_mutation(one, rng);
  EXPECT_EQ(one, Permutation{0});
}

TEST(TwoPointCrossoverTest, SwapsContiguousSegment) {
  util::Rng rng(10);
  for (int trial = 0; trial < 50; ++trial) {
    GeneVector a(10, 1), b(10, 2);
    two_point_crossover(a, b, rng);
    // Each position holds either the original pair or the swapped pair, and
    // changed positions form one contiguous run.
    std::vector<bool> swapped(10);
    for (std::size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((a[i] == 1 && b[i] == 2) || (a[i] == 2 && b[i] == 1));
      swapped[i] = a[i] == 2;
    }
    int transitions = 0;
    for (std::size_t i = 1; i < 10; ++i) {
      if (swapped[i] != swapped[i - 1]) ++transitions;
    }
    EXPECT_LE(transitions, 2);
  }
}

TEST(TwoPointCrossoverTest, PreservesMultiset) {
  util::Rng rng(11);
  GeneVector a{1, 2, 3, 4, 5};
  GeneVector b{6, 7, 8, 9, 10};
  auto all_before = a;
  all_before.insert(all_before.end(), b.begin(), b.end());
  two_point_crossover(a, b, rng);
  auto all_after = a;
  all_after.insert(all_after.end(), b.begin(), b.end());
  std::sort(all_before.begin(), all_before.end());
  std::sort(all_after.begin(), all_after.end());
  EXPECT_EQ(all_before, all_after);
}

TEST(TwoPointCrossoverTest, EmptyAndMismatch) {
  util::Rng rng(12);
  GeneVector empty_a, empty_b;
  EXPECT_NO_THROW(two_point_crossover(empty_a, empty_b, rng));
  GeneVector a(3), b(4);
  EXPECT_THROW(two_point_crossover(a, b, rng), std::invalid_argument);
}

TEST(RandomResetMutationTest, ChangesAtMostOneGeneWithinBounds) {
  util::Rng rng(13);
  const std::vector<std::size_t> cards{4, 1, 7, 2, 9};
  for (int trial = 0; trial < 100; ++trial) {
    GeneVector genes{3, 0, 6, 1, 8};
    const GeneVector before = genes;
    random_reset_mutation(genes, cards, rng);
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      EXPECT_LT(genes[i], cards[i]);
      if (genes[i] != before[i]) ++diffs;
    }
    EXPECT_LE(diffs, 1u);
  }
}

TEST(RandomResetMutationTest, Validation) {
  util::Rng rng(14);
  GeneVector genes{0};
  EXPECT_THROW(random_reset_mutation(genes, {1, 2}, rng),
               std::invalid_argument);
  EXPECT_THROW(random_reset_mutation(genes, {0}, rng), std::invalid_argument);
  GeneVector empty;
  EXPECT_NO_THROW(random_reset_mutation(empty, {}, rng));
}

TEST(TournamentSelectTest, AlwaysPicksBestOfSampled) {
  util::Rng rng(15);
  // Fitness = index (lower better). With k = population size and sampling
  // with replacement, larger k skews strongly toward the best individuals.
  int sum_small_k = 0, sum_large_k = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    sum_small_k += static_cast<int>(tournament_select(
        100, 2, rng, [](std::size_t a, std::size_t b) { return a < b; }));
    sum_large_k += static_cast<int>(tournament_select(
        100, 10, rng, [](std::size_t a, std::size_t b) { return a < b; }));
  }
  EXPECT_LT(sum_large_k, sum_small_k);
}

TEST(TournamentSelectTest, SingleRoundIsUniformDraw) {
  util::Rng rng(16);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    seen.insert(tournament_select(
        4, 1, rng, [](std::size_t, std::size_t) { return false; }));
  }
  EXPECT_EQ(seen.size(), 4u);
}

}  // namespace
}  // namespace clrearly::moea
