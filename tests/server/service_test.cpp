// DseService tests, driving the routing layer in process (no sockets):
// submit -> poll -> result, bit-identical equivalence with the offline flow
// entry points, cross-request cache sharing, spool replay, admission
// control and the error paths.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/dse.hpp"
#include "core/scenario.hpp"
#include "io/serialize.hpp"
#include "server/service.hpp"
#include "util/json.hpp"
#include "util/memo_cache.hpp"

namespace clrearly::server {
namespace {

HttpRequest make_request(std::string method, std::string path,
                         std::string body = "", std::string query = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.body = std::move(body);
  request.query = std::move(query);
  return request;
}

util::JsonValue body_json(const HttpResponse& response) {
  return util::json_parse(response.body);
}

std::string small_job_body(const std::string& flow, int seed,
                           int generations = 4) {
  return std::string(R"({
    "format_version": 1,
    "flow": ")") +
         flow + R"(",
    "seed": )" +
         std::to_string(seed) + R"(,
    "ga": {"population_size": 16, "generations": )" +
         std::to_string(generations) + R"(},
    "application": "sobel"
  })";
}

/// Submit and wait for a terminal state; returns the job id.
std::string run_to_completion(DseService& service, const std::string& body) {
  const HttpResponse submitted =
      service.handle(make_request("POST", "/v1/jobs", body));
  EXPECT_EQ(submitted.status, 202) << submitted.body;
  const std::string id = body_json(submitted).at("id").as_string();
  for (int i = 0; i < 600; ++i) {
    const HttpResponse status =
        service.handle(make_request("GET", "/v1/jobs/" + id));
    const std::string state = body_json(status).at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") {
      EXPECT_EQ(state, "done") << status.body;
      return id;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " did not finish";
  return id;
}

util::JsonValue fetch_result(DseService& service, const std::string& id) {
  const HttpResponse response =
      service.handle(make_request("GET", "/v1/jobs/" + id + "/result"));
  EXPECT_EQ(response.status, 200) << response.body;
  return body_json(response);
}

std::uint64_t cache_field(const util::JsonValue& result, const char* key) {
  return static_cast<std::uint64_t>(result.at("cache").at(key).as_number());
}

TEST(ServiceTest, JobResultMatchesOfflineFlowBitForBit) {
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string id =
      run_to_completion(service, small_job_body("proposed", 1));
  const util::JsonValue result = fetch_result(service, id);

  // The same spec executed through the offline entry points (what
  // `clrearly dse --app sobel --flow proposed --seed 1` runs).
  const io::JobSpec spec = io::job_spec_from_json(
      util::json_parse(small_job_body("proposed", 1)));
  const core::DseMethodology dse(
      spec.application, spec.architecture,
      core::make_condition_analyzer(spec.scenario.environment_factor));
  const core::DseOutcome offline = dse.run_proposed(spec.options());

  const util::JsonArray& front = result.at("front").as_array();
  ASSERT_EQ(front.size(), offline.front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const util::JsonArray& point = front[i].as_array();
    ASSERT_EQ(point.size(), offline.front[i].size());
    for (std::size_t k = 0; k < point.size(); ++k) {
      // Exact equality: JSON doubles are shortest-round-trip.
      EXPECT_EQ(point[k].as_number(), offline.front[i][k])
          << "front[" << i << "][" << k << "]";
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(result.at("evaluations").as_number()),
            offline.evaluations);
}

TEST(ServiceTest, IslandJobMatchesOfflineFlowBitForBit) {
  // A sharded fcCLR job served through the queue must be bit-identical to
  // the same spec through the offline entry points (what `clrearly dse
  // --app sobel --flow fcclr --islands 3 ...` runs) — the island layer
  // keeps the determinism contract across the wire.
  const std::string body = R"({
    "format_version": 1,
    "flow": "fcclr",
    "seed": 5,
    "ga": {"population_size": 18, "generations": 6},
    "islands": {"count": 3, "migration_interval": 2, "migration_size": 2},
    "application": "sobel"
  })";
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string id = run_to_completion(service, body);
  const util::JsonValue result = fetch_result(service, id);

  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(body));
  EXPECT_EQ(spec.island.islands, 3u);
  const core::DseMethodology dse(
      spec.application, spec.architecture,
      core::make_condition_analyzer(spec.scenario.environment_factor));
  const core::DseOutcome offline = dse.run_fcclr(spec.options());

  const util::JsonArray& front = result.at("front").as_array();
  ASSERT_FALSE(front.empty());
  ASSERT_EQ(front.size(), offline.front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const util::JsonArray& point = front[i].as_array();
    ASSERT_EQ(point.size(), offline.front[i].size());
    for (std::size_t k = 0; k < point.size(); ++k) {
      EXPECT_EQ(point[k].as_number(), offline.front[i][k])
          << "front[" << i << "][" << k << "]";
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(result.at("evaluations").as_number()),
            offline.evaluations);
}

TEST(ServiceTest, KResilientJobMatchesOfflineFlowBitForBit) {
  const std::string body = R"({
    "format_version": 1,
    "flow": "kresilient",
    "seed": 3,
    "ga": {"population_size": 16, "generations": 4},
    "resilience": {"max_failures": 1, "mission_hours": 15000},
    "application": "sobel"
  })";
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string id = run_to_completion(service, body);
  const util::JsonValue result = fetch_result(service, id);

  // The same spec through the offline entry points (what
  // `clrearly dse --app sobel --flow kresilient --k 1 ...` runs).
  const io::JobSpec spec = io::job_spec_from_json(util::json_parse(body));
  const core::DseMethodology dse(
      spec.application, spec.architecture,
      core::make_condition_analyzer(spec.scenario.environment_factor));
  const core::DseOutcome offline = dse.run_kresilient(spec.options());

  const util::JsonArray& front = result.at("front").as_array();
  ASSERT_FALSE(front.empty());
  ASSERT_EQ(front.size(), offline.front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const util::JsonArray& point = front[i].as_array();
    ASSERT_EQ(point.size(), offline.front[i].size());
    for (std::size_t k = 0; k < point.size(); ++k) {
      EXPECT_EQ(point[k].as_number(), offline.front[i][k])
          << "front[" << i << "][" << k << "]";
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(result.at("evaluations").as_number()),
            offline.evaluations);

  // A second identical submission reuses the session's resilient problem
  // and answers every evaluation from its fitness cache.
  const std::string again = run_to_completion(service, body);
  const util::JsonValue r2 = fetch_result(service, again);
  EXPECT_GT(cache_field(r2, "fitness_hits"), 0u);
  EXPECT_EQ(r2.at("front"), result.at("front"));
}

TEST(ServiceTest, SecondIdenticalJobHitsTheFitnessCache) {
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string first =
      run_to_completion(service, small_job_body("pfclr", 1));
  const std::string second =
      run_to_completion(service, small_job_body("pfclr", 1));
  const util::JsonValue r1 = fetch_result(service, first);
  const util::JsonValue r2 = fetch_result(service, second);

  // Identical spec + shared session: every evaluation is a cache hit.
  EXPECT_GT(cache_field(r2, "fitness_hits"), 0u);
  EXPECT_EQ(cache_field(r2, "fitness_misses"), 0u);
  EXPECT_EQ(r1.at("front"), r2.at("front"));

  // A different seed shares the session but explores new genomes.
  const std::string third =
      run_to_completion(service, small_job_body("pfclr", 2));
  const util::JsonValue r3 = fetch_result(service, third);
  EXPECT_GT(cache_field(r3, "fitness_misses"), 0u);
  EXPECT_NE(r1.at("front"), r3.at("front"));
}

TEST(ServiceTest, SessionRebuildHitsTheChainCache) {
  // The assertions below are about cache *reuse*; with the process-wide
  // caches disabled (CLREARLY_CACHE=0) there is nothing to reuse.
  if (util::cache_capacity() == 0) {
    GTEST_SKIP() << "caches disabled";
  }
  ServiceOptions options;
  options.workers = 1;
  options.max_sessions = 1;  // force eviction on every model switch
  DseService service(options);

  const std::string cold =
      run_to_completion(service, small_job_body("fcclr", 1));
  (void)fetch_result(service, cold);

  // A different model key (tighter QoS) evicts the sobel session...
  const std::string other_model = R"({
    "format_version": 1, "flow": "fcclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "qos": {"max_makespan_us": 100000000},
    "application": "sobel"
  })";
  run_to_completion(service, other_model);
  EXPECT_EQ(service.sessions().size(), 1u);

  // ...so this job rebuilds the sobel problem from scratch. Its fitness
  // cache is cold again, but every absorbing-chain solve of the table build
  // hits the process-wide chain cache.
  const std::string rebuilt =
      run_to_completion(service, small_job_body("fcclr", 1));
  const util::JsonValue r = fetch_result(service, rebuilt);
  EXPECT_GT(cache_field(r, "fitness_misses"), 0u);
  EXPECT_GT(cache_field(r, "chain_hits"), 0u);
  EXPECT_EQ(cache_field(r, "chain_misses"), 0u);

  // Same bits as the never-evicted run.
  EXPECT_EQ(fetch_result(service, cold).at("front"), r.at("front"));
}

TEST(ServiceTest, SpooledSpecReplaysToTheSpooledResult) {
  ServiceOptions options;
  options.workers = 1;
  options.spool_dir = ::testing::TempDir() + "/service_spool";
  DseService service(options);
  const std::string id =
      run_to_completion(service, small_job_body("proposed", 7));
  const util::JsonValue result = fetch_result(service, id);

  const io::JobSpec replay =
      io::load_job_spec(options.spool_dir + "/" + id + ".spec.json");
  const core::DseMethodology dse(
      replay.application, replay.architecture,
      core::make_condition_analyzer(replay.scenario.environment_factor));
  const core::DseOutcome offline = dse.run_proposed(replay.options());
  const util::JsonArray& front = result.at("front").as_array();
  ASSERT_EQ(front.size(), offline.front.size());
  for (std::size_t i = 0; i < front.size(); ++i) {
    const util::JsonArray& point = front[i].as_array();
    for (std::size_t k = 0; k < point.size(); ++k) {
      EXPECT_EQ(point[k].as_number(), offline.front[i][k]);
    }
  }
}

TEST(ServiceTest, ProgressEventsStreamPerGeneration) {
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string id =
      run_to_completion(service, small_job_body("fcclr", 1, /*generations=*/4));
  const HttpResponse all = service.handle(
      make_request("GET", "/v1/jobs/" + id + "/events"));
  EXPECT_EQ(all.status, 200);
  const util::JsonValue events = body_json(all);
  // One event per generation plus the final-front event.
  ASSERT_EQ(events.at("events").as_array().size(), 5u);
  EXPECT_EQ(events.at("next").as_number(), 5.0);
  const util::JsonValue& last = events.at("events").as_array().back();
  EXPECT_EQ(last.at("generation").as_number(), 4.0);
  EXPECT_EQ(last.at("stage").as_string(), "fcclr");
  EXPECT_GT(last.at("hv_proxy").as_number(), 0.0);

  const HttpResponse tail = service.handle(
      make_request("GET", "/v1/jobs/" + id + "/events", "", "from=3"));
  EXPECT_EQ(body_json(tail).at("events").as_array().size(), 2u);
}

TEST(ServiceTest, AdmissionControlRejectsBeyondQueueDepth) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  DseService service(options);
  // A deliberately long job to occupy the single worker.
  const std::string slow = small_job_body("fcclr", 1, /*generations=*/300);
  const HttpResponse a =
      service.handle(make_request("POST", "/v1/jobs", slow));
  ASSERT_EQ(a.status, 202);
  // Wait until it leaves the queue (is running) so the next submit queues.
  while (service.queue().depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const HttpResponse b =
      service.handle(make_request("POST", "/v1/jobs", slow));
  EXPECT_EQ(b.status, 202);
  const HttpResponse c =
      service.handle(make_request("POST", "/v1/jobs", slow));
  EXPECT_EQ(c.status, 429);

  // The queued job's result is not available yet.
  const std::string queued_id = body_json(b).at("id").as_string();
  const HttpResponse premature = service.handle(
      make_request("GET", "/v1/jobs/" + queued_id + "/result"));
  EXPECT_EQ(premature.status, 409);

  // Cancel everything and let shutdown drain the runner.
  const std::string running_id = body_json(a).at("id").as_string();
  EXPECT_EQ(service
                .handle(make_request("POST",
                                     "/v1/jobs/" + queued_id + "/cancel"))
                .status,
            200);
  EXPECT_EQ(service
                .handle(make_request("POST",
                                     "/v1/jobs/" + running_id + "/cancel"))
                .status,
            200);
  service.shutdown(/*cancel_pending=*/true);
  EXPECT_EQ(service.queue().find(queued_id)->state(), JobState::kCancelled);
  EXPECT_EQ(service.queue().find(running_id)->state(), JobState::kCancelled);
}

const std::string* find_header(const HttpResponse& response,
                               const std::string& name) {
  for (const auto& [header, value] : response.headers) {
    if (header == name) return &value;
  }
  return nullptr;
}

TEST(ServiceTest, QueueFull429CarriesRetryAfter) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  DseService service(options);
  const std::string slow = small_job_body("fcclr", 1, /*generations=*/300);
  ASSERT_EQ(service.handle(make_request("POST", "/v1/jobs", slow)).status,
            202);
  while (service.queue().depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.handle(make_request("POST", "/v1/jobs", slow)).status,
            202);
  const HttpResponse rejected =
      service.handle(make_request("POST", "/v1/jobs", slow));
  ASSERT_EQ(rejected.status, 429);
  const std::string* retry_after = find_header(rejected, "Retry-After");
  ASSERT_NE(retry_after, nullptr) << "429 without Retry-After";
  EXPECT_GE(std::stoi(*retry_after), 1);
  service.shutdown(/*cancel_pending=*/true);
}

TEST(ServiceTest, QuotaRejectsOverRateClientPerKey) {
  ServiceOptions options;
  options.workers = 1;
  options.queue_depth = 16;
  options.quota_rate = 0.001;  // effectively no refill during the test
  options.quota_burst = 2;
  DseService service(options);

  HttpRequest alice = make_request("POST", "/v1/jobs",
                                   small_job_body("fcclr", 1, 300));
  alice.headers["x-client-key"] = "alice";
  EXPECT_EQ(service.handle(alice).status, 202);
  EXPECT_EQ(service.handle(alice).status, 202);  // burst exhausted
  const HttpResponse rejected = service.handle(alice);
  ASSERT_EQ(rejected.status, 429) << rejected.body;
  const std::string* retry_after = find_header(rejected, "Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_GE(std::stoi(*retry_after), 1);

  // Quotas are per client key: bob's bucket is untouched by alice's burst.
  HttpRequest bob = alice;
  bob.headers["x-client-key"] = "bob";
  EXPECT_EQ(service.handle(bob).status, 202);

  // An invalid X-Priority is a client error, not a crash.
  HttpRequest bad = bob;
  bad.headers["x-priority"] = "urgent";
  EXPECT_EQ(service.handle(bad).status, 400);

  service.shutdown(/*cancel_pending=*/true);
}

TEST(ServiceTest, SessionLeasePinsAgainstEviction) {
  const io::JobSpec sobel = io::job_spec_from_json(
      util::json_parse(small_job_body("fcclr", 1)));
  const io::JobSpec qos_variant = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1, "flow": "fcclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "qos": {"max_makespan_us": 100000000},
    "application": "sobel"
  })"));
  const io::JobSpec third = io::job_spec_from_json(util::json_parse(R"({
    "format_version": 1, "flow": "fcclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "application": "synthetic:5:1"
  })"));
  ASSERT_NE(sobel.model_key(), qos_variant.model_key());
  ASSERT_NE(sobel.model_key(), third.model_key());

  SessionCache cache(/*max_sessions=*/1);
  SessionCache::Lease lease = cache.acquire(sobel);
  ASSERT_TRUE(lease);
  EXPECT_EQ(lease->pins(), 1);

  {
    // Re-acquiring the same model key while pinned shares the session (and
    // its fitness cache) instead of rebuilding it.
    SessionCache::Lease again = cache.acquire(sobel);
    EXPECT_EQ(again.get(), lease.get());
    EXPECT_EQ(lease->pins(), 2);
  }
  EXPECT_EQ(lease->pins(), 1);  // inner lease released its pin

  // A different model key with the cache bound at 1: the pinned session
  // must NOT be evicted out from under its running job — the cache grows
  // past the bound instead.
  SessionCache::Lease other = cache.acquire(qos_variant);
  EXPECT_EQ(cache.size(), 2u);

  // Release the first lease; with an unpinned LRU victim available, the
  // next distinct key evicts it and the cache shrinks back to the bound.
  lease = SessionCache::Lease();
  SessionCache::Lease replacement = cache.acquire(third);
  EXPECT_EQ(cache.size(), 2u);  // sobel evicted, `other` still pinned

  // The still-pinned session survived the eviction pass (size stayed at 2,
  // so the victim must have been the unpinned sobel session).
  SessionCache::Lease other_again = cache.acquire(qos_variant);
  EXPECT_EQ(other_again.get(), other.get());
}

TEST(ServiceTest, SseSinkStreamsProgressAndFinalState) {
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  const std::string id =
      run_to_completion(service, small_job_body("fcclr", 1, /*generations=*/4));

  HttpRequest request =
      make_request("GET", "/v1/jobs/" + id + "/events", "", "from=0");
  request.headers["accept"] = "text/event-stream";
  ASSERT_TRUE(DseService::wants_sse(request));
  std::vector<std::string> frames;
  const auto sink = [&frames](const std::string& frame) {
    frames.push_back(frame);
    return true;
  };
  EXPECT_EQ(service.stream_events_sse(request, sink), std::nullopt);
  // 5 progress frames (4 generations + final front) plus the state frame.
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_NE(frames[0].find("id: 0"), std::string::npos) << frames[0];
  EXPECT_NE(frames[0].find("event: progress"), std::string::npos);
  EXPECT_NE(frames[4].find("id: 4"), std::string::npos);
  EXPECT_NE(frames.back().find("event: state"), std::string::npos);
  EXPECT_NE(frames.back().find("\"state\": \"done\""), std::string::npos);

  // The id lines are resume cursors: from=3 replays only the tail.
  HttpRequest resume =
      make_request("GET", "/v1/jobs/" + id + "/events", "", "from=3");
  resume.headers["accept"] = "text/event-stream";
  frames.clear();
  EXPECT_EQ(service.stream_events_sse(resume, sink), std::nullopt);
  EXPECT_EQ(frames.size(), 3u);  // events 3, 4 + state
  EXPECT_NE(frames[0].find("id: 3"), std::string::npos);

  // Last-Event-ID (the SSE reconnect header) resumes after the given id.
  HttpRequest reconnect = make_request("GET", "/v1/jobs/" + id + "/events");
  reconnect.headers["accept"] = "text/event-stream";
  reconnect.headers["last-event-id"] = "2";
  frames.clear();
  EXPECT_EQ(service.stream_events_sse(reconnect, sink), std::nullopt);
  EXPECT_EQ(frames.size(), 3u);

  // A dead client stops the stream without error.
  frames.clear();
  const auto dead = [](const std::string&) { return false; };
  EXPECT_EQ(service.stream_events_sse(request, dead), std::nullopt);

  // Non-streamable requests return a plain response before any frame.
  HttpRequest missing = make_request("GET", "/v1/jobs/job-999999/events");
  missing.headers["accept"] = "text/event-stream";
  const auto error = service.stream_events_sse(missing, sink);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->status, 404);
  EXPECT_TRUE(frames.empty());
}

TEST(ServiceTest, ErrorPaths) {
  ServiceOptions options;
  options.workers = 1;
  DseService service(options);
  EXPECT_EQ(service.handle(make_request("POST", "/v1/jobs", "not json")).status,
            400);
  EXPECT_EQ(service
                .handle(make_request("POST", "/v1/jobs",
                                     R"({"format_version": 9,
                                         "application": "sobel"})"))
                .status,
            400);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/jobs/job-999999")).status,
            404);
  EXPECT_EQ(
      service.handle(make_request("GET", "/v1/jobs/job-999999/result")).status,
      404);
  EXPECT_EQ(service.handle(make_request("GET", "/v1/nope")).status, 404);
  EXPECT_EQ(service.handle(make_request("DELETE", "/v1/jobs")).status, 405);

  const HttpResponse health = service.handle(make_request("GET", "/v1/healthz"));
  EXPECT_EQ(health.status, 200);
  const HttpResponse metrics = service.handle(make_request("GET", "/v1/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(body_json(metrics).find("counters") != nullptr);

  EXPECT_FALSE(service.shutdown_requested());
  EXPECT_EQ(service.handle(make_request("POST", "/v1/shutdown")).status, 200);
  EXPECT_TRUE(service.shutdown_requested());
}

}  // namespace
}  // namespace clrearly::server
