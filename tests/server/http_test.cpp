// Socket-level tests of the HTTP front: raw request/response framing over a
// real ephemeral-port listener, query parsing, and concurrent submissions.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "server/http.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "util/json.hpp"

namespace clrearly::server {
namespace {

/// One blocking HTTP exchange over a fresh connection; returns the raw
/// response text ("" on connect failure).
std::string http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path +
                                 " HTTP/1.1\r\nHost: x\r\n"
                                 "Connection: close\r\n\r\n");
}

std::string post(int port, const std::string& path, const std::string& body) {
  return http_exchange(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" +
                                 "Content-Type: application/json\r\n" +
                                 "Content-Length: " +
                                 std::to_string(body.size()) +
                                 "\r\nConnection: close\r\n\r\n" + body);
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly one Content-Length-framed response off a keep-alive
/// connection; `buffer` carries leftover bytes between calls.
std::string recv_one_response(int fd, std::string& buffer) {
  char chunk[4096];
  std::size_t header_end;
  while ((header_end = buffer.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return "";
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  const std::size_t marker = buffer.find("Content-Length: ");
  if (marker == std::string::npos || marker > header_end) return "";
  const std::size_t length = std::stoul(buffer.substr(marker + 16));
  const std::size_t total = header_end + 4 + length;
  while (buffer.size() < total) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return "";
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  std::string response = buffer.substr(0, total);
  buffer.erase(0, total);
  return response;
}

TEST(HttpTest, QueryParamParsing) {
  HttpRequest request;
  request.query = "from=3&limit=10&flag";
  EXPECT_EQ(request.query_param("from"), std::optional<std::string>("3"));
  EXPECT_EQ(request.query_param("limit"), std::optional<std::string>("10"));
  EXPECT_EQ(request.query_param("flag"), std::optional<std::string>(""));
  EXPECT_EQ(request.query_param("absent"), std::nullopt);
}

TEST(HttpTest, StatusTextCoversServiceCodes) {
  EXPECT_STREQ(status_text(200), "OK");
  EXPECT_STREQ(status_text(202), "Accepted");
  EXPECT_STREQ(status_text(429), "Too Many Requests");
  EXPECT_STREQ(status_text(500), "Internal Server Error");
}

TEST(HttpTest, ServerAnswersOverRealSockets) {
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  HttpServer server(service, server_options);
  ASSERT_GT(server.port(), 0);
  server.start();

  const std::string health = get(server.port(), "/v1/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("Content-Type: application/json"), std::string::npos);

  EXPECT_NE(get(server.port(), "/v1/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(post(server.port(), "/v1/jobs", "garbage").find("HTTP/1.1 400"),
            std::string::npos);

  // Malformed request line: connection dropped without a crash, and the
  // server still answers afterwards.
  EXPECT_EQ(http_exchange(server.port(), "BLORP\r\n\r\n"), "");
  EXPECT_NE(get(server.port(), "/v1/healthz").find("200 OK"),
            std::string::npos);

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, SlowWriterBodyArrivesInPieces) {
  // A client that dribbles its POST body across many small writes (with
  // pauses well past one recv) must still be framed correctly: the reader
  // has to loop until every declared Content-Length byte arrived.
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  HttpServer server(service, server_options);
  server.start();

  const std::string body = R"({
    "format_version": 1, "flow": "pfclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "application": "synthetic:5:1"
  })";
  const std::string head = "POST /v1/jobs HTTP/1.1\r\nHost: x\r\n"
                           "Content-Type: application/json\r\n"
                           "Content-Length: " + std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n";
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, head));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Body in three slow pieces, each smaller than the declared length.
  for (std::size_t offset = 0; offset < body.size(); offset += 40) {
    ASSERT_TRUE(send_all(fd, body.substr(offset, 40)));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 202"), std::string::npos) << response;

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, KeepAliveServesManyRequestsOnOneConnection) {
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  HttpServer server(service, server_options);
  server.start();

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  std::string buffer;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(send_all(fd, "GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
    const std::string response = recv_one_response(fd, buffer);
    ASSERT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
        << "request " << i << ": " << response;
    // HTTP/1.1 without a Connection header is persistent by default.
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
  // An explicit close is honored: the response says so and the socket EOFs.
  ASSERT_TRUE(send_all(
      fd, "GET /v1/healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));
  const std::string last = recv_one_response(fd, buffer);
  EXPECT_NE(last.find("Connection: close"), std::string::npos) << last;
  char chunk[16];
  EXPECT_LE(::recv(fd, chunk, sizeof chunk, 0), 0);
  ::close(fd);

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, PipelinedRequestsAnswerInOrder) {
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  HttpServer server(service, server_options);
  server.start();

  // Two requests in one TCP write: both must be parsed from the shared
  // buffer and answered back-to-back over the same connection.
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(
      fd,
      "GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /v1/jobs HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));
  std::string buffer;
  const std::string first = recv_one_response(fd, buffer);
  const std::string second = recv_one_response(fd, buffer);
  ::close(fd);
  EXPECT_NE(first.find("\"status\": \"ok\""), std::string::npos) << first;
  EXPECT_NE(second.find("\"jobs\""), std::string::npos) << second;
  EXPECT_NE(second.find("Connection: close"), std::string::npos);

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, SseStreamDeliversEventsAndFinalState) {
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  HttpServer server(service, server_options);
  server.start();

  const std::string body = R"({
    "format_version": 1, "flow": "pfclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 3},
    "application": "synthetic:5:1"
  })";
  const std::string submitted =
      body_of(post(server.port(), "/v1/jobs", body));
  const std::string id = util::json_parse(submitted).at("id").as_string();

  // Stream from the beginning; the server closes the connection after the
  // terminal state frame, so reading to EOF collects the whole stream.
  const std::string stream = http_exchange(
      server.port(), "GET /v1/jobs/" + id +
                         "/events?from=0 HTTP/1.1\r\nHost: x\r\n"
                         "Accept: text/event-stream\r\n\r\n");
  EXPECT_NE(stream.find("Content-Type: text/event-stream"), std::string::npos)
      << stream;
  EXPECT_NE(stream.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_NE(stream.find("id: 0"), std::string::npos);
  EXPECT_NE(stream.find("event: progress"), std::string::npos);
  EXPECT_NE(stream.find("event: state"), std::string::npos);
  EXPECT_NE(stream.find("\"state\": \"done\""), std::string::npos);

  // Resuming from a cursor skips the already-seen events.
  const std::string tail = http_exchange(
      server.port(), "GET /v1/jobs/" + id +
                         "/events?from=3 HTTP/1.1\r\nHost: x\r\n"
                         "Accept: text/event-stream\r\n\r\n");
  EXPECT_EQ(tail.find("id: 0"), std::string::npos) << tail;
  EXPECT_NE(tail.find("id: 3"), std::string::npos);

  // An unknown job answers a plain 404 instead of a stream.
  const std::string missing = http_exchange(
      server.port(), "GET /v1/jobs/job-999999/events HTTP/1.1\r\nHost: x\r\n"
                     "Accept: text/event-stream\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, ConcurrentSubmissionsAllComplete) {
  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.queue_depth = 16;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  server_options.handler_threads = 4;
  HttpServer server(service, server_options);
  server.start();

  const std::string body = R"({
    "format_version": 1, "flow": "pfclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "application": "synthetic:5:1"
  })";
  std::vector<std::thread> clients;
  std::vector<std::string> responses(6);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&, i] {
      responses[i] = post(server.port(), "/v1/jobs", body);
    });
  }
  for (std::thread& client : clients) client.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("HTTP/1.1 202"), std::string::npos) << response;
  }

  // All six jobs eventually reach "done" (identical specs, shared session).
  for (int i = 0; i < 600; ++i) {
    const std::string list = body_of(get(server.port(), "/v1/jobs"));
    const util::JsonValue parsed = util::json_parse(list);
    std::size_t done = 0;
    for (const util::JsonValue& job : parsed.at("jobs").as_array()) {
      if (job.at("state").as_string() == "done") ++done;
    }
    if (done == responses.size()) break;
    ASSERT_LT(i, 599) << "jobs did not finish: " << list;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EXPECT_NE(post(server.port(), "/v1/shutdown", "").find("200 OK"),
            std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
  server.stop();
  service.shutdown(true);
}

}  // namespace
}  // namespace clrearly::server
