// Socket-level tests of the HTTP front: raw request/response framing over a
// real ephemeral-port listener, query parsing, and concurrent submissions.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "server/http.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "util/json.hpp"

namespace clrearly::server {
namespace {

/// One blocking HTTP exchange over a fresh connection; returns the raw
/// response text ("" on connect failure).
std::string http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path +
                                 " HTTP/1.1\r\nHost: x\r\n"
                                 "Connection: close\r\n\r\n");
}

std::string post(int port, const std::string& path, const std::string& body) {
  return http_exchange(port, "POST " + path + " HTTP/1.1\r\nHost: x\r\n" +
                                 "Content-Type: application/json\r\n" +
                                 "Content-Length: " +
                                 std::to_string(body.size()) +
                                 "\r\nConnection: close\r\n\r\n" + body);
}

std::string body_of(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpTest, QueryParamParsing) {
  HttpRequest request;
  request.query = "from=3&limit=10&flag";
  EXPECT_EQ(request.query_param("from"), std::optional<std::string>("3"));
  EXPECT_EQ(request.query_param("limit"), std::optional<std::string>("10"));
  EXPECT_EQ(request.query_param("flag"), std::optional<std::string>(""));
  EXPECT_EQ(request.query_param("absent"), std::nullopt);
}

TEST(HttpTest, StatusTextCoversServiceCodes) {
  EXPECT_STREQ(status_text(200), "OK");
  EXPECT_STREQ(status_text(202), "Accepted");
  EXPECT_STREQ(status_text(429), "Too Many Requests");
  EXPECT_STREQ(status_text(500), "Internal Server Error");
}

TEST(HttpTest, ServerAnswersOverRealSockets) {
  ServiceOptions service_options;
  service_options.workers = 1;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  HttpServer server(service, server_options);
  ASSERT_GT(server.port(), 0);
  server.start();

  const std::string health = get(server.port(), "/v1/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("Content-Type: application/json"), std::string::npos);

  EXPECT_NE(get(server.port(), "/v1/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(post(server.port(), "/v1/jobs", "garbage").find("HTTP/1.1 400"),
            std::string::npos);

  // Malformed request line: connection dropped without a crash, and the
  // server still answers afterwards.
  EXPECT_EQ(http_exchange(server.port(), "BLORP\r\n\r\n"), "");
  EXPECT_NE(get(server.port(), "/v1/healthz").find("200 OK"),
            std::string::npos);

  server.stop();
  service.shutdown(true);
}

TEST(HttpTest, ConcurrentSubmissionsAllComplete) {
  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.queue_depth = 16;
  DseService service(service_options);
  ServerOptions server_options;
  server_options.port = 0;
  server_options.handler_threads = 4;
  HttpServer server(service, server_options);
  server.start();

  const std::string body = R"({
    "format_version": 1, "flow": "pfclr", "seed": 1,
    "ga": {"population_size": 8, "generations": 2},
    "application": "synthetic:5:1"
  })";
  std::vector<std::thread> clients;
  std::vector<std::string> responses(6);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&, i] {
      responses[i] = post(server.port(), "/v1/jobs", body);
    });
  }
  for (std::thread& client : clients) client.join();
  for (const std::string& response : responses) {
    EXPECT_NE(response.find("HTTP/1.1 202"), std::string::npos) << response;
  }

  // All six jobs eventually reach "done" (identical specs, shared session).
  for (int i = 0; i < 600; ++i) {
    const std::string list = body_of(get(server.port(), "/v1/jobs"));
    const util::JsonValue parsed = util::json_parse(list);
    std::size_t done = 0;
    for (const util::JsonValue& job : parsed.at("jobs").as_array()) {
      if (job.at("state").as_string() == "done") ++done;
    }
    if (done == responses.size()) break;
    ASSERT_LT(i, 599) << "jobs did not finish: " << list;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  EXPECT_NE(post(server.port(), "/v1/shutdown", "").find("200 OK"),
            std::string::npos);
  EXPECT_TRUE(service.shutdown_requested());
  server.stop();
  service.shutdown(true);
}

}  // namespace
}  // namespace clrearly::server
