// JobQueue tests with a stub runner: FIFO order, bounded admission,
// state machine, cancellation of queued and running jobs, drain semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/job.hpp"
#include "server/job_queue.hpp"

namespace clrearly::server {
namespace {

io::JobSpec tiny_spec() {
  io::JobSpec spec;
  spec.application = io::resolve_application("synthetic:4:1");
  spec.architecture = io::resolve_architecture("default");
  spec.ga.population_size = 4;
  spec.ga.generations = 1;
  return spec;
}

std::shared_ptr<JobRecord> make_job(const std::string& id) {
  return std::make_shared<JobRecord>(id, tiny_spec());
}

TEST(JobQueueTest, RunsJobsInSubmissionOrder) {
  std::mutex mutex;
  std::vector<std::string> ran;
  JobQueue queue(/*workers=*/1, /*max_depth=*/8, [&](JobRecord& job) {
    if (!job.try_start()) return;
    {
      std::lock_guard<std::mutex> lock(mutex);
      ran.push_back(job.id());
    }
    job.finish(JobResult{});
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.submit(make_job("j" + std::to_string(i))).has_value());
  }
  queue.shutdown(/*cancel_pending=*/false);  // drain everything first
  EXPECT_EQ(ran, (std::vector<std::string>{"j0", "j1", "j2", "j3"}));
  EXPECT_EQ(queue.find("j2")->state(), JobState::kDone);
}

TEST(JobQueueTest, BoundedAdmissionRejectsWhenFull) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  JobQueue queue(/*workers=*/1, /*max_depth=*/2, [&](JobRecord& job) {
    if (!job.try_start()) return;
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    job.finish(JobResult{});
  });
  // First job occupies the worker (blocked on the gate); wait until it
  // leaves the queue so the depth bound applies to the two that follow.
  ASSERT_TRUE(queue.submit(make_job("running")).has_value());
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.submit(make_job("q1")), std::optional<std::size_t>(0));
  EXPECT_EQ(queue.submit(make_job("q2")), std::optional<std::size_t>(1));
  // Queue full -> admission refused; the job is still addressable? No:
  // rejected jobs are never registered.
  EXPECT_FALSE(queue.submit(make_job("q3")).has_value());
  EXPECT_EQ(queue.find("q3"), nullptr);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  }
  queue.shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(queue.find("q2")->state(), JobState::kDone);
}

TEST(JobQueueTest, CancelQueuedJobIsImmediateAndSkipped) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> executed{0};
  JobQueue queue(/*workers=*/1, /*max_depth=*/8, [&](JobRecord& job) {
    if (!job.try_start()) return;
    ++executed;
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    job.finish(JobResult{});
  });
  ASSERT_TRUE(queue.submit(make_job("running")).has_value());
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(queue.submit(make_job("victim")).has_value());
  EXPECT_TRUE(queue.cancel("victim"));
  EXPECT_EQ(queue.find("victim")->state(), JobState::kCancelled);
  EXPECT_FALSE(queue.cancel("victim"));  // already terminal
  EXPECT_FALSE(queue.cancel("no-such-job"));
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  }
  queue.shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(executed.load(), 1);  // the victim never ran
}

TEST(JobQueueTest, CancelRunningJobSetsCooperativeFlag) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  JobQueue queue(/*workers=*/1, /*max_depth=*/8, [&](JobRecord& job) {
    if (!job.try_start()) return;
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    // A real runner polls the flag between generations.
    if (job.cancel_requested()) {
      job.cancel();
    } else {
      job.finish(JobResult{});
    }
  });
  auto job = make_job("running");
  ASSERT_TRUE(queue.submit(job).has_value());
  while (job->state() != JobState::kRunning) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(queue.cancel("running"));
  EXPECT_TRUE(job->cancel_requested());
  EXPECT_EQ(job->state(), JobState::kRunning);  // cooperative, not preemptive
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  }
  queue.shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(job->state(), JobState::kCancelled);
}

TEST(JobQueueTest, ShutdownCancelPendingDropsQueueButDrainsRunning) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  JobQueue queue(/*workers=*/1, /*max_depth=*/8, [&](JobRecord& job) {
    if (!job.try_start()) return;
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    job.finish(JobResult{});
  });
  auto running = make_job("running");
  ASSERT_TRUE(queue.submit(running).has_value());
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued = make_job("queued");
  ASSERT_TRUE(queue.submit(queued).has_value());

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  });
  queue.shutdown(/*cancel_pending=*/true);
  releaser.join();
  EXPECT_EQ(running->state(), JobState::kDone);       // drained
  EXPECT_EQ(queued->state(), JobState::kCancelled);   // dropped
  // Post-shutdown submissions are refused.
  EXPECT_FALSE(queue.submit(make_job("late")).has_value());
}

TEST(JobQueueTest, HighPriorityJobsDequeueFirst) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::mutex order_mutex;
  std::vector<std::string> ran;
  JobQueue queue(/*workers=*/1, /*max_depth=*/8, [&](JobRecord& job) {
    if (!job.try_start()) return;
    {
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    }
    {
      std::lock_guard<std::mutex> lock(order_mutex);
      ran.push_back(job.id());
    }
    job.finish(JobResult{});
  });
  // Occupy the worker, then interleave priorities while everything waits.
  ASSERT_TRUE(queue.submit(make_job("running")).has_value());
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(queue.submit(make_job("n1")).has_value());
  auto urgent = std::make_shared<JobRecord>("h1", tiny_spec(),
                                            JobPriority::kHigh);
  // A high-priority job jumps the whole normal backlog: position 0.
  EXPECT_EQ(queue.submit(urgent), std::optional<std::size_t>(0));
  EXPECT_EQ(queue.submit(make_job("n2")), std::optional<std::size_t>(2));
  EXPECT_EQ(queue.depth(), 3u);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  }
  queue.shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(ran,
            (std::vector<std::string>{"running", "h1", "n1", "n2"}));
}

TEST(JobQueueTest, ForcedSubmitBypassesTheDepthBound) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  JobQueue queue(/*workers=*/1, /*max_depth=*/1, [&](JobRecord& job) {
    if (!job.try_start()) return;
    std::unique_lock<std::mutex> lock(gate_mutex);
    gate_cv.wait(lock, [&] { return gate_open; });
    job.finish(JobResult{});
  });
  ASSERT_TRUE(queue.submit(make_job("running")).has_value());
  while (queue.depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(queue.submit(make_job("q1")).has_value());
  EXPECT_FALSE(queue.submit(make_job("refused")).has_value());
  // Journal replay re-admits past the bound: acked work is never shed.
  EXPECT_TRUE(queue.submit(make_job("replayed"), /*force=*/true).has_value());
  EXPECT_EQ(queue.depth(), 2u);
  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
    gate_cv.notify_all();
  }
  queue.shutdown(/*cancel_pending=*/false);
  EXPECT_EQ(queue.find("replayed")->state(), JobState::kDone);
}

TEST(JobQueueTest, CancelNeverReportsCancelledForACompletedJob) {
  // Race the canceller against the worker on a queue that pops as fast as
  // it can: whatever interleaving happens, a job that reports kCancelled
  // must never have run to completion, and a job that ran must report
  // kDone. Before cancel() was closed under the queue mutex, the
  // lookup-then-flip window allowed a job to be reported cancelled while
  // the worker ran it to done (or the done state to win and the cancel to
  // be acked anyway with completed=true).
  std::atomic<int> completed{0};
  JobQueue queue(/*workers=*/2, /*max_depth=*/256, [&](JobRecord& job) {
    if (!job.try_start()) return;
    ++completed;
    job.finish(JobResult{});
  });
  std::vector<std::shared_ptr<JobRecord>> jobs;
  for (int i = 0; i < 200; ++i) {
    auto job = make_job("race-" + std::to_string(i));
    if (queue.submit(job).has_value()) {
      jobs.push_back(std::move(job));
      // Cancel from this thread while workers pop concurrently.
      queue.cancel(jobs.back()->id());
    }
  }
  queue.shutdown(/*cancel_pending=*/false);
  int cancelled = 0, done = 0;
  for (const auto& job : jobs) {
    const JobState state = job->state();
    ASSERT_TRUE(state == JobState::kCancelled || state == JobState::kDone)
        << job->id() << " ended " << to_string(state);
    (state == JobState::kCancelled ? cancelled : done) += 1;
  }
  // The invariant under test: every completed execution reports kDone, so
  // the cancelled + done split exactly accounts for the executed count.
  EXPECT_EQ(done, completed.load());
  EXPECT_EQ(cancelled + done, static_cast<int>(jobs.size()));
}

TEST(JobQueueTest, RecordStateMachineRejectsBadTransitions) {
  auto job = make_job("sm");
  EXPECT_EQ(job->state(), JobState::kQueued);
  EXPECT_TRUE(job->try_start());
  EXPECT_FALSE(job->try_start());  // already running
  job->finish(JobResult{});
  EXPECT_EQ(job->state(), JobState::kDone);
  job->cancel();  // terminal states are sticky
  EXPECT_EQ(job->state(), JobState::kDone);
  job->fail("nope");
  EXPECT_EQ(job->state(), JobState::kDone);

  auto cancelled = make_job("cancelled-while-queued");
  cancelled->cancel();
  EXPECT_FALSE(cancelled->try_start());
  EXPECT_EQ(cancelled->state(), JobState::kCancelled);
}

}  // namespace
}  // namespace clrearly::server
