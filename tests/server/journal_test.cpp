// JobJournal tests: record round-tripping, torn-tail tolerance, version
// skipping, compaction, and the headline crash-safety property — a daemon
// SIGKILL'd with admitted jobs still pending resumes them after restart and
// produces bit-identical results.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "server/journal.hpp"
#include "server/service.hpp"
#include "util/json.hpp"

namespace clrearly::server {
namespace {

io::JobSpec tiny_spec(int seed) {
  io::JobSpec spec;
  spec.application = io::resolve_application("synthetic:4:1");
  spec.architecture = io::resolve_architecture("default");
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.ga.population_size = 8;
  spec.ga.generations = 2;
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

HttpRequest make_request(std::string method, std::string path,
                         std::string body = "") {
  HttpRequest request;
  request.method = std::move(method);
  request.path = std::move(path);
  request.body = std::move(body);
  return request;
}

std::string job_body(int seed, int generations) {
  return std::string(R"({
    "format_version": 1, "flow": "pfclr", "seed": )") +
         std::to_string(seed) +
         R"(, "ga": {"population_size": 16, "generations": )" +
         std::to_string(generations) + R"(},
    "application": "synthetic:6:2"
  })";
}

/// Poll a service until `id` reaches a terminal state; returns that state.
std::string wait_terminal(DseService& service, const std::string& id) {
  for (int i = 0; i < 3000; ++i) {
    const HttpResponse status =
        service.handle(make_request("GET", "/v1/jobs/" + id));
    if (status.status != 200) return "missing";
    const std::string state =
        util::json_parse(status.body).at("state").as_string();
    if (state == "done" || state == "failed" || state == "cancelled") {
      return state;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return "timeout";
}

util::JsonValue fetch_front(DseService& service, const std::string& id) {
  const HttpResponse response =
      service.handle(make_request("GET", "/v1/jobs/" + id + "/result"));
  EXPECT_EQ(response.status, 200) << response.body;
  return util::json_parse(response.body).at("front");
}

TEST(JournalTest, RecordsRoundTripWithPriorityAndClient) {
  const std::string dir = fresh_dir("journal_roundtrip");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path, /*compact_bytes=*/0);
    JobRecord high("job-000001", tiny_spec(1), JobPriority::kHigh);
    JobRecord normal("job-000002", tiny_spec(2));
    journal.record_submitted(high, JobPriority::kHigh, "alice");
    journal.record_submitted(normal, JobPriority::kNormal, "default");
    journal.record_state("job-000001", JobState::kRunning);
    journal.record_state("job-000002", JobState::kDone);
  }
  JournalReplayStats stats;
  const std::vector<JournalEntry> entries = JobJournal::replay(path, &stats);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(stats.dropped_torn, 0u);
  EXPECT_EQ(entries[0].id, "job-000001");
  EXPECT_EQ(entries[0].priority, JobPriority::kHigh);
  EXPECT_EQ(entries[0].client, "alice");
  EXPECT_EQ(entries[0].last_state, JobState::kRunning);
  EXPECT_EQ(entries[0].spec.seed, 1u);
  EXPECT_EQ(entries[0].spec.model_key(), tiny_spec(1).model_key());
  EXPECT_EQ(entries[1].last_state, JobState::kDone);
  EXPECT_LT(entries[0].seq, entries[1].seq);
}

TEST(JournalTest, TornTrailingRecordIsDropped) {
  const std::string dir = fresh_dir("journal_torn");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path, /*compact_bytes=*/0);
    journal.record_submitted(JobRecord("job-000001", tiny_spec(1)),
                             JobPriority::kNormal, "default");
    journal.record_submitted(JobRecord("job-000002", tiny_spec(2)),
                             JobPriority::kNormal, "default");
  }
  // Simulate a crash mid-append: cut the file inside the last record.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 25);

  JournalReplayStats stats;
  const std::vector<JournalEntry> entries = JobJournal::replay(path, &stats);
  ASSERT_EQ(entries.size(), 1u);  // everything before the tear replays
  EXPECT_EQ(entries[0].id, "job-000001");
  EXPECT_EQ(stats.dropped_torn, 1u);
}

TEST(JournalTest, UnknownVersionRecordsAreSkippedNotFatal) {
  const std::string dir = fresh_dir("journal_version");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path, /*compact_bytes=*/0);
    journal.record_submitted(JobRecord("job-000001", tiny_spec(1)),
                             JobPriority::kNormal, "default");
  }
  {
    // A hypothetical future writer's record plus an orphan state line.
    std::ofstream out(path, std::ios::app);
    out << R"({"v": 2,"type": "submit","id": "job-000009","seq": 9})" << "\n";
    out << R"({"v": 1,"type": "state","id": "job-000404","state": "done"})"
        << "\n";
  }
  JournalReplayStats stats;
  const std::vector<JournalEntry> entries = JobJournal::replay(path, &stats);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id, "job-000001");
  EXPECT_EQ(stats.skipped_version, 1u);
  EXPECT_EQ(stats.skipped_orphan, 1u);
  EXPECT_EQ(stats.dropped_torn, 0u);
}

TEST(JournalTest, CompactionKeepsOnlyLiveJobs) {
  const std::string dir = fresh_dir("journal_compact");
  const std::string path = dir + "/journal.jsonl";
  // compact_bytes=1: every append crosses the threshold, so the journal is
  // compacted continuously — the file never holds more than the live set.
  JobJournal journal(path, /*compact_bytes=*/1);
  journal.record_submitted(JobRecord("job-000001", tiny_spec(1)),
                           JobPriority::kNormal, "default");
  journal.record_submitted(JobRecord("job-000002", tiny_spec(2)),
                           JobPriority::kNormal, "default");
  const std::size_t both = journal.bytes_written();
  journal.record_state("job-000001", JobState::kRunning);
  journal.record_state("job-000001", JobState::kDone);
  // The terminal job is gone from the (compacted) file.
  EXPECT_LT(journal.bytes_written(), both);
  const std::vector<JournalEntry> entries = JobJournal::replay(path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].id, "job-000002");
  EXPECT_EQ(entries[0].last_state, JobState::kQueued);
}

TEST(JournalTest, SeedCompactsAwayTerminalJobsOnRestart) {
  const std::string dir = fresh_dir("journal_seed");
  const std::string path = dir + "/journal.jsonl";
  {
    JobJournal journal(path, /*compact_bytes=*/0);
    journal.record_submitted(JobRecord("job-000001", tiny_spec(1)),
                             JobPriority::kNormal, "default");
    journal.record_submitted(JobRecord("job-000002", tiny_spec(2)),
                             JobPriority::kNormal, "default");
    journal.record_state("job-000001", JobState::kDone);
  }
  const std::vector<JournalEntry> first = JobJournal::replay(path);
  ASSERT_EQ(first.size(), 2u);
  {
    // Restart: seeding rewrites the journal without the terminal job.
    JobJournal journal(path, /*compact_bytes=*/0);
    journal.seed(first);
  }
  const std::vector<JournalEntry> second = JobJournal::replay(path);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, "job-000002");
}

TEST(JournalTest, KillAndRestartReplaysBitIdentically) {
  const std::string spool = fresh_dir("journal_crash_spool");
  const std::string slow = job_body(/*seed=*/11, /*generations=*/40);
  const std::string fast = job_body(/*seed=*/12, /*generations=*/3);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    // Child incarnation: admit two jobs, then die as hard as a process can
    // — no destructors, no flushes beyond what the journal already forced.
    ServiceOptions options;
    options.workers = 1;
    options.spool_dir = spool;
    DseService victim(options);
    const HttpResponse a =
        victim.handle(make_request("POST", "/v1/jobs", slow));
    const HttpResponse b =
        victim.handle(make_request("POST", "/v1/jobs", fast));
    if (a.status != 202 || b.status != 202) ::_exit(2);
    ::raise(SIGKILL);
    ::_exit(3);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die by SIGKILL (status " << status << ")";

  // The fsync'd journal survived the kill with both admissions.
  JournalReplayStats stats;
  const std::vector<JournalEntry> entries =
      JobJournal::replay(spool + "/journal.jsonl", &stats);
  ASSERT_EQ(entries.size(), 2u) << "admissions lost across SIGKILL";

  // Restart on the same spool: both jobs are re-enqueued and finish.
  ServiceOptions options;
  options.workers = 1;
  options.spool_dir = spool;
  DseService revived(options);
  ASSERT_EQ(wait_terminal(revived, "job-000001"), "done");
  ASSERT_EQ(wait_terminal(revived, "job-000002"), "done");
  const util::JsonValue front1 = fetch_front(revived, "job-000001");
  const util::JsonValue front2 = fetch_front(revived, "job-000002");

  // A new submission must not collide with the replayed ids.
  const HttpResponse next =
      revived.handle(make_request("POST", "/v1/jobs", fast));
  ASSERT_EQ(next.status, 202);
  EXPECT_EQ(util::json_parse(next.body).at("id").as_string(), "job-000003");
  ASSERT_EQ(wait_terminal(revived, "job-000003"), "done");
  revived.shutdown(/*cancel_pending=*/false);

  // Reference: the same specs through a never-crashed service. Determinism
  // makes crash recovery invisible — the fronts agree bit for bit.
  ServiceOptions clean;
  clean.workers = 1;
  DseService reference(clean);
  const HttpResponse ra =
      reference.handle(make_request("POST", "/v1/jobs", slow));
  const HttpResponse rb =
      reference.handle(make_request("POST", "/v1/jobs", fast));
  ASSERT_EQ(ra.status, 202);
  ASSERT_EQ(rb.status, 202);
  const std::string ref_slow = util::json_parse(ra.body).at("id").as_string();
  const std::string ref_fast = util::json_parse(rb.body).at("id").as_string();
  ASSERT_EQ(wait_terminal(reference, ref_slow), "done");
  ASSERT_EQ(wait_terminal(reference, ref_fast), "done");
  EXPECT_EQ(front1, fetch_front(reference, ref_slow));
  EXPECT_EQ(front2, fetch_front(reference, ref_fast));
  reference.shutdown(/*cancel_pending=*/false);

  // After a graceful drain everything is terminal: the journal forgets the
  // jobs on the next restart and replays nothing.
  ServiceOptions again;
  again.workers = 1;
  again.spool_dir = spool;
  DseService idle(again);
  EXPECT_EQ(idle.queue().jobs().size(), 0u);
  EXPECT_EQ(idle.replay_stats().dropped_torn, 0u);
}

}  // namespace
}  // namespace clrearly::server
