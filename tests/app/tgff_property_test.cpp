// Property tests for generate_tgff_graph at the island-model bench scales
// (500/1000/2000 tasks, docs/SCALING.md): structural invariants, exact
// sizing, and the determinism/stream-independence contract that the scaling
// benchmark and the sharded DSE flows lean on.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "app/tgff.hpp"
#include "util/rng.hpp"

namespace clrearly::app {
namespace {

class TgffScalePropertyTest : public ::testing::TestWithParam<std::size_t> {};

TgffOptions scale_options(std::size_t num_tasks) {
  TgffOptions o;
  o.num_tasks = num_tasks;
  return o;
}

TEST_P(TgffScalePropertyTest, ExactTaskCountAndValidDag) {
  const TgffOptions o = scale_options(GetParam());
  util::Rng rng(GetParam());
  const TaskGraph g = generate_tgff_graph(o, rng);
  EXPECT_EQ(g.num_tasks(), o.num_tasks);
  EXPECT_NO_THROW(g.validate());  // includes acyclicity
}

TEST_P(TgffScalePropertyTest, SingleSourceAndWeaklyConnected) {
  const TgffOptions o = scale_options(GetParam());
  util::Rng rng(GetParam());
  const TaskGraph g = generate_tgff_graph(o, rng);

  std::size_t parentless = 0;
  for (std::size_t t = 0; t < g.num_tasks(); ++t) {
    if (g.predecessors(t).empty()) ++parentless;
  }
  EXPECT_EQ(parentless, 1u);

  // Undirected BFS from the root must reach every task.
  std::vector<bool> seen(g.num_tasks(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t t = frontier.front();
    frontier.pop();
    for (const auto& neighbors : {g.successors(t), g.predecessors(t)}) {
      for (std::size_t next : neighbors) {
        if (!seen[next]) {
          seen[next] = true;
          ++reached;
          frontier.push(next);
        }
      }
    }
  }
  EXPECT_EQ(reached, g.num_tasks());
}

TEST_P(TgffScalePropertyTest, DegreeBoundsHoldAtScale) {
  const TgffOptions o = scale_options(GetParam());
  util::Rng rng(GetParam());
  const TaskGraph g = generate_tgff_graph(o, rng);
  for (std::size_t t = 0; t < g.num_tasks(); ++t) {
    EXPECT_LE(g.predecessors(t).size(), o.max_in_degree);
    // Out-degree may exceed the cap by the (rare) restart fallback by at
    // most one — same tolerance the base tgff_test uses.
    EXPECT_LE(g.successors(t).size(), o.max_out_degree + 1);
  }
}

TEST_P(TgffScalePropertyTest, SameSeedSameGraph) {
  const TgffOptions o = scale_options(GetParam());
  util::Rng rng_a(404), rng_b(404);
  const TaskGraph a = generate_tgff_graph(o, rng_a);
  const TaskGraph b = generate_tgff_graph(o, rng_b);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.edges(), b.edges());
  for (std::size_t t = 0; t < a.num_tasks(); ++t) {
    EXPECT_EQ(a.task(t).type, b.task(t).type);
    EXPECT_EQ(a.task(t).criticality, b.task(t).criticality);
  }
}

TEST_P(TgffScalePropertyTest, SplitStreamsAreIndependent) {
  // The island model hands each shard a Rng::split stream; graphs generated
  // from sibling streams must differ from each other and from the parent,
  // and consuming one stream must not perturb the other.
  const TgffOptions o = scale_options(GetParam());
  util::Rng parent(505);
  util::Rng stream_a = parent.split();
  util::Rng stream_b = parent.split();

  util::Rng parent_replay(505);
  util::Rng replay_a = parent_replay.split();
  util::Rng replay_b = parent_replay.split();
  // Consume replay_a's graph *after* replay_b's: order must not matter.
  const TaskGraph from_replay_b = generate_tgff_graph(o, replay_b);
  const TaskGraph from_replay_a = generate_tgff_graph(o, replay_a);

  const TaskGraph from_a = generate_tgff_graph(o, stream_a);
  const TaskGraph from_b = generate_tgff_graph(o, stream_b);

  EXPECT_EQ(from_a.edges(), from_replay_a.edges());
  EXPECT_EQ(from_b.edges(), from_replay_b.edges());
  EXPECT_NE(from_a.edges(), from_b.edges());
}

INSTANTIATE_TEST_SUITE_P(BenchSizes, TgffScalePropertyTest,
                         ::testing::Values(500, 1000, 2000));

}  // namespace
}  // namespace clrearly::app
