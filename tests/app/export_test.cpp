// Tests for the DOT export and schedule timeline/Gantt helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "app/dot.hpp"
#include "app/sobel.hpp"
#include "sched/timeline.hpp"

namespace clrearly {
namespace {

TEST(DotExportTest, ContainsAllNodesAndEdges) {
  const app::Application sobel = app::make_sobel_application();
  const std::string dot = app::to_dot(sobel.graph, "sobel");
  EXPECT_NE(dot.find("digraph \"sobel\""), std::string::npos);
  for (const app::Task& task : sobel.graph.tasks()) {
    EXPECT_NE(dot.find(task.name), std::string::npos) << task.name;
  }
  // Five edges with arrows and the data label.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find("->"); pos != std::string::npos;
       pos = dot.find("->", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 5u);
  EXPECT_NE(dot.find("75 KB"), std::string::npos);
}

TEST(DotExportTest, EscapesQuotesInNames) {
  app::TaskGraph g;
  g.add_task(0, "task \"quoted\"");
  const std::string dot = app::to_dot(g);
  EXPECT_NE(dot.find("task \\\"quoted\\\""), std::string::npos);
}

TEST(DotExportTest, TypeColorsCycle) {
  app::TaskGraph g;
  for (std::size_t i = 0; i < 10; ++i) {
    g.add_task(i, "t" + std::to_string(i));
  }
  const std::string dot = app::to_dot(g);
  // Types 0 and 8 share a palette slot (8-entry palette).
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

sched::Schedule sobel_schedule(const app::Application& sobel) {
  std::vector<sched::TaskAssignment> asg(5);
  for (std::size_t t = 0; t < 5; ++t) {
    asg[t] = {t % 2, 100.0 + 10.0 * static_cast<double>(t), 0.5};
  }
  return sched::list_schedule(sobel.graph, asg, {0, 1, 2, 3, 4}, 2);
}

TEST(TimelineCsvTest, EmitsOrderedRows) {
  const app::Application sobel = app::make_sobel_application();
  const sched::Schedule schedule = sobel_schedule(sobel);
  std::ostringstream oss;
  sched::write_timeline_csv(oss, schedule, sobel.graph);
  const std::string csv = oss.str();

  EXPECT_NE(csv.find("task,name,pe,start_us,end_us,exec_us"),
            std::string::npos);
  // Header + 5 rows.
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6u);
  // First data row is the source task GScale at start 0.
  EXPECT_NE(csv.find("0,GScale,0,0,"), std::string::npos);
}

TEST(TimelineCsvTest, MismatchedScheduleRejected) {
  const app::Application sobel = app::make_sobel_application();
  sched::Schedule schedule;  // empty
  std::ostringstream oss;
  EXPECT_THROW(sched::write_timeline_csv(oss, schedule, sobel.graph),
               std::invalid_argument);
}

TEST(GanttChartTest, RendersOneLanePerPe) {
  const app::Application sobel = app::make_sobel_application();
  const sched::Schedule schedule = sobel_schedule(sobel);
  const std::string chart = sched::gantt_chart(schedule, sobel.graph, 3, 40);

  EXPECT_NE(chart.find("PE0 |"), std::string::npos);
  EXPECT_NE(chart.find("PE1 |"), std::string::npos);
  EXPECT_NE(chart.find("PE2 |"), std::string::npos);
  // Legend names every task.
  for (const app::Task& task : sobel.graph.tasks()) {
    EXPECT_NE(chart.find(task.name), std::string::npos);
  }
  // The makespan header is present.
  EXPECT_NE(chart.find("makespan"), std::string::npos);
}

TEST(GanttChartTest, MarksReflectOccupancy) {
  app::TaskGraph g;
  g.add_task(0, "only");
  app::Application single;
  single.graph = g;

  sched::Schedule schedule;
  schedule.tasks = {{0.0, 100.0, 0}};
  schedule.makespan_us = 100.0;
  schedule.pe_busy_us = {100.0};
  const std::string chart = sched::gantt_chart(schedule, g, 1, 20);
  // The single task fills (nearly) the whole lane with 'A'.
  std::size_t a_count = 0;
  for (char c : chart) {
    if (c == 'A' && a_count < 100) ++a_count;
  }
  EXPECT_GE(a_count, 18u);  // 19 slots + the legend occurrence
}

TEST(GanttChartTest, Validation) {
  const app::Application sobel = app::make_sobel_application();
  const sched::Schedule schedule = sobel_schedule(sobel);
  EXPECT_THROW(sched::gantt_chart(schedule, sobel.graph, 2, 5),
               std::invalid_argument);
  sched::Schedule empty;
  EXPECT_THROW(sched::gantt_chart(empty, sobel.graph, 2, 40),
               std::invalid_argument);
}

}  // namespace
}  // namespace clrearly
