#include "app/tgff.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace clrearly::app {
namespace {

TEST(TgffOptionsTest, Validation) {
  {
    TgffOptions o;
    o.num_tasks = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    TgffOptions o;
    o.num_types = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    TgffOptions o;
    o.max_out_degree = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    TgffOptions o;
    o.fan_out_mean = 0.5;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    TgffOptions o;
    o.cross_edge_prob = 1.5;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    TgffOptions o;
    o.criticality_max = 0.1;  // below criticality_min
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
}

struct TgffCase {
  std::size_t num_tasks;
  std::uint64_t seed;
};

class TgffGraphTest : public ::testing::TestWithParam<TgffCase> {};

TEST_P(TgffGraphTest, ExactTaskCountAndDag) {
  TgffOptions o;
  o.num_tasks = GetParam().num_tasks;
  util::Rng rng(GetParam().seed);
  const TaskGraph g = generate_tgff_graph(o, rng);
  EXPECT_EQ(g.num_tasks(), o.num_tasks);
  EXPECT_NO_THROW(g.validate());  // includes acyclicity
}

TEST_P(TgffGraphTest, ConnectedFromSingleRoot) {
  TgffOptions o;
  o.num_tasks = GetParam().num_tasks;
  util::Rng rng(GetParam().seed);
  const TaskGraph g = generate_tgff_graph(o, rng);
  // Every non-root task was created with at least one predecessor, so the
  // graph is weakly connected with task 0 as the unique source root...
  // unless a restart attached elsewhere — but everyone still has parents.
  std::size_t parentless = 0;
  for (std::size_t t = 0; t < g.num_tasks(); ++t) {
    if (g.predecessors(t).empty()) ++parentless;
  }
  EXPECT_EQ(parentless, 1u);
}

TEST_P(TgffGraphTest, DegreesRespectCaps) {
  TgffOptions o;
  o.num_tasks = GetParam().num_tasks;
  o.max_out_degree = 3;
  o.max_in_degree = 3;
  util::Rng rng(GetParam().seed);
  const TaskGraph g = generate_tgff_graph(o, rng);
  for (std::size_t t = 0; t < g.num_tasks(); ++t) {
    EXPECT_LE(g.predecessors(t).size(), o.max_in_degree);
    // Out-degree may exceed the cap by the (rare) restart fallback by at
    // most one.
    EXPECT_LE(g.successors(t).size(), o.max_out_degree + 1);
  }
}

TEST_P(TgffGraphTest, TypeCoverageWhenEnoughTasks) {
  TgffOptions o;
  o.num_tasks = GetParam().num_tasks;
  o.num_types = 10;
  util::Rng rng(GetParam().seed);
  const TaskGraph g = generate_tgff_graph(o, rng);
  std::set<std::size_t> types;
  for (const Task& t : g.tasks()) {
    EXPECT_LT(t.type, o.num_types);
    types.insert(t.type);
  }
  if (o.num_tasks >= o.num_types) {
    EXPECT_EQ(types.size(), o.num_types);
  }
}

TEST_P(TgffGraphTest, CriticalityWithinBounds) {
  TgffOptions o;
  o.num_tasks = GetParam().num_tasks;
  util::Rng rng(GetParam().seed);
  const TaskGraph g = generate_tgff_graph(o, rng);
  for (const Task& t : g.tasks()) {
    EXPECT_GE(t.criticality, o.criticality_min);
    EXPECT_LE(t.criticality, o.criticality_max);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, TgffGraphTest,
    ::testing::Values(TgffCase{10, 1}, TgffCase{20, 2}, TgffCase{30, 3},
                      TgffCase{50, 4}, TgffCase{100, 5}, TgffCase{10, 99},
                      TgffCase{100, 77}, TgffCase{1, 1}, TgffCase{2, 1}));

TEST(TgffGraphTest, DeterministicForSeed) {
  TgffOptions o;
  o.num_tasks = 40;
  util::Rng rng_a(123), rng_b(123);
  const TaskGraph a = generate_tgff_graph(o, rng_a);
  const TaskGraph b = generate_tgff_graph(o, rng_b);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.edges(), b.edges());
  for (std::size_t t = 0; t < a.num_tasks(); ++t) {
    EXPECT_EQ(a.task(t).type, b.task(t).type);
    EXPECT_EQ(a.task(t).criticality, b.task(t).criticality);
  }
}

TEST(TgffGraphTest, DifferentSeedsProduceDifferentGraphs) {
  TgffOptions o;
  o.num_tasks = 40;
  util::Rng rng_a(1), rng_b(2);
  const TaskGraph a = generate_tgff_graph(o, rng_a);
  const TaskGraph b = generate_tgff_graph(o, rng_b);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(TgffGraphTest, DepthScalesWithFanOut) {
  // Wider fan-out should produce shallower graphs on average.
  TgffOptions narrow;
  narrow.num_tasks = 60;
  narrow.fan_out_mean = 1.1;
  narrow.cross_edge_prob = 0.0;
  TgffOptions wide = narrow;
  wide.fan_out_mean = 3.0;
  wide.max_out_degree = 5;

  double narrow_depth = 0.0, wide_depth = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Rng rng_n(seed), rng_w(seed);
    narrow_depth +=
        static_cast<double>(generate_tgff_graph(narrow, rng_n).critical_path_length());
    wide_depth +=
        static_cast<double>(generate_tgff_graph(wide, rng_w).critical_path_length());
  }
  EXPECT_GT(narrow_depth, wide_depth);
}

}  // namespace
}  // namespace clrearly::app
