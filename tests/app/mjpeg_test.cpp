#include "app/mjpeg.hpp"

#include <gtest/gtest.h>

#include "core/dse.hpp"
#include "core/experiment.hpp"
#include "platform/architecture.hpp"
#include "util/log.hpp"

namespace clrearly::app {
namespace {

TEST(MjpegTest, StructureIsTheEncoderPipeline) {
  const Application mjpeg = make_mjpeg_application();
  EXPECT_EQ(mjpeg.graph.num_tasks(), 9u);
  EXPECT_EQ(mjpeg.graph.num_types(), 5u);
  EXPECT_EQ(mjpeg.graph.num_edges(), 10u);
  EXPECT_NO_THROW(mjpeg.validate());

  // Single source (color conversion), single sink (Huffman).
  EXPECT_EQ(mjpeg.graph.sources(), std::vector<std::size_t>{0});
  EXPECT_EQ(mjpeg.graph.sinks(), std::vector<std::size_t>{8});
  // Color conversion fans out to three DCTs; RLE joins three quantizers.
  EXPECT_EQ(mjpeg.graph.successors(0).size(), 3u);
  EXPECT_EQ(mjpeg.graph.predecessors(7).size(), 3u);
  // Depth: CSC -> DCT -> Quant -> RLE -> Huffman.
  EXPECT_EQ(mjpeg.graph.critical_path_length(), 5u);
}

TEST(MjpegTest, EntropyStagesAreMostCritical) {
  const Application mjpeg = make_mjpeg_application();
  const auto zeta = mjpeg.graph.normalized_criticality();
  // Huffman is the single most critical task; RLE second.
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_GT(zeta[8], zeta[t]);
  }
  for (std::size_t t = 0; t < 7; ++t) {
    EXPECT_GT(zeta[7], zeta[t]);
  }
}

TEST(MjpegTest, OnlyParallelStagesHaveFabricImpls) {
  const Application mjpeg = make_mjpeg_application();
  auto has_fabric = [&](std::size_t type) {
    for (const auto& impl : mjpeg.impls[type]) {
      if (impl.target == platform::PeClass::kReconfigurableRegion) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_fabric(kColorConvert));
  EXPECT_TRUE(has_fabric(kDct));
  EXPECT_FALSE(has_fabric(kQuantize));
  EXPECT_FALSE(has_fabric(kZigZagRle));
  EXPECT_FALSE(has_fabric(kHuffman));  // data-dependent control flow
}

TEST(MjpegTest, ChromaEdgesCarryLessData) {
  const Application mjpeg = make_mjpeg_application();
  const app::Edge* luma = mjpeg.graph.find_edge(0, 1);
  const app::Edge* chroma = mjpeg.graph.find_edge(0, 2);
  ASSERT_NE(luma, nullptr);
  ASSERT_NE(chroma, nullptr);
  EXPECT_GT(luma->data_kb, chroma->data_kb);
}

TEST(MjpegTest, FullDseFlowProducesFeasibleFront) {
  util::set_log_level(util::LogLevel::Warn);
  core::DseOptions options;
  options.ga.population_size = 32;
  options.ga.generations = 12;
  options.seed = 6;
  options.spec.min_functional_rel = 0.99;

  const core::DseMethodology dse(make_mjpeg_application(),
                                 platform::Architecture::paper_default(),
                                 core::bench_system_analyzer());
  const core::DseOutcome outcome = dse.run_proposed(options);
  ASSERT_FALSE(outcome.front.empty());
  for (const auto& p : outcome.front) {
    EXPECT_GT(p[0], 0.0);
    EXPECT_LE(p[1], 0.01 + 1e-9);  // the spec bounds the front's error
  }
}

TEST(MjpegTest, ProtectionConcentratesOnCriticalStages) {
  // In the fastest feasible design, the DSE should spend its protection
  // budget where criticality is: the entropy stages get at least as much
  // configured protection (non-baseline CLR methods) as the pixel stages.
  util::set_log_level(util::LogLevel::Warn);
  core::DseOptions options;
  options.ga.population_size = 48;
  options.ga.generations = 25;
  options.seed = 8;
  options.spec.min_functional_rel = 0.995;

  const Application mjpeg = make_mjpeg_application();
  const core::DseMethodology dse(mjpeg,
                                 platform::Architecture::paper_default(),
                                 core::bench_system_analyzer());
  const core::DseOutcome outcome = dse.run_proposed(options);
  ASSERT_FALSE(outcome.front.empty());

  const core::ClrMappingProblem problem(
      mjpeg, platform::Architecture::paper_default(),
      core::bench_system_analyzer(), core::SystemObjectives{}, options.spec);
  std::size_t fastest = 0;
  for (std::size_t i = 1; i < outcome.front.size(); ++i) {
    if (outcome.front[i][0] < outcome.front[fastest][0]) fastest = i;
  }
  const auto report = problem.report(outcome.front_genomes[fastest]);
  auto protection_level = [](const core::ClrMappingProblem::TaskChoice& c) {
    return (c.config.hw > 0 ? 1 : 0) + (c.config.ssw > 0 ? 1 : 0) +
           (c.config.asw > 0 ? 1 : 0);
  };
  // Huffman (task 8) must carry some protection under a 99.5% floor.
  EXPECT_GT(protection_level(report[8]), 0);
}

}  // namespace
}  // namespace clrearly::app
