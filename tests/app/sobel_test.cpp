#include "app/sobel.hpp"

#include <gtest/gtest.h>

namespace clrearly::app {
namespace {

TEST(SobelTest, StructureMatchesFig2b) {
  const Application sobel = make_sobel_application();
  // Five tasks of four types, five edges.
  EXPECT_EQ(sobel.graph.num_tasks(), 5u);
  EXPECT_EQ(sobel.graph.num_types(), 4u);
  EXPECT_EQ(sobel.graph.num_edges(), 5u);
  EXPECT_NO_THROW(sobel.validate());
}

TEST(SobelTest, GradientTasksShareType) {
  const Application sobel = make_sobel_application();
  EXPECT_EQ(sobel.graph.task(2).type, sobel.graph.task(3).type);
  EXPECT_EQ(sobel.graph.task(2).type, static_cast<std::size_t>(kSobGrad));
}

TEST(SobelTest, PipelineShape) {
  const Application sobel = make_sobel_application();
  // GScale is the unique source; CombThr the unique sink.
  EXPECT_EQ(sobel.graph.sources(), std::vector<std::size_t>{0});
  EXPECT_EQ(sobel.graph.sinks(), std::vector<std::size_t>{4});
  // Smoothing fans out to both gradient kernels.
  EXPECT_EQ(sobel.graph.successors(1).size(), 2u);
  // Both gradients join at the combiner.
  EXPECT_EQ(sobel.graph.predecessors(4).size(), 2u);
  // Longest path: GScale -> GSmth -> SobGrad -> CombThr.
  EXPECT_EQ(sobel.graph.critical_path_length(), 4u);
}

TEST(SobelTest, EveryTypeHasProcessorAndFabricImpl) {
  const Application sobel = make_sobel_application();
  for (std::size_t type = 0; type < 4; ++type) {
    ASSERT_EQ(sobel.impls[type].size(), 2u) << "type " << type;
    bool has_proc = false, has_fabric = false;
    for (const auto& impl : sobel.impls[type]) {
      if (impl.target == platform::PeClass::kEmbeddedProcessor) {
        has_proc = true;
      }
      if (impl.target == platform::PeClass::kReconfigurableRegion) {
        has_fabric = true;
      }
    }
    EXPECT_TRUE(has_proc) << "type " << type;
    EXPECT_TRUE(has_fabric) << "type " << type;
  }
}

TEST(SobelTest, FabricImplsAreFasterButHotter) {
  const Application sobel = make_sobel_application();
  for (std::size_t type = 0; type < 4; ++type) {
    const auto& proc = sobel.impls[type][0];
    const auto& fabric = sobel.impls[type][1];
    EXPECT_LT(fabric.base_exec_time_us, proc.base_exec_time_us);
    EXPECT_GT(fabric.base_power_w, proc.base_power_w);
  }
}

TEST(SobelTest, CombinerIsMostCritical) {
  const Application sobel = make_sobel_application();
  const auto zeta = sobel.graph.normalized_criticality();
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_GT(zeta[4], zeta[t]);
  }
}

TEST(SobelTest, DeterministicConstruction) {
  const Application a = make_sobel_application();
  const Application b = make_sobel_application();
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.impls[0][0].base_exec_time_us, b.impls[0][0].base_exec_time_us);
  EXPECT_EQ(a.period_us, b.period_us);
}

}  // namespace
}  // namespace clrearly::app
