#include "app/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace clrearly::app {
namespace {

TaskGraph diamond() {
  // 0 -> {1, 2} -> 3
  TaskGraph g;
  g.add_task(0, "a");
  g.add_task(1, "b");
  g.add_task(1, "c");
  g.add_task(2, "d");
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(TaskGraphTest, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(0, "t0"), 0u);
  EXPECT_EQ(g.add_task(1, "t1"), 1u);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.task(1).name, "t1");
  EXPECT_EQ(g.task(1).type, 1u);
}

TEST(TaskGraphTest, NumTypesIsMaxPlusOne) {
  TaskGraph g;
  g.add_task(0, "a");
  g.add_task(5, "b");
  EXPECT_EQ(g.num_types(), 6u);
}

TEST(TaskGraphTest, NegativeCriticalityRejected) {
  TaskGraph g;
  EXPECT_THROW(g.add_task(0, "t", -1.0), std::invalid_argument);
}

TEST(TaskGraphTest, EdgeValidation) {
  TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate silently ignored
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(TaskGraphTest, AdjacencyTracksEdges) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

TEST(TaskGraphTest, SourcesAndSinks) {
  const TaskGraph g = diamond();
  EXPECT_EQ(g.sources(), std::vector<std::size_t>{0});
  EXPECT_EQ(g.sinks(), std::vector<std::size_t>{3});
}

TEST(TaskGraphTest, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const Edge& e : g.edges()) {
    EXPECT_LT(pos[e.src], pos[e.dst]);
  }
}

TEST(TaskGraphTest, CycleDetected) {
  TaskGraph g;
  g.add_task(0, "a");
  g.add_task(0, "b");
  g.add_task(0, "c");
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_THROW(g.topological_order(), std::invalid_argument);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraphTest, CriticalPathLength) {
  EXPECT_EQ(diamond().critical_path_length(), 3u);
  TaskGraph chain;
  chain.add_task(0, "a");
  chain.add_task(0, "b");
  chain.add_task(0, "c");
  chain.add_edge(0, 1);
  chain.add_edge(1, 2);
  EXPECT_EQ(chain.critical_path_length(), 3u);
  TaskGraph isolated;
  isolated.add_task(0, "only");
  EXPECT_EQ(isolated.critical_path_length(), 1u);
}

TEST(TaskGraphTest, NormalizedCriticalitySumsToOne) {
  TaskGraph g;
  g.add_task(0, "a", 1.0);
  g.add_task(0, "b", 3.0);
  const auto zeta = g.normalized_criticality();
  EXPECT_DOUBLE_EQ(zeta[0], 0.25);
  EXPECT_DOUBLE_EQ(zeta[1], 0.75);
}

TEST(TaskGraphTest, AllZeroCriticalityFallsBackToUniform) {
  TaskGraph g;
  g.add_task(0, "a", 0.0);
  g.add_task(0, "b", 0.0);
  const auto zeta = g.normalized_criticality();
  EXPECT_DOUBLE_EQ(zeta[0], 0.5);
  EXPECT_DOUBLE_EQ(zeta[1], 0.5);
}

TEST(TaskGraphTest, EmptyGraphFailsValidation) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraphTest, AccessorsThrowOutOfRange) {
  const TaskGraph g = diamond();
  EXPECT_THROW(g.task(10), std::out_of_range);
  EXPECT_THROW(g.predecessors(10), std::out_of_range);
  EXPECT_THROW(g.successors(10), std::out_of_range);
}

// --- Application -------------------------------------------------------------

reliability::BaseImpl tiny_impl() {
  reliability::BaseImpl impl;
  impl.name = "i";
  impl.base_exec_time_us = 10.0;
  impl.base_power_w = 0.1;
  return impl;
}

TEST(ApplicationTest, ValidApplicationPasses) {
  Application a;
  a.graph = diamond();
  a.impls.assign(3, {tiny_impl()});
  a.period_us = 1e4;
  EXPECT_NO_THROW(a.validate());
}

TEST(ApplicationTest, MissingImplSetRejected) {
  Application a;
  a.graph = diamond();        // uses types 0..2
  a.impls.assign(2, {tiny_impl()});
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(ApplicationTest, EmptyImplSetRejected) {
  Application a;
  a.graph = diamond();
  a.impls.assign(3, {tiny_impl()});
  a.impls[1].clear();
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(ApplicationTest, NonPositivePeriodRejected) {
  Application a;
  a.graph = diamond();
  a.impls.assign(3, {tiny_impl()});
  a.period_us = 0.0;
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace clrearly::app
