#include "app/characterizer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clrearly::app {
namespace {

TEST(CharacterizerOptionsTest, Validation) {
  {
    CharacterizerOptions o;
    o.exec_time_median_us = 0.0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    CharacterizerOptions o;
    o.proc_power_max_w = o.proc_power_min_w / 2.0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    CharacterizerOptions o;
    o.fabric_speedup_min = 0.5;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    CharacterizerOptions o;
    o.fabric_availability = 2.0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
  {
    CharacterizerOptions o;
    o.software_variants = 0;
    EXPECT_THROW(o.validate(), std::invalid_argument);
  }
}

TEST(CharacterizerTest, EveryTypeGetsProcessorImpl) {
  CharacterizerOptions o;
  util::Rng rng(7);
  const auto impls = characterize_types(10, o, rng);
  ASSERT_EQ(impls.size(), 10u);
  for (const auto& type_impls : impls) {
    ASSERT_FALSE(type_impls.empty());
    EXPECT_EQ(type_impls[0].target, platform::PeClass::kEmbeddedProcessor);
    for (const auto& impl : type_impls) {
      EXPECT_NO_THROW(impl.validate());
    }
  }
}

TEST(CharacterizerTest, FullFabricAvailabilityGivesFabricImplEverywhere) {
  CharacterizerOptions o;
  o.fabric_availability = 1.0;
  util::Rng rng(8);
  const auto impls = characterize_types(10, o, rng);
  for (const auto& type_impls : impls) {
    bool has_fabric = false;
    for (const auto& impl : type_impls) {
      if (impl.target == platform::PeClass::kReconfigurableRegion) {
        has_fabric = true;
      }
    }
    EXPECT_TRUE(has_fabric);
  }
}

TEST(CharacterizerTest, ZeroFabricAvailabilityGivesNone) {
  CharacterizerOptions o;
  o.fabric_availability = 0.0;
  util::Rng rng(9);
  const auto impls = characterize_types(10, o, rng);
  for (const auto& type_impls : impls) {
    for (const auto& impl : type_impls) {
      EXPECT_EQ(impl.target, platform::PeClass::kEmbeddedProcessor);
    }
  }
}

TEST(CharacterizerTest, FabricSpeedupAndPowerWithinConfiguredRanges) {
  CharacterizerOptions o;
  util::Rng rng(10);
  const auto impls = characterize_types(20, o, rng);
  for (const auto& type_impls : impls) {
    const auto& sw = type_impls[0];
    for (const auto& impl : type_impls) {
      if (impl.target != platform::PeClass::kReconfigurableRegion) continue;
      const double speedup = sw.base_exec_time_us / impl.base_exec_time_us;
      EXPECT_GE(speedup, o.fabric_speedup_min - 1e-9);
      EXPECT_LE(speedup, o.fabric_speedup_max + 1e-9);
      const double pf = impl.base_power_w / sw.base_power_w;
      EXPECT_GE(pf, o.fabric_power_factor_min - 1e-9);
      EXPECT_LE(pf, o.fabric_power_factor_max + 1e-9);
    }
  }
}

TEST(CharacterizerTest, SoftwareVariantsTradeTimeForPower) {
  CharacterizerOptions o;
  o.software_variants = 3;
  o.fabric_availability = 0.0;
  util::Rng rng(11);
  const auto impls = characterize_types(5, o, rng);
  for (const auto& type_impls : impls) {
    ASSERT_EQ(type_impls.size(), 3u);
    for (std::size_t v = 1; v < 3; ++v) {
      EXPECT_LT(type_impls[v].base_exec_time_us,
                type_impls[v - 1].base_exec_time_us);
      EXPECT_GT(type_impls[v].base_power_w, type_impls[v - 1].base_power_w);
    }
  }
}

TEST(CharacterizerTest, DeterministicForRngState) {
  CharacterizerOptions o;
  util::Rng a(42), b(42);
  const auto impls_a = characterize_types(8, o, a);
  const auto impls_b = characterize_types(8, o, b);
  for (std::size_t t = 0; t < 8; ++t) {
    ASSERT_EQ(impls_a[t].size(), impls_b[t].size());
    for (std::size_t i = 0; i < impls_a[t].size(); ++i) {
      EXPECT_EQ(impls_a[t][i].base_exec_time_us,
                impls_b[t][i].base_exec_time_us);
      EXPECT_EQ(impls_a[t][i].base_power_w, impls_b[t][i].base_power_w);
    }
  }
}

TEST(SyntheticApplicationTest, BuildsValidatedApplication) {
  const Application syn = make_synthetic_application(30, 10, 5);
  EXPECT_EQ(syn.graph.num_tasks(), 30u);
  EXPECT_LE(syn.graph.num_types(), 10u);
  EXPECT_NO_THROW(syn.validate());
  EXPECT_GT(syn.period_us, 0.0);
}

TEST(SyntheticApplicationTest, DeterministicForSeed) {
  const Application a = make_synthetic_application(25, 10, 3);
  const Application b = make_synthetic_application(25, 10, 3);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.period_us, b.period_us);
}

TEST(SyntheticApplicationTest, SmallTaskCountClampsTypes) {
  const Application tiny = make_synthetic_application(4, 10, 1);
  EXPECT_EQ(tiny.graph.num_tasks(), 4u);
  EXPECT_LE(tiny.graph.num_types(), 4u);
  EXPECT_NO_THROW(tiny.validate());
}

TEST(SyntheticApplicationTest, PeriodScalesWithWorkload) {
  const Application small = make_synthetic_application(10, 10, 7);
  const Application large = make_synthetic_application(100, 10, 7);
  EXPECT_GT(large.period_us, small.period_us);
}

}  // namespace
}  // namespace clrearly::app
