// Thread-pool contract tests: every index runs exactly once, results land
// in their own slots (the determinism contract the DSE layers rely on),
// exceptions propagate, nesting degrades to inline serial execution and the
// 1-thread pool never spawns.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace clrearly::util {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);

  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PerSlotResultsMatchSerialLoop) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::vector<double> parallel(kN), serial(kN);
  auto f = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k <= i % 97; ++k) acc += static_cast<double>(k) * 0.5;
    return acc;
  };
  pool.parallel_for(kN, [&](std::size_t i) { parallel[i] = f(i); });
  for (std::size_t i = 0; i < kN; ++i) serial[i] = f(i);
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPoolTest, ZeroIterationsIsANoop) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // unsynchronized on purpose: must be the caller
  });
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i % 7 == 3) {
                            throw std::runtime_error("boom at " +
                                                     std::to_string(i));
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The pool must still process a clean batch afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, SerialFallbackPropagatesException) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::invalid_argument("bad"); }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 32;
  std::vector<std::vector<int>> inner_hits(kOuter,
                                           std::vector<int>(kInner, 0));
  pool.parallel_for(kOuter, [&](std::size_t o) {
    const std::thread::id executor = std::this_thread::get_id();
    // A nested call must run serially on the same thread — no handoff back
    // into the queue (which could deadlock), no concurrent inner writers.
    pool.parallel_for(kInner, [&, executor](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), executor);
      inner_hits[o][i] += 1;
    });
  });
  for (const auto& row : inner_hits) {
    for (int hits : row) EXPECT_EQ(hits, 1);
  }
}

TEST(ThreadPoolTest, NestedCallOnGlobalPoolIsAlsoInline) {
  set_thread_count(4);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    const std::thread::id executor = std::this_thread::get_id();
    parallel_for(4, [&, executor](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), executor);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);
  set_thread_count(0);
}

TEST(ThreadPoolTest, MoreIndicesThanThreadsAndViceVersa) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> few(3);
  pool.parallel_for(3, [&](std::size_t i) { few[i].fetch_add(1); });
  for (auto& hit : few) EXPECT_EQ(hit.load(), 1);

  std::vector<std::atomic<int>> many(10000);
  pool.parallel_for(10000, [&](std::size_t i) { many[i].fetch_add(1); });
  for (auto& hit : many) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ThreadEnvParsingRejectsGarbageAndNegatives) {
  // "-1" must defer, not wrap to ULONG_MAX worth of threads.
  EXPECT_EQ(detail::parse_thread_env(nullptr), 0u);
  EXPECT_EQ(detail::parse_thread_env(""), 0u);
  EXPECT_EQ(detail::parse_thread_env("-1"), 0u);
  EXPECT_EQ(detail::parse_thread_env("-"), 0u);
  EXPECT_EQ(detail::parse_thread_env("4x"), 0u);
  EXPECT_EQ(detail::parse_thread_env("x4"), 0u);
  EXPECT_EQ(detail::parse_thread_env(" 4"), 0u);
  EXPECT_EQ(detail::parse_thread_env("0"), 0u);
  EXPECT_EQ(detail::parse_thread_env("4"), 4u);
  EXPECT_EQ(detail::parse_thread_env("16"), 16u);
}

TEST(ThreadPoolTest, SetThreadCountOverridesEnvironment) {
  // set_thread_count wins over CLREARLY_THREADS; 0 falls back to hardware.
  set_thread_count(3);
  EXPECT_EQ(effective_thread_count(), 3u);
  set_thread_count(1);
  EXPECT_EQ(effective_thread_count(), 1u);
  EXPECT_EQ(global_pool().thread_count(), 1u);
  set_thread_count(0);
  EXPECT_GE(effective_thread_count(), 1u);
}

TEST(ThreadPoolTest, GlobalPoolTracksConfiguredCount) {
  set_thread_count(2);
  EXPECT_EQ(global_pool().thread_count(), 2u);
  set_thread_count(5);
  EXPECT_EQ(global_pool().thread_count(), 5u);
  std::atomic<int> count{0};
  parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
  set_thread_count(0);
}

TEST(ThreadPoolTest, ConcurrentTopLevelCallsShareTheWorkers) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<int> a(kN, 0), b(kN, 0);
  std::thread other(
      [&] { pool.parallel_for(kN, [&](std::size_t i) { a[i] += 1; }); });
  pool.parallel_for(kN, [&](std::size_t i) { b[i] += 1; });
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(a[i], 1);
    EXPECT_EQ(b[i], 1);
  }
}

}  // namespace
}  // namespace clrearly::util
