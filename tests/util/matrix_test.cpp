#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::util {
namespace {

TEST(MatrixTest, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, SizedConstructorZeroInitializes) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(m(i, j), 0.0);
    }
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(0, 0), 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(MatrixTest, RaggedInitializerListThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixTest, AdditionAndSubtraction) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(1, 0), 33.0);
  const Matrix diff = b - a;
  EXPECT_EQ(diff(0, 1), 18.0);
}

TEST(MatrixTest, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(MatrixTest, ScalarMultiply) {
  Matrix a{{1, -2}, {0, 4}};
  const Matrix scaled = 2.0 * a;
  EXPECT_EQ(scaled(0, 1), -4.0);
  EXPECT_EQ(scaled(1, 1), 8.0);
}

TEST(MatrixTest, MatrixProductHandComputed) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix p = a * b;
  EXPECT_EQ(p(0, 0), 19.0);
  EXPECT_EQ(p(0, 1), 22.0);
  EXPECT_EQ(p(1, 0), 43.0);
  EXPECT_EQ(p(1, 1), 50.0);
}

TEST(MatrixTest, ProductDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(MatrixTest, ProductWithIdentityIsNoop) {
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix id = Matrix::identity(3);
  EXPECT_EQ(a * id, a);
  EXPECT_EQ(id * a, a);
}

TEST(MatrixTest, ApplyMatchesManualMatVec) {
  Matrix a{{1, 2}, {3, 4}};
  const std::vector<double> v{5.0, 6.0};
  const std::vector<double> out = a.apply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 17.0);
  EXPECT_EQ(out[1], 39.0);
}

TEST(MatrixTest, ApplyLengthMismatchThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(a.apply({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(MatrixTest, BlockExtractsSubmatrix) {
  Matrix a{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = a.block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), 5.0);
  EXPECT_EQ(b(1, 1), 9.0);
  EXPECT_THROW(a.block(2, 2, 2, 2), std::out_of_range);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {2, 4}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, a), 0.0);
}

TEST(MatrixTest, RowSums) {
  Matrix a{{1, 2}, {3, -4}};
  const auto sums = a.row_sums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], -1.0);
}

TEST(MatrixTest, StreamOutputContainsRows) {
  Matrix a{{1, 2}};
  std::ostringstream oss;
  oss << a;
  EXPECT_NE(oss.str().find("[1, 2]"), std::string::npos);
}

// Property: (A*B)*C == A*(B*C) for random small matrices.
TEST(MatrixProperty, ProductIsAssociative) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix a(3, 4), b(4, 2), c(2, 5);
    for (auto* m : {&a, &b, &c}) {
      for (std::size_t i = 0; i < m->rows(); ++i) {
        for (std::size_t j = 0; j < m->cols(); ++j) {
          (*m)(i, j) = rng.uniform(-2.0, 2.0);
        }
      }
    }
    const Matrix left = (a * b) * c;
    const Matrix right = a * (b * c);
    EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-12);
  }
}

}  // namespace
}  // namespace clrearly::util
