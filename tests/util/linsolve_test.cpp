#include "util/linsolve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::util {
namespace {

TEST(LinSolveTest, SolvesHandComputedSystem) {
  // 2x + y = 5, x + 3y = 10  ->  x = 1, y = 3
  const Matrix a{{2, 1}, {1, 3}};
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinSolveTest, SolveRequiresMatchingRhs) {
  LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(LinSolveTest, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(LinSolveTest, SingularThrows) {
  const Matrix singular{{1, 2}, {2, 4}};
  EXPECT_THROW(LuDecomposition{singular}, std::domain_error);
}

TEST(LinSolveTest, PivotingHandlesZeroLeadingEntry) {
  // Requires a row swap to factor.
  const Matrix a{{0, 1}, {1, 0}};
  const auto x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinSolveTest, InverseOfIdentityIsIdentity) {
  const Matrix inv = invert(Matrix::identity(4));
  EXPECT_LT(Matrix::max_abs_diff(inv, Matrix::identity(4)), 1e-14);
}

TEST(LinSolveTest, InverseHandComputed) {
  const Matrix a{{4, 7}, {2, 6}};
  const Matrix inv = invert(a);
  // det = 10; inverse = [[0.6, -0.7], [-0.2, 0.4]]
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(LinSolveTest, DeterminantHandComputed) {
  LuDecomposition lu(Matrix{{4, 7}, {2, 6}});
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(LinSolveTest, DeterminantSignWithPermutation) {
  LuDecomposition lu(Matrix{{0, 1}, {1, 0}});
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(LinSolveTest, MatrixRhsSolve) {
  const Matrix a{{2, 0}, {0, 4}};
  const Matrix b{{2, 4}, {8, 12}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

class LinSolveRandomTest : public ::testing::TestWithParam<std::size_t> {};

// Property: A * A^{-1} == I for random diagonally dominant matrices.
TEST_P(LinSolveRandomTest, InverseRoundTrips) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_mass = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_mass += std::abs(a(i, j));
    }
    a(i, i) += row_mass + 1.0;  // diagonal dominance -> well conditioned
  }
  const Matrix inv = invert(a);
  EXPECT_LT(Matrix::max_abs_diff(a * inv, Matrix::identity(n)), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(inv * a, Matrix::identity(n)), 1e-10);
}

// Property: solve() agrees with inverse-based solution.
TEST_P(LinSolveRandomTest, SolveMatchesInverseApply) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-5.0, 5.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 1.0;
  }
  const LuDecomposition lu(a);
  const auto x = lu.solve(b);
  const auto x_via_inverse = lu.inverse().apply(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_via_inverse[i], 1e-10);
  }
  // Residual check against the original system.
  const auto ax = a.apply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinSolveRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace clrearly::util
