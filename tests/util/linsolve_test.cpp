#include "util/linsolve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::util {
namespace {

TEST(LinSolveTest, SolvesHandComputedSystem) {
  // 2x + y = 5, x + 3y = 10  ->  x = 1, y = 3
  const Matrix a{{2, 1}, {1, 3}};
  const auto x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinSolveTest, SolveRequiresMatchingRhs) {
  LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW(lu.solve(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(LinSolveTest, NonSquareThrows) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), std::invalid_argument);
}

TEST(LinSolveTest, SingularThrows) {
  const Matrix singular{{1, 2}, {2, 4}};
  EXPECT_THROW(LuDecomposition{singular}, std::domain_error);
}

TEST(LinSolveTest, PivotingHandlesZeroLeadingEntry) {
  // Requires a row swap to factor.
  const Matrix a{{0, 1}, {1, 0}};
  const auto x = solve_linear(a, {3.0, 7.0});
  EXPECT_NEAR(x[0], 7.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinSolveTest, InverseOfIdentityIsIdentity) {
  const Matrix inv = invert(Matrix::identity(4));
  EXPECT_LT(Matrix::max_abs_diff(inv, Matrix::identity(4)), 1e-14);
}

TEST(LinSolveTest, InverseHandComputed) {
  const Matrix a{{4, 7}, {2, 6}};
  const Matrix inv = invert(a);
  // det = 10; inverse = [[0.6, -0.7], [-0.2, 0.4]]
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(LinSolveTest, DeterminantHandComputed) {
  LuDecomposition lu(Matrix{{4, 7}, {2, 6}});
  EXPECT_NEAR(lu.determinant(), 10.0, 1e-12);
}

TEST(LinSolveTest, DeterminantSignWithPermutation) {
  LuDecomposition lu(Matrix{{0, 1}, {1, 0}});
  EXPECT_NEAR(lu.determinant(), -1.0, 1e-12);
}

TEST(LinSolveTest, MatrixRhsSolve) {
  const Matrix a{{2, 0}, {0, 4}};
  const Matrix b{{2, 4}, {8, 12}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

TEST(LinSolveTest, OneByOneSystem) {
  LuDecomposition lu(Matrix{{4.0}});
  const auto x = lu.solve(std::vector<double>{8.0});
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(lu.determinant(), 4.0);
  const auto xt = lu.solve_transposed(std::vector<double>{8.0});
  EXPECT_DOUBLE_EQ(xt[0], 2.0);
}

TEST(LinSolveTest, OneByOneNearZeroPivotThrows) {
  // A 1x1 "matrix" below the relative singularity threshold must be
  // rejected, not divided through.
  EXPECT_THROW(LuDecomposition(Matrix{{1e-14}}), std::domain_error);
  EXPECT_THROW(LuDecomposition(Matrix{{0.0}}), std::domain_error);
}

TEST(LinSolveTest, NearSingularButAboveToleranceStaysAccurate) {
  // Condition number ~1e8 — far from the 1e-13 relative pivot cutoff, but
  // close enough to stress the substitution accuracy.
  const double eps = 1e-8;
  const Matrix a{{1.0, 1.0}, {1.0, 1.0 + eps}};
  const auto x = solve_linear(a, {2.0, 2.0 + eps});  // exact solution (1, 1)
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 1.0, 1e-6);
}

TEST(LinSolveTest, SolveIntoMatchesSolveBitExactly) {
  const Matrix a{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}};
  const LuDecomposition lu(a);
  const std::vector<double> b{5.0, 10.0, 3.0};
  const auto x = lu.solve(b);
  std::vector<double> x_into(17, -1.0);  // wrong size: must be resized
  lu.solve_into(b, x_into);
  ASSERT_EQ(x_into.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(x[i], x_into[i]);
}

TEST(LinSolveTest, TransposedSolveMatchesTransposedMatrix) {
  const Matrix a{{0, 1, 2}, {3, 1, 0}, {1, 0, 5}};  // forces pivoting
  const std::vector<double> b{1.0, -2.0, 4.0};
  const auto x = LuDecomposition(a).solve_transposed(b);
  const auto x_ref = LuDecomposition(a.transposed()).solve(b);
  ASSERT_EQ(x.size(), x_ref.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-12);
}

TEST(LinSolveTest, TransposedSolveExtractsInverseRow) {
  // Row i of A^{-1} is the adjoint solution for e_i — the identity the
  // chain kernel's single-solve path rests on.
  const Matrix a{{4, 7, 1}, {2, 6, 0}, {1, 1, 3}};
  const LuDecomposition lu(a);
  const Matrix inv = lu.inverse();
  for (std::size_t row = 0; row < 3; ++row) {
    std::vector<double> e(3, 0.0);
    e[row] = 1.0;
    const auto x = lu.solve_transposed(e);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(x[j], inv(row, j), 1e-12);
  }
}

TEST(LinSolveTest, FactorReusesDecompositionObject) {
  LuDecomposition lu;
  EXPECT_EQ(lu.dim(), 0u);
  lu.factor(Matrix{{2, 0}, {0, 4}});
  auto x = lu.solve(std::vector<double>{2.0, 8.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  // Refactor with a different matrix (and a permutation): results must match
  // a fresh decomposition, and perm_sign must have been reset.
  const Matrix b{{0, 1}, {1, 0}};
  lu.factor(b);
  EXPECT_NEAR(lu.determinant(), LuDecomposition(b).determinant(), 0.0);
  x = lu.solve(std::vector<double>{3.0, 7.0});
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  EXPECT_DOUBLE_EQ(x[1], 3.0);
  // Shrinking refactor: 2x2 object down to 1x1.
  lu.factor(Matrix{{5.0}});
  EXPECT_EQ(lu.dim(), 1u);
  EXPECT_DOUBLE_EQ(lu.solve(std::vector<double>{10.0})[0], 2.0);
}

TEST(LinSolveTest, TransposedSolveIntoIsAllocationCompatible) {
  const Matrix a{{2, 1}, {1, 3}};
  const LuDecomposition lu(a);
  const std::vector<double> b{5.0, 10.0};
  std::vector<double> x, scratch;
  lu.solve_transposed_into(b, x, scratch);
  const auto x_ref = lu.solve_transposed(b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_EQ(x[0], x_ref[0]);
  EXPECT_EQ(x[1], x_ref[1]);
  // Reuse with warm buffers must give the same answer.
  std::vector<double> x2 = x;
  lu.solve_transposed_into(b, x2, scratch);
  EXPECT_EQ(x2[0], x[0]);
  EXPECT_EQ(x2[1], x[1]);
}

class LinSolveRandomTest : public ::testing::TestWithParam<std::size_t> {};

// Property: A * A^{-1} == I for random diagonally dominant matrices.
TEST_P(LinSolveRandomTest, InverseRoundTrips) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double row_mass = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0);
      row_mass += std::abs(a(i, j));
    }
    a(i, i) += row_mass + 1.0;  // diagonal dominance -> well conditioned
  }
  const Matrix inv = invert(a);
  EXPECT_LT(Matrix::max_abs_diff(a * inv, Matrix::identity(n)), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(inv * a, Matrix::identity(n)), 1e-10);
}

// Property: solve() agrees with inverse-based solution.
TEST_P(LinSolveRandomTest, SolveMatchesInverseApply) {
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  Matrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-5.0, 5.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 1.0;
  }
  const LuDecomposition lu(a);
  const auto x = lu.solve(b);
  const auto x_via_inverse = lu.inverse().apply(b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], x_via_inverse[i], 1e-10);
  }
  // Residual check against the original system.
  const auto ax = a.apply(x);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-9);
  }
}

// Property: the adjoint solve for e_i reproduces row i of the inverse.
TEST_P(LinSolveRandomTest, TransposedSolveMatchesInverseRows) {
  const std::size_t n = GetParam();
  Rng rng(3000 + n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n) + 1.0;
  }
  const LuDecomposition lu(a);
  const Matrix inv = lu.inverse();
  std::vector<double> e(n, 0.0), x, scratch;
  for (std::size_t row = 0; row < n; ++row) {
    std::fill(e.begin(), e.end(), 0.0);
    e[row] = 1.0;
    lu.solve_transposed_into(e, x, scratch);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(x[j], inv(row, j), 1e-10) << "row " << row << " col " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinSolveRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace clrearly::util
