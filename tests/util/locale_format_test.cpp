// Regression tests for locale-dependent number formatting. The CSV and
// JSON writers used to go through snprintf("%.17g") and the CLI through
// std::stod, all of which honour LC_NUMERIC — under de_DE.UTF-8 a double
// rendered as "0,5" and corrupted every results file. The formatters now
// use std::to_chars/std::from_chars, which are locale-independent by
// definition; these tests pin that by running the formatting under a
// comma-decimal locale. Skipped when the system has no such locale
// installed (CI generates de_DE.UTF-8 for one ctest shard).
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"

namespace clrearly::util {
namespace {

/// Switch LC_ALL to a comma-decimal locale; nullptr when none exists.
const char* set_comma_locale() {
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      // Only trust locales that actually flip the decimal separator.
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.1f", 0.5);
      if (std::strchr(buffer, ',') != nullptr) return name;
    }
  }
  std::setlocale(LC_ALL, "C");
  return nullptr;
}

class LocaleFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (set_comma_locale() == nullptr) {
      GTEST_SKIP() << "no comma-decimal locale installed";
    }
  }
  void TearDown() override { std::setlocale(LC_ALL, "C"); }
};

TEST_F(LocaleFormatTest, CsvDoublesUseDotDecimalPoint) {
  const std::string path = ::testing::TempDir() + "locale_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.field("label").field(0.5).field(1234.0625).end_row();
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "label,0.5,1234.0625");
  EXPECT_EQ(line.find(','), 5u);  // separators only, no decimal commas
}

TEST_F(LocaleFormatTest, FormatCompactIsLocaleIndependent) {
  EXPECT_EQ(format_compact(0.5), "0.5");
  EXPECT_EQ(format_compact(-2.25), "-2.25");
}

TEST_F(LocaleFormatTest, JsonNumbersSerializeAndParseUnderCommaLocale) {
  JsonObject obj;
  obj["half"] = 0.5;
  obj["big"] = 1e100;
  obj["negative"] = -0.125;
  const std::string text = json_serialize(JsonValue(obj));
  EXPECT_EQ(text.find("0,5"), std::string::npos);

  const JsonValue parsed = json_parse(text);
  EXPECT_EQ(parsed.at("half").as_number(), 0.5);
  EXPECT_EQ(parsed.at("big").as_number(), 1e100);
  EXPECT_EQ(parsed.at("negative").as_number(), -0.125);

  // A '.' literal must parse as a fraction, not truncate at the point the
  // locale-aware strtod would have stopped.
  EXPECT_EQ(json_parse("3.25").as_number(), 3.25);
}

TEST_F(LocaleFormatTest, CliNumericOptionsParseUnderCommaLocale) {
  ArgParser parser("locale_test", "locale regression");
  parser.option("rate", "a double option", "0.0");
  parser.parse({"--rate", "0.75"});
  EXPECT_EQ(parser.get_number("rate"), 0.75);
}

TEST_F(LocaleFormatTest, DoubleRoundTripSurvivesCommaLocale) {
  // Full-precision round-trip through the CSV formatter: 17 significant
  // digits reproduce the exact bits of an unfriendly double.
  const double value = 0.1 + 0.2;  // 0.30000000000000004
  const std::string path = ::testing::TempDir() + "locale_roundtrip.csv";
  {
    CsvWriter csv(path);
    csv.field(value).end_row();
    csv.flush();
  }
  std::ifstream in(path);
  std::string cell;
  ASSERT_TRUE(std::getline(in, cell));
  EXPECT_NE(cell.find('.'), std::string::npos) << "formatted cell: " << cell;
  // Parse back locale-independently (stod would stop at the '.' here).
  EXPECT_EQ(json_parse(cell).as_number(), value) << "formatted cell: " << cell;
}

}  // namespace
}  // namespace clrearly::util
