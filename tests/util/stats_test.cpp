#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::util {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, HandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StatsTest, MeanOfVector) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), std::domain_error);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 15.0);
}

TEST(StatsTest, QuantileRejectsBadQ) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(StatsTest, PercentChange) {
  EXPECT_DOUBLE_EQ(percent_change(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_change(100.0, 50.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_change(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(percent_change(0.0, 1.0)));
}

}  // namespace
}  // namespace clrearly::util
