#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace clrearly::util {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(RunningStatsTest, HandComputedMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(StatsTest, MeanOfVector) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), std::domain_error);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(StatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.125), 15.0);
}

TEST(StatsTest, QuantileRejectsBadQ) {
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(StatsTest, PercentChange) {
  EXPECT_DOUBLE_EQ(percent_change(100.0, 150.0), 50.0);
  EXPECT_DOUBLE_EQ(percent_change(100.0, 50.0), -50.0);
  EXPECT_DOUBLE_EQ(percent_change(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(percent_change(0.0, 1.0)));
}

TEST(IntervalTest, HalfWidthAndContainment) {
  const Interval iv{2.0, 6.0};
  EXPECT_DOUBLE_EQ(iv.half_width(), 2.0);
  EXPECT_TRUE(iv.contains(2.0));   // closed on both ends
  EXPECT_TRUE(iv.contains(6.0));
  EXPECT_TRUE(iv.contains(4.0));
  EXPECT_FALSE(iv.contains(1.999));
  EXPECT_FALSE(iv.contains(6.001));
  EXPECT_EQ(iv, (Interval{2.0, 6.0}));
}

TEST(ConfidenceIntervalTest, HandComputedValue) {
  // mean 10, stddev 2, n 100: half-width = 1.96 * 2 / 10 = 0.3919927969...
  const Interval iv = confidence_interval_95(10.0, 2.0, 100);
  const double half = 1.959963984540054 * 2.0 / 10.0;
  EXPECT_NEAR(iv.lo, 10.0 - half, 1e-12);
  EXPECT_NEAR(iv.hi, 10.0 + half, 1e-12);
  EXPECT_TRUE(iv.contains(10.0));
}

TEST(ConfidenceIntervalTest, ShrinksWithSampleSize) {
  const Interval small = confidence_interval_95(5.0, 1.0, 100);
  const Interval large = confidence_interval_95(5.0, 1.0, 10000);
  EXPECT_LT(large.half_width(), small.half_width());
  EXPECT_NEAR(small.half_width() / large.half_width(), 10.0, 1e-9);
}

TEST(ConfidenceIntervalTest, DegeneratesWithoutSpreadInformation) {
  // Fewer than two samples or no spread: [mean, mean].
  EXPECT_EQ(confidence_interval_95(3.0, 2.0, 0), (Interval{3.0, 3.0}));
  EXPECT_EQ(confidence_interval_95(3.0, 2.0, 1), (Interval{3.0, 3.0}));
  EXPECT_EQ(confidence_interval_95(3.0, 0.0, 50), (Interval{3.0, 3.0}));
  EXPECT_EQ(confidence_interval_95(3.0, -1.0, 50), (Interval{3.0, 3.0}));
}

TEST(WilsonIntervalTest, HandComputedHalfSplit) {
  // 50 / 100 with z = 1.96: the classic textbook value [0.4038, 0.5962].
  const Interval iv = wilson_interval_95(50.0, 100);
  EXPECT_NEAR(iv.lo, 0.4038, 5e-4);
  EXPECT_NEAR(iv.hi, 0.5962, 5e-4);
  EXPECT_TRUE(iv.contains(0.5));
}

TEST(WilsonIntervalTest, NeverCollapsesAtTheBoundaries) {
  // Unlike Wald, p = 0 and p = 1 still give informative intervals in [0,1].
  const Interval none = wilson_interval_95(0.0, 1000);
  EXPECT_NEAR(none.lo, 0.0, 1e-12);
  EXPECT_GT(none.hi, 1e-4);
  EXPECT_LT(none.hi, 0.01);
  const Interval all = wilson_interval_95(1000.0, 1000);
  EXPECT_LT(all.lo, 1.0 - 1e-4);
  EXPECT_GT(all.lo, 0.99);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
}

TEST(WilsonIntervalTest, FractionalSuccessesAndExcessRejection) {
  // Criticality-weighted outcomes are fractional; successes above n used to
  // clamp silently, hiding an upstream accounting bug — now they throw.
  const Interval iv = wilson_interval_95(2.5, 100);
  EXPECT_GT(iv.lo, 0.0);
  EXPECT_LT(iv.hi, 0.1);
  EXPECT_TRUE(iv.contains(0.025));
  EXPECT_THROW(wilson_interval_95(150.0, 100), std::invalid_argument);
  // Exactly n is the legitimate boundary, not an excess.
  EXPECT_NO_THROW(wilson_interval_95(100.0, 100));
}

TEST(WilsonIntervalTest, EdgeCases) {
  EXPECT_EQ(wilson_interval_95(0.0, 0), (Interval{0.0, 1.0}));
  EXPECT_THROW(wilson_interval_95(-1.0, 100), std::invalid_argument);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(wilson_interval_95(nan, 100), std::invalid_argument);
}

TEST(RunningStatsTest, RejectsNaN) {
  RunningStats s;
  s.add(1.0);
  EXPECT_THROW(s.add(std::numeric_limits<double>::quiet_NaN()),
               std::domain_error);
  // The accumulator is unchanged by the rejected sample.
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 1.0);
}

TEST(StatsTest, QuantileRejectsNaNSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(quantile({1.0, nan, 3.0}, 0.5), std::domain_error);
  // Without the check NaN silently poisons the sort order; the valid call
  // still works.
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.5), 2.0);
}

TEST(WilsonIntervalTest, CoversTrueProportionEmpirically) {
  // ~95% of simulated binomial experiments must contain the true p.
  Rng rng(23);
  const double p = 0.07;
  const std::size_t n = 400;
  int covered = 0;
  const int experiments = 500;
  for (int e = 0; e < experiments; ++e) {
    double successes = 0.0;
    for (std::size_t i = 0; i < n; ++i) successes += rng.bernoulli(p) ? 1 : 0;
    if (wilson_interval_95(successes, n).contains(p)) ++covered;
  }
  EXPECT_GT(static_cast<double>(covered) / experiments, 0.90);
}

}  // namespace
}  // namespace clrearly::util
