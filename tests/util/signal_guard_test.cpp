// Signal-guard tests: kNotifyOnly latches without dying, and kFlushAndExit
// writes the observability files before re-raising (death test).
#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <sstream>
#include <string>

#include "util/metrics.hpp"
#include "util/observability.hpp"
#include "util/signal_guard.hpp"

#if defined(__SANITIZE_THREAD__)
#define CLREARLY_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CLREARLY_TSAN_BUILD 1
#endif
#endif

namespace clrearly {
namespace {

TEST(SignalGuardTest, NotifyOnlyLatchesWithoutTerminating) {
  util::install_signal_handlers(util::SignalMode::kNotifyOnly);
  util::reset_termination_flag();
  EXPECT_FALSE(util::termination_requested());
  EXPECT_EQ(util::termination_signal(), 0);

  std::raise(SIGTERM);
  EXPECT_TRUE(util::termination_requested());
  EXPECT_EQ(util::termination_signal(), SIGTERM);

  util::reset_termination_flag();
  EXPECT_FALSE(util::termination_requested());
  std::raise(SIGINT);
  EXPECT_TRUE(util::termination_requested());
  EXPECT_EQ(util::termination_signal(), SIGINT);
  util::reset_termination_flag();
}

TEST(SignalGuardTest, ReinstallLastModeWins) {
  util::install_signal_handlers(util::SignalMode::kFlushAndExit);
  util::install_signal_handlers(util::SignalMode::kNotifyOnly);
  util::reset_termination_flag();
  std::raise(SIGTERM);  // would kill the process under kFlushAndExit
  EXPECT_TRUE(util::termination_requested());
  util::reset_termination_flag();
}

TEST(SignalGuardDeathTest, FlushAndExitWritesMetricsThenDiesBySignal) {
#if defined(CLREARLY_TSAN_BUILD)
  // The flush path allocates inside the handler (the documented
  // async-signal-safety trade-off); TSan aborts on that instead of dying
  // by the re-raised signal, so the death expectation cannot hold here.
  GTEST_SKIP() << "flush-from-handler is signal-unsafe by design; "
                  "TSan flags it";
#endif
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "/signal_guard_metrics.json";
  EXPECT_EXIT(
      {
        util::set_metrics_path(path);
        util::metric_counter("signal_guard.test").add(7);
        util::install_signal_handlers(util::SignalMode::kFlushAndExit);
        std::raise(SIGTERM);
      },
      ::testing::KilledBySignal(SIGTERM), "");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "metrics file was not written on SIGTERM";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("signal_guard.test"), std::string::npos);
}

}  // namespace
}  // namespace clrearly
