// The run manifest's contracts: JSON round-trip is lossless, malformed
// JSON fails loudly instead of yielding a half-filled manifest, and
// capture_run_manifest records the process-effective configuration (not
// just the raw flags) plus the full argv.
#include "util/manifest.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/memo_cache.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::util {
namespace {

RunManifest sample_manifest() {
  RunManifest m;
  m.program = "clrearly";
  m.args = {"dse", "--app", "sobel", "--seed", "42"};
  m.seed = "42";
  m.threads = 4;
  m.cache_capacity = 65536;
  m.build_type = "Release";
  m.log_level = "warn";
  return m;
}

TEST(ManifestTest, JsonRoundTripIsLossless) {
  const RunManifest original = sample_manifest();
  const JsonValue encoded{original.to_json()};
  const RunManifest decoded =
      RunManifest::from_json(json_parse(json_serialize(encoded)));
  EXPECT_EQ(decoded, original);
}

TEST(ManifestTest, RoundTripPreservesEmptyFields) {
  RunManifest original;  // all defaults: empty strings, zero sizes
  const RunManifest decoded =
      RunManifest::from_json(JsonValue(original.to_json()));
  EXPECT_EQ(decoded, original);
}

TEST(ManifestTest, FromJsonRejectsMissingAndMistypedFields) {
  JsonObject incomplete;
  incomplete["program"] = std::string("clrearly");
  EXPECT_THROW(RunManifest::from_json(JsonValue(incomplete)),
               std::runtime_error);

  JsonObject mistyped = sample_manifest().to_json();
  mistyped["threads"] = std::string("four");
  EXPECT_THROW(RunManifest::from_json(JsonValue(mistyped)),
               std::runtime_error);
}

TEST(ManifestTest, CaptureRecordsArgvAndEffectiveConfiguration) {
  ArgParser parser("capture_test", "manifest capture test");
  parser.option("seed", "rng seed", "1");
  parser.parse({"--seed", "9"});

  const char* argv_text[] = {"capture_test", "--seed", "9"};
  char* argv[3];
  std::vector<std::string> storage(argv_text, argv_text + 3);
  for (int i = 0; i < 3; ++i) argv[i] = storage[i].data();

  set_thread_count(3);
  set_cache_capacity(128);
  const RunManifest m = capture_run_manifest(parser, 3, argv);
  set_thread_count(0);
  reset_cache_capacity();

  EXPECT_EQ(m.program, "capture_test");
  EXPECT_EQ(m.args, (std::vector<std::string>{"--seed", "9"}));
  EXPECT_EQ(m.seed, "9");
  EXPECT_EQ(m.threads, 3u);
  EXPECT_EQ(m.cache_capacity, 128u);
#ifdef NDEBUG
  EXPECT_EQ(m.build_type, "Release");
#else
  EXPECT_EQ(m.build_type, "Debug");
#endif
  EXPECT_FALSE(m.log_level.empty());
}

TEST(ManifestTest, CaptureWithoutSeedOptionLeavesSeedEmpty) {
  ArgParser parser("no_seed", "driver without --seed");
  parser.parse({});
  const RunManifest m = capture_run_manifest(parser, 0, nullptr);
  EXPECT_EQ(m.seed, "");
  // argv absent: the parser's program name is the fallback.
  EXPECT_EQ(m.program, "no_seed");
  EXPECT_TRUE(m.args.empty());
}

}  // namespace
}  // namespace clrearly::util
