// The trace layer's contracts: disabled tracing records nothing (and
// TraceSpan costs only the enabled check), enabled tracing emits Chrome
// trace-event JSON that util::json parses back with the right phases and
// fields, disabling drops the buffer, and ring wrap-around counts drops
// instead of growing without bound. The trace state is process-global, so
// every test starts by setting its own path and ends disabled.
#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace clrearly::util {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { set_trace_path(""); }
  void TearDown() override { set_trace_path(""); }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  EXPECT_FALSE(trace_enabled());
  {
    TraceSpan span("never.recorded");
    EXPECT_EQ(span.elapsed_seconds(), 0.0);
  }
  trace_counter("never.counter", 1.0);
  trace_instant("never.instant");
  EXPECT_EQ(trace_event_count(), 0u);
  flush_trace();  // no-op, must not throw or create files
}

TEST_F(TraceTest, FlushWritesValidChromeTraceJson) {
  const std::string path = temp_path("trace_test_basic.json");
  set_trace_path(path);
  ASSERT_TRUE(trace_enabled());
  EXPECT_EQ(trace_path(), path);

  JsonObject meta;
  meta["seed"] = std::string("42");
  set_trace_metadata(std::move(meta));

  { TraceSpan span("test.span"); }
  trace_counter("test.counter", 3.5);
  trace_instant("test.marker");
  EXPECT_EQ(trace_event_count(), 3u);
  flush_trace();

  const JsonValue root = json_parse(slurp(path));
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  EXPECT_EQ(root.at("otherData").at("seed").as_string(), "42");
  EXPECT_EQ(root.at("otherData").at("dropped_events").as_number(), 0.0);

  const JsonArray& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);
  // Ring order is record order: span end, counter, instant.
  const JsonValue& span = events[0];
  EXPECT_EQ(span.at("name").as_string(), "test.span");
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_GE(span.at("dur").as_number(), 0.0);
  EXPECT_GE(span.at("ts").as_number(), 0.0);
  EXPECT_EQ(span.at("pid").as_number(), 1.0);

  const JsonValue& counter = events[1];
  EXPECT_EQ(counter.at("ph").as_string(), "C");
  EXPECT_EQ(counter.at("args").at("value").as_number(), 3.5);

  const JsonValue& instant = events[2];
  EXPECT_EQ(instant.at("ph").as_string(), "i");
  EXPECT_EQ(instant.at("s").as_string(), "t");
}

TEST_F(TraceTest, FlushTwiceProducesTwoConsistentFiles) {
  const std::string path = temp_path("trace_test_twice.json");
  set_trace_path(path);
  trace_instant("test.twice");
  flush_trace();
  const std::string first = slurp(path);
  flush_trace();  // the buffer is not cleared by a flush
  EXPECT_EQ(slurp(path), first);
}

TEST_F(TraceTest, DisablingDropsTheBuffer) {
  set_trace_path(temp_path("trace_test_drop.json"));
  trace_instant("test.dropped");
  EXPECT_EQ(trace_event_count(), 1u);
  set_trace_path("");
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_dropped_events(), 0u);
}

TEST_F(TraceTest, RingWrapKeepsTheTailAndCountsDrops) {
  const std::string path = temp_path("trace_test_wrap.json");
  set_trace_path(path);
  const std::size_t capacity = std::size_t{1} << 16;  // kRingCapacity
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < capacity + extra; ++i) {
    trace_instant(i < extra ? "test.old" : "test.new");
  }
  EXPECT_EQ(trace_event_count(), capacity);
  EXPECT_EQ(trace_dropped_events(), extra);
  flush_trace();
  const JsonValue root = json_parse(slurp(path));
  EXPECT_EQ(root.at("otherData").at("dropped_events").as_number(),
            double(extra));
  const JsonArray& events = root.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), capacity);
  // The overwritten events are exactly the oldest ones.
  for (const JsonValue& event : events) {
    EXPECT_EQ(event.at("name").as_string(), "test.new");
  }
}

TEST_F(TraceTest, FlushThrowsOnUnwritablePath) {
  set_trace_path("/nonexistent_dir_for_trace_test/out.json");
  trace_instant("test.unwritable");
  EXPECT_THROW(flush_trace(), std::runtime_error);
}

}  // namespace
}  // namespace clrearly::util
