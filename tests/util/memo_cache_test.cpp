// util::MemoCache — the sharded memoization layer under the DSE hot paths.
// Covers the structural capacity bound, eviction accounting, hit/miss
// semantics, the disabled (capacity 0) pass-through, the process-wide
// registry/aggregation, the global capacity configuration, and concurrent
// insert/lookup through the thread pool (run under TSan in CI).
#include "util/memo_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/thread_pool.hpp"

namespace clrearly::util {
namespace {

Key128 key_of(std::uint64_t n) {
  return Key128Stream().add(n).digest();
}

using Cache = MemoCache<Key128, std::uint64_t, Key128Hash>;

TEST(HashStreamTest, DeterministicAndOrderSensitive) {
  EXPECT_EQ(HashStream().add(std::uint64_t{1}).add(std::uint64_t{2}).digest(),
            HashStream().add(std::uint64_t{1}).add(std::uint64_t{2}).digest());
  EXPECT_NE(HashStream().add(std::uint64_t{1}).add(std::uint64_t{2}).digest(),
            HashStream().add(std::uint64_t{2}).add(std::uint64_t{1}).digest());
  EXPECT_NE(HashStream(1).add(std::uint64_t{7}).digest(),
            HashStream(2).add(std::uint64_t{7}).digest());
}

TEST(HashStreamTest, NegativeZeroCanonicalizesToPositiveZero) {
  EXPECT_EQ(HashStream().add(-0.0).digest(), HashStream().add(0.0).digest());
  EXPECT_NE(HashStream().add(0.0).digest(), HashStream().add(1.0).digest());
}

TEST(Key128Test, CollisionSmokeOverSequentialAndRandomWords) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::uint64_t state = 0x1234;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    // Half sequential (worst case for weak mixers), half pseudo-random.
    const std::uint64_t word = (i % 2 == 0) ? i : (state = mix64(state));
    const Key128 k = Key128Stream().add(word).digest();
    EXPECT_TRUE(seen.insert({k.lo, k.hi}).second)
        << "128-bit collision at word " << word;
  }
}

TEST(MemoCacheTest, HitReturnsInsertedValueAndCountsAreCoherent) {
  Cache cache(256);
  ASSERT_TRUE(cache.enabled());
  std::uint64_t out = 0;
  EXPECT_FALSE(cache.lookup(key_of(1), out));
  cache.insert(key_of(1), 41);
  ASSERT_TRUE(cache.lookup(key_of(1), out));
  EXPECT_EQ(out, 41u);
  cache.insert(key_of(1), 42);  // refresh overwrites
  ASSERT_TRUE(cache.lookup(key_of(1), out));
  EXPECT_EQ(out, 42u);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(MemoCacheTest, CapacityIsAHardBoundAndEvictionsAreCounted) {
  Cache cache(128);
  const std::size_t bound = cache.capacity();
  EXPECT_GE(bound, 128u);
  for (std::uint64_t i = 0; i < 8 * bound; ++i) {
    cache.insert(key_of(i), i);
  }
  const CacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, bound);
  EXPECT_GT(stats.evictions, 0u);
  // Every surviving entry must still map key -> its own value: eviction may
  // lose entries, it must never corrupt them.
  std::size_t survivors = 0;
  for (std::uint64_t i = 0; i < 8 * bound; ++i) {
    std::uint64_t out = 0;
    if (cache.lookup(key_of(i), out)) {
      EXPECT_EQ(out, i);
      ++survivors;
    }
  }
  EXPECT_GT(survivors, 0u);
  EXPECT_LE(survivors, bound);
}

TEST(MemoCacheTest, GetOrComputeComputesOncePerResidentKey) {
  Cache cache(256);
  int computes = 0;
  for (int round = 0; round < 5; ++round) {
    const std::uint64_t v = cache.get_or_compute(key_of(9), [&] {
      ++computes;
      return std::uint64_t{99};
    });
    EXPECT_EQ(v, 99u);
  }
  EXPECT_EQ(computes, 1);
}

TEST(MemoCacheTest, ZeroCapacityCacheIsDisabledPassThrough) {
  Cache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 0u);
  int computes = 0;
  for (int round = 0; round < 3; ++round) {
    cache.get_or_compute(key_of(1), [&] {
      ++computes;
      return std::uint64_t{1};
    });
  }
  EXPECT_EQ(computes, 3);
  std::uint64_t out = 0;
  cache.insert(key_of(1), 1);
  EXPECT_FALSE(cache.lookup(key_of(1), out));
}

TEST(MemoCacheTest, ClearDropsEntriesButKeepsCounters) {
  Cache cache(64);
  cache.insert(key_of(1), 1);
  cache.insert(key_of(2), 2);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  std::uint64_t out = 0;
  EXPECT_FALSE(cache.lookup(key_of(1), out));
}

TEST(MemoCacheTest, RecentlyTouchedEntrySurvivesWindowPressure) {
  // LRU-ish recency: keep re-touching one key while flooding the cache far
  // past capacity; the hot key must be the last to go — with continuous
  // touches it survives, because eviction always prefers a colder slot.
  Cache cache(64);
  const Key128 hot = key_of(0xdeadbeef);
  cache.insert(hot, 7);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 16 * cache.capacity(); ++i) {
    cache.insert(key_of(i), i);
    ASSERT_TRUE(cache.lookup(hot, out)) << "hot key evicted at insert " << i;
    EXPECT_EQ(out, 7u);
  }
}

TEST(MemoCacheTest, ConcurrentInsertLookupUnderThreadPool) {
  set_thread_count(4);
  Cache cache(1024);
  const std::size_t workers = 8;
  const std::uint64_t per_worker = 5000;
  std::vector<std::uint64_t> wrong(workers, 0);
  parallel_for(workers, [&](std::size_t w) {
    for (std::uint64_t i = 0; i < per_worker; ++i) {
      const std::uint64_t n = i % 512;  // overlapping key set across workers
      const std::uint64_t v = cache.get_or_compute(
          key_of(n), [n] { return n * 3; });
      if (v != n * 3) ++wrong[w];
      cache.insert(key_of(n + 100000 + w * per_worker), n);  // churn
    }
  });
  set_thread_count(0);
  for (std::size_t w = 0; w < workers; ++w) {
    EXPECT_EQ(wrong[w], 0u) << "worker " << w << " observed a wrong value";
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, workers * per_worker);
  EXPECT_LE(stats.entries, cache.capacity());
}

TEST(MemoCacheTest, NamedCachesAggregateByNameInTheRegistry) {
  auto count_fitness = [](const char* name) {
    std::uint64_t hits = 0;
    bool found = false;
    for (const auto& [cache_name, stats] : aggregate_cache_stats()) {
      if (cache_name == name) {
        hits = stats.hits;
        found = true;
      }
    }
    return std::make_pair(found, hits);
  };
  EXPECT_FALSE(count_fitness("memo_test_scope").first);
  {
    Cache a(64, "memo_test_scope");
    Cache b(64, "memo_test_scope");
    a.insert(key_of(1), 1);
    b.insert(key_of(1), 1);
    std::uint64_t out = 0;
    ASSERT_TRUE(a.lookup(key_of(1), out));
    ASSERT_TRUE(b.lookup(key_of(1), out));
    const auto [found, hits] = count_fitness("memo_test_scope");
    EXPECT_TRUE(found);
    EXPECT_EQ(hits, 2u);  // summed across the two same-named caches
  }
  // Destruction unregisters.
  EXPECT_FALSE(count_fitness("memo_test_scope").first);
}

TEST(CacheCapacityTest, CacheEnvParsingRejectsGarbageAndNegatives) {
  // "-1" must fall back to the default, not wrap to ULLONG_MAX entries.
  EXPECT_EQ(detail::parse_cache_env(nullptr), kDefaultCacheCapacity);
  EXPECT_EQ(detail::parse_cache_env(""), kDefaultCacheCapacity);
  EXPECT_EQ(detail::parse_cache_env("-1"), kDefaultCacheCapacity);
  EXPECT_EQ(detail::parse_cache_env("64k"), kDefaultCacheCapacity);
  EXPECT_EQ(detail::parse_cache_env(" 64"), kDefaultCacheCapacity);
  EXPECT_EQ(detail::parse_cache_env("0"), 0u);  // explicit disable
  EXPECT_EQ(detail::parse_cache_env("1024"), 1024u);
}

TEST(CacheRegistryTest, LifetimeStatsRetainDestroyedCaches) {
  auto lifetime_of = [](const char* name) {
    CacheStats total;
    for (const auto& [cache_name, stats] : lifetime_cache_stats()) {
      if (cache_name == name) total = stats;
    }
    return total;
  };
  const CacheStats before = lifetime_of("memo_lifetime_scope");
  {
    Cache cache(64, "memo_lifetime_scope");
    cache.insert(key_of(1), 1);
    std::uint64_t out = 0;
    ASSERT_TRUE(cache.lookup(key_of(1), out));   // hit
    ASSERT_FALSE(cache.lookup(key_of(2), out));  // miss
    // While alive, the lifetime view includes the live counters...
    const CacheStats alive = lifetime_of("memo_lifetime_scope");
    EXPECT_EQ(alive.hits, before.hits + 1);
    EXPECT_EQ(alive.misses, before.misses + 1);
    EXPECT_EQ(alive.entries, 1u);  // live storage still counted
  }
  // ...and after destruction the event counters survive as retained
  // totals, with the storage gone. aggregate_cache_stats stays live-only
  // (pinned by NamedCachesAggregateByNameInTheRegistry above).
  const CacheStats after = lifetime_of("memo_lifetime_scope");
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses + 1);
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.capacity, 0u);
}

TEST(CacheCapacityTest, OverrideBeatsDefaultAndResetRestoresIt) {
  const std::size_t ambient = cache_capacity();
  set_cache_capacity(123);
  EXPECT_EQ(cache_capacity(), 123u);
  set_cache_capacity(0);
  EXPECT_EQ(cache_capacity(), 0u);
  reset_cache_capacity();
  EXPECT_EQ(cache_capacity(), ambient);
}

}  // namespace
}  // namespace clrearly::util
