// The metrics registry's contracts: counters are exact under concurrency
// (striping spreads contention but never drops an increment), registry
// lookups return stable references, histograms bucket on inclusive upper
// edges, and the snapshot re-exports the cache counters so one JSON file
// matches what the caching layer itself reports. The concurrency tests
// double as the TSan workload for the whole layer.
#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/memo_cache.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::util {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void TearDown() override { set_thread_count(0); }
};

TEST_F(MetricsTest, CounterIsExactUnderConcurrentIncrements) {
  Counter& counter = metric_counter("test.concurrent_counter");
  counter.reset();
  set_thread_count(4);
  const std::size_t workers = 8;
  const std::uint64_t per_worker = 100000;
  parallel_for(workers, [&](std::size_t) {
    for (std::uint64_t i = 0; i < per_worker; ++i) counter.add();
  });
  EXPECT_EQ(counter.value(), workers * per_worker);
}

TEST_F(MetricsTest, CounterAddWithArgumentAccumulates) {
  Counter& counter = metric_counter("test.bulk_counter");
  counter.reset();
  counter.add(5);
  counter.add(7);
  EXPECT_EQ(counter.value(), 12u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsTheSameMetricForTheSameName) {
  Counter& a = metric_counter("test.identity");
  Counter& b = metric_counter("test.identity");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_NE(&a, &metric_counter("test.identity2"));
  EXPECT_EQ(&metric_gauge("test.gauge_identity"),
            &metric_gauge("test.gauge_identity"));
}

TEST_F(MetricsTest, GaugeSetAndConcurrentAdd) {
  Gauge& gauge = metric_gauge("test.gauge");
  gauge.set(2.5);
  EXPECT_EQ(gauge.value(), 2.5);
  set_thread_count(4);
  const std::size_t workers = 8;
  parallel_for(workers, [&](std::size_t) {
    for (int i = 0; i < 1000; ++i) gauge.add(0.5);
  });
  // CAS accumulation of an exactly-representable delta loses nothing.
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5 + 0.5 * 1000 * workers);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBucketsOnInclusiveUpperEdges) {
  Histogram& h = metric_histogram("test.histogram", {1.0, 10.0});
  h.reset();
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // boundary is inclusive -> first bucket
  h.observe(5.0);   // <= 10.0
  h.observe(100.0);  // overflow
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 106.5);
  EXPECT_EQ(snap.min, 0.5);
  EXPECT_EQ(snap.max, 100.0);
}

TEST_F(MetricsTest, HistogramEmptySnapshotAndBadBounds) {
  Histogram& h = metric_histogram("test.histogram_empty", {1.0});
  h.reset();
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0.0);
  EXPECT_EQ(snap.max, 0.0);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(MetricsTest, HistogramCountIsExactUnderConcurrentObserves) {
  Histogram& h = metric_histogram("test.histogram_mt", {0.5});
  h.reset();
  set_thread_count(4);
  const std::size_t workers = 8;
  const std::uint64_t per_worker = 20000;
  parallel_for(workers, [&](std::size_t w) {
    for (std::uint64_t i = 0; i < per_worker; ++i) {
      h.observe(w % 2 == 0 ? 0.25 : 1.0);
    }
  });
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, workers * per_worker);
  ASSERT_EQ(snap.buckets.size(), 2u);
  EXPECT_EQ(snap.buckets[0] + snap.buckets[1], workers * per_worker);
  EXPECT_EQ(snap.buckets[0], workers / 2 * per_worker);
  EXPECT_EQ(snap.min, 0.25);
  EXPECT_EQ(snap.max, 1.0);
}

TEST_F(MetricsTest, ObserveSecondsUsesTheSharedLadder) {
  observe_seconds("test.phase_seconds", 0.005);
  observe_seconds("test.phase_seconds", 50.0);
  const HistogramSnapshot snap =
      metric_histogram("test.phase_seconds", {}).snapshot();
  ASSERT_EQ(snap.bounds.size(), 6u);  // first registration's ladder wins
  EXPECT_EQ(snap.bounds.front(), 0.001);
  EXPECT_EQ(snap.bounds.back(), 100.0);
  EXPECT_GE(snap.count, 2u);
}

TEST_F(MetricsTest, SnapshotSerializesEveryKindAndParsesBack) {
  metric_counter("test.snap_counter").add(41);
  metric_gauge("test.snap_gauge").set(1.5);
  observe_seconds("test.snap_seconds", 0.02);

  const JsonObject snapshot = metrics_snapshot();
  // Round-trip through the serializer: the snapshot must be valid JSON.
  const JsonValue parsed =
      json_parse(json_serialize(JsonValue(snapshot)));
  EXPECT_GE(parsed.at("counters").at("test.snap_counter").as_number(), 41.0);
  EXPECT_EQ(parsed.at("gauges").at("test.snap_gauge").as_number(), 1.5);
  const JsonValue& hist = parsed.at("histograms").at("test.snap_seconds");
  EXPECT_GE(hist.at("count").as_number(), 1.0);
  EXPECT_EQ(hist.at("buckets").as_array().size(), 7u);  // 6 bounds + overflow
}

TEST_F(MetricsTest, SnapshotCachesSectionMatchesTheCacheRegistry) {
  using Cache = MemoCache<std::uint64_t, std::uint64_t>;
  {
    Cache cache(64, "metrics_test_cache");
    cache.insert(1, 10);
    std::uint64_t out = 0;
    ASSERT_TRUE(cache.lookup(1, out));   // 1 hit
    ASSERT_FALSE(cache.lookup(2, out));  // 1 miss

    // Live cache: the snapshot must agree with aggregate_cache_stats.
    CacheStats live;
    for (const auto& [name, stats] : aggregate_cache_stats()) {
      if (name == "metrics_test_cache") live = stats;
    }
    EXPECT_EQ(live.hits, 1u);
    const JsonValue snapshot{metrics_snapshot()};
    const JsonValue& entry = snapshot.at("caches").at("metrics_test_cache");
    EXPECT_EQ(entry.at("hits").as_number(), double(live.hits));
    EXPECT_EQ(entry.at("misses").as_number(), double(live.misses));
    EXPECT_EQ(entry.at("entries").as_number(), double(live.entries));
  }
  // Destroyed cache: gone from the live registry, but its event counters
  // are retained for the exit snapshot (lifetime view).
  for (const auto& [name, stats] : aggregate_cache_stats()) {
    EXPECT_NE(name, "metrics_test_cache");
  }
  CacheStats lifetime;
  bool found = false;
  for (const auto& [name, stats] : lifetime_cache_stats()) {
    if (name == "metrics_test_cache") {
      lifetime = stats;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_GE(lifetime.hits, 1u);
  EXPECT_GE(lifetime.misses, 1u);
  EXPECT_EQ(lifetime.entries, 0u);  // storage died with the cache
  const JsonValue snapshot{metrics_snapshot()};
  const JsonValue& entry = snapshot.at("caches").at("metrics_test_cache");
  EXPECT_EQ(entry.at("hits").as_number(), double(lifetime.hits));
}

TEST_F(MetricsTest, ResetMetricsZeroesEverythingButKeepsReferences) {
  Counter& counter = metric_counter("test.reset_counter");
  Gauge& gauge = metric_gauge("test.reset_gauge");
  counter.add(9);
  gauge.set(9.0);
  observe_seconds("test.reset_seconds", 1.0);
  reset_metrics();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(metric_histogram("test.reset_seconds", {}).snapshot().count, 0u);
  counter.add(1);  // the reference survived the reset
  EXPECT_EQ(metric_counter("test.reset_counter").value(), 1u);
}

}  // namespace
}  // namespace clrearly::util
