#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace clrearly::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ =
      (std::filesystem::temp_directory_path() / "clrearly_csv_test.csv")
          .string();

  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvWriterTest, WritesPlainRows) {
  {
    CsvWriter csv(path_);
    csv.row({"a", "b", "c"});
    csv.row({"1", "2", "3"});
  }
  EXPECT_EQ(read_file(path_), "a,b,c\n1,2,3\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_);
    csv.row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  }
  EXPECT_EQ(read_file(path_),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST_F(CsvWriterTest, FieldByFieldComposition) {
  {
    CsvWriter csv(path_);
    csv.field("x").field(1.5).field(static_cast<long long>(-7));
    csv.end_row();
    csv.field(std::size_t{42});
    csv.end_row();
  }
  EXPECT_EQ(read_file(path_), "x,1.5,-7\n42\n");
}

TEST_F(CsvWriterTest, DoubleRoundTripsPrecision) {
  const double value = 0.1234567890123456789;
  {
    CsvWriter csv(path_);
    csv.field(value);
    csv.end_row();
  }
  const double parsed = std::stod(read_file(path_));
  EXPECT_DOUBLE_EQ(parsed, value);
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(FormatCompactTest, FormatsShortNumbers) {
  EXPECT_EQ(format_compact(1.5), "1.5");
  EXPECT_EQ(format_compact(1000000.0), "1e+06");
  EXPECT_EQ(format_compact(0.0), "0");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table;
  table.header({"name", "value"});
  table.row("a", 1);
  table.row("longer", 123);
  const std::string out = table.to_string();
  // Header rule present, rows aligned at fixed offsets.
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("longer  123"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTableTest, HandlesRaggedRows) {
  TextTable table;
  table.header({"a", "b", "c"});
  table.row("only-one");
  EXPECT_NO_THROW(table.to_string());
}

TEST(TextTableTest, NoHeaderMeansNoRule) {
  TextTable table;
  table.row("x", "y");
  const std::string out = table.to_string();
  EXPECT_EQ(out.find('-'), std::string::npos);
}

TEST(TextTableTest, DoubleCellsUseCompactFormat) {
  TextTable table;
  table.row(3.14159265);
  EXPECT_NE(table.to_string().find("3.14159"), std::string::npos);
}

TEST(LogTest, LevelsFilter) {
  const LogLevel prior = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  // No crash when filtered / emitted.
  log_info() << "suppressed " << 42;
  log_error() << "emitted " << 43;
  set_log_level(prior);
}

}  // namespace
}  // namespace clrearly::util
