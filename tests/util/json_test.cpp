#include "util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clrearly::util {
namespace {

// --- Value model -----------------------------------------------------------------

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).is_bool());
  EXPECT_TRUE(JsonValue(1.5).is_number());
  EXPECT_TRUE(JsonValue(42).is_number());
  EXPECT_TRUE(JsonValue("text").is_string());
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
}

TEST(JsonValueTest, TypedAccessorsThrowOnMismatch) {
  const JsonValue v(1.5);
  EXPECT_DOUBLE_EQ(v.as_number(), 1.5);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_bool(), std::runtime_error);
  EXPECT_THROW(v.at("x"), std::runtime_error);
}

TEST(JsonValueTest, ObjectAccess) {
  const JsonValue obj(JsonObject{{"a", 1.0}, {"b", "two"}});
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 1.0);
  EXPECT_EQ(obj.at("b").as_string(), "two");
  EXPECT_THROW(obj.at("missing"), std::runtime_error);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_NE(obj.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(obj.number_or("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(obj.number_or("missing", 9.0), 9.0);
}

// --- Writer -----------------------------------------------------------------------

TEST(JsonWriteTest, Scalars) {
  EXPECT_EQ(json_serialize(JsonValue()), "null\n");
  EXPECT_EQ(json_serialize(JsonValue(true)), "true\n");
  EXPECT_EQ(json_serialize(JsonValue(false)), "false\n");
  EXPECT_EQ(json_serialize(JsonValue(3.0)), "3\n");
  EXPECT_EQ(json_serialize(JsonValue(-1.5)), "-1.5\n");
  EXPECT_EQ(json_serialize(JsonValue("hi")), "\"hi\"\n");
}

TEST(JsonWriteTest, EscapesStrings) {
  EXPECT_EQ(json_serialize(JsonValue("a\"b\\c\nd")),
            "\"a\\\"b\\\\c\\nd\"\n");
  EXPECT_EQ(json_serialize(JsonValue(std::string("\x01"))), "\"\\u0001\"\n");
}

TEST(JsonWriteTest, EmptyContainersCompact) {
  EXPECT_EQ(json_serialize(JsonValue(JsonArray{})), "[]\n");
  EXPECT_EQ(json_serialize(JsonValue(JsonObject{})), "{}\n");
}

TEST(JsonWriteTest, NonFiniteRejected) {
  EXPECT_THROW(json_serialize(JsonValue(1.0 / 0.0)), std::runtime_error);
}

// --- Parser -----------------------------------------------------------------------

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(json_parse("null").is_null());
  EXPECT_EQ(json_parse("true").as_bool(), true);
  EXPECT_EQ(json_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json_parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json_parse("-1.25e2").as_number(), -125.0);
  EXPECT_EQ(json_parse("\"abc\"").as_string(), "abc");
}

TEST(JsonParseTest, NestedStructures) {
  const JsonValue v = json_parse(R"({
    "name": "x",
    "items": [1, 2, {"deep": true}],
    "empty": [],
    "nothing": null
  })");
  EXPECT_EQ(v.at("name").as_string(), "x");
  const JsonArray& items = v.at("items").as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_DOUBLE_EQ(items[1].as_number(), 2.0);
  EXPECT_TRUE(items[2].at("deep").as_bool());
  EXPECT_TRUE(v.at("empty").as_array().empty());
  EXPECT_TRUE(v.at("nothing").is_null());
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(json_parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(json_parse(R"("line\nbreak")").as_string(), "line\nbreak");
  EXPECT_EQ(json_parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(json_parse(R"("A")").as_string(), "A");
  EXPECT_EQ(json_parse(R"("é")").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(json_parse(R"("€")").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParseTest, MalformedInputsRejected) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "nul", "\"unterminated",
        "[1 2]", "{\"a\" 1}", "1 2", "{\"a\":1,}", "\"\\q\"", "\"\\u12g4\""}) {
    EXPECT_THROW(json_parse(bad), std::runtime_error) << bad;
  }
}

TEST(JsonParseTest, ReportsOffset) {
  try {
    json_parse("[1, oops]");
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

// --- Round trips -------------------------------------------------------------------

TEST(JsonRoundTripTest, ComplexDocument) {
  const JsonValue original(JsonObject{
      {"string", "with \"quotes\" and \\slashes\\"},
      {"numbers", JsonArray{JsonValue(0.0), JsonValue(-7.0),
                            JsonValue(3.14159), JsonValue(1e-9)}},
      {"flags", JsonArray{JsonValue(true), JsonValue(false), JsonValue()}},
      {"nested", JsonObject{{"inner", JsonArray{JsonValue(JsonObject{
                                {"k", 1.0}})}}}},
  });
  const JsonValue reparsed = json_parse(json_serialize(original));
  EXPECT_EQ(reparsed, original);
}

TEST(JsonRoundTripTest, NumbersKeepPrecision) {
  const double value = 0.12345678901234567;
  const JsonValue reparsed = json_parse(json_serialize(JsonValue(value)));
  EXPECT_DOUBLE_EQ(reparsed.as_number(), value);
}

}  // namespace
}  // namespace clrearly::util
