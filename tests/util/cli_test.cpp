#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clrearly::util {
namespace {

ArgParser make_parser() {
  ArgParser p("tool", "test parser");
  p.flag("verbose", "say more")
      .option("seed", "rng seed", "42")
      .option("name", "a string", "default-name");
  return p;
}

TEST(ArgParserTest, DefaultsApplyWithoutArgs) {
  ArgParser p = make_parser();
  p.parse({});
  EXPECT_FALSE(p.has("verbose"));
  EXPECT_EQ(p.get("seed"), "42");
  EXPECT_EQ(p.get_uint("seed"), 42u);
  EXPECT_EQ(p.get("name"), "default-name");
  EXPECT_TRUE(p.positionals().empty());
}

TEST(ArgParserTest, SpaceAndEqualsSyntax) {
  ArgParser p = make_parser();
  p.parse({"--seed", "7", "--name=xyz", "--verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_EQ(p.get_uint("seed"), 7u);
  EXPECT_EQ(p.get("name"), "xyz");
}

TEST(ArgParserTest, PositionalsCollected) {
  ArgParser p = make_parser();
  p.parse({"first", "--seed", "9", "second"});
  ASSERT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positionals()[0], "first");
  EXPECT_EQ(p.positionals()[1], "second");
}

TEST(ArgParserTest, DoubleDashEndsOptions) {
  ArgParser p = make_parser();
  p.parse({"--", "--seed", "9"});
  EXPECT_EQ(p.get_uint("seed"), 42u);  // default; after -- all positional
  EXPECT_EQ(p.positionals().size(), 2u);
}

TEST(ArgParserTest, Errors) {
  ArgParser p = make_parser();
  EXPECT_THROW(p.parse({"--unknown"}), std::invalid_argument);
  EXPECT_THROW(p.parse({"--seed"}), std::invalid_argument);  // missing value
  EXPECT_THROW(p.parse({"--verbose=1"}), std::invalid_argument);
  p.parse({"--seed", "abc"});
  EXPECT_THROW(p.get_number("seed"), std::invalid_argument);
  p.parse({"--seed", "1.5"});
  EXPECT_DOUBLE_EQ(p.get_number("seed"), 1.5);
  EXPECT_THROW(p.get_uint("seed"), std::invalid_argument);
  p.parse({"--seed", "-3"});
  EXPECT_THROW(p.get_uint("seed"), std::invalid_argument);
  EXPECT_THROW(p.get("nonexistent"), std::invalid_argument);
}

TEST(ArgParserTest, DuplicateDeclarationRejected) {
  ArgParser p("t", "d");
  p.flag("x", "first");
  EXPECT_THROW(p.flag("x", "again"), std::invalid_argument);
  EXPECT_THROW(p.option("x", "again", ""), std::invalid_argument);
}

TEST(ArgParserTest, HelpListsEverything) {
  const ArgParser p = make_parser();
  const std::string help = p.help();
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--seed <value> (default: 42)"), std::string::npos);
  EXPECT_NE(help.find("say more"), std::string::npos);
  EXPECT_NE(help.find("test parser"), std::string::npos);
}

TEST(ArgParserTest, RepeatedOptionLastWins) {
  ArgParser p = make_parser();
  p.parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(p.get_uint("seed"), 2u);
}

}  // namespace
}  // namespace clrearly::util
