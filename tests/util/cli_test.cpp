#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::util {
namespace {

ArgParser make_parser() {
  ArgParser p("tool", "test parser");
  p.flag("verbose", "say more")
      .option("seed", "rng seed", "42")
      .option("name", "a string", "default-name");
  return p;
}

TEST(ArgParserTest, DefaultsApplyWithoutArgs) {
  ArgParser p = make_parser();
  p.parse({});
  EXPECT_FALSE(p.has("verbose"));
  EXPECT_EQ(p.get("seed"), "42");
  EXPECT_EQ(p.get_uint("seed"), 42u);
  EXPECT_EQ(p.get("name"), "default-name");
  EXPECT_TRUE(p.positionals().empty());
}

TEST(ArgParserTest, SpaceAndEqualsSyntax) {
  ArgParser p = make_parser();
  p.parse({"--seed", "7", "--name=xyz", "--verbose"});
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_EQ(p.get_uint("seed"), 7u);
  EXPECT_EQ(p.get("name"), "xyz");
}

TEST(ArgParserTest, PositionalsCollected) {
  ArgParser p = make_parser();
  p.parse({"first", "--seed", "9", "second"});
  ASSERT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positionals()[0], "first");
  EXPECT_EQ(p.positionals()[1], "second");
}

TEST(ArgParserTest, DoubleDashEndsOptions) {
  ArgParser p = make_parser();
  p.parse({"--", "--seed", "9"});
  EXPECT_EQ(p.get_uint("seed"), 42u);  // default; after -- all positional
  EXPECT_EQ(p.positionals().size(), 2u);
}

TEST(ArgParserTest, Errors) {
  ArgParser p = make_parser();
  EXPECT_THROW(p.parse({"--unknown"}), std::invalid_argument);
  EXPECT_THROW(p.parse({"--seed"}), std::invalid_argument);  // missing value
  EXPECT_THROW(p.parse({"--verbose=1"}), std::invalid_argument);
  p.parse({"--seed", "abc"});
  EXPECT_THROW(p.get_number("seed"), std::invalid_argument);
  p.parse({"--seed", "1.5"});
  EXPECT_DOUBLE_EQ(p.get_number("seed"), 1.5);
  EXPECT_THROW(p.get_uint("seed"), std::invalid_argument);
  p.parse({"--seed", "-3"});
  EXPECT_THROW(p.get_uint("seed"), std::invalid_argument);
  EXPECT_THROW(p.get("nonexistent"), std::invalid_argument);
}

TEST(ArgParserTest, MalformedNumbersAreRejectedNotTruncated) {
  // std::stod used to accept "1.5abc" (silently dropping the garbage) and
  // leading whitespace; from_chars rejects both, and the empty string.
  ArgParser p = make_parser();
  for (const char* bad : {"1.5abc", "3x", " 7", "", "--", "nan(", "0x10"}) {
    p.parse({"--seed", bad});
    EXPECT_THROW(p.get_number("seed"), std::invalid_argument)
        << "value '" << bad << "' must be rejected";
  }
  p.parse({"--seed=-2.5e-3"});
  EXPECT_DOUBLE_EQ(p.get_number("seed"), -2.5e-3);
}

TEST(ArgParserTest, DuplicateDeclarationRejected) {
  ArgParser p("t", "d");
  p.flag("x", "first");
  EXPECT_THROW(p.flag("x", "again"), std::invalid_argument);
  EXPECT_THROW(p.option("x", "again", ""), std::invalid_argument);
}

TEST(ArgParserTest, HelpListsEverything) {
  const ArgParser p = make_parser();
  const std::string help = p.help();
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--seed <value> (default: 42)"), std::string::npos);
  EXPECT_NE(help.find("say more"), std::string::npos);
  EXPECT_NE(help.find("test parser"), std::string::npos);
}

TEST(ArgParserTest, RepeatedOptionLastWins) {
  ArgParser p = make_parser();
  p.parse({"--seed", "1", "--seed", "2"});
  EXPECT_EQ(p.get_uint("seed"), 2u);
}

// ---- --log-level plumbing (add_log_level_option / parse_standard_args) ----

TEST(LogLevelOptionTest, RoundTripsThroughStrings) {
  for (LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                         LogLevel::Error, LogLevel::Off}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
}

TEST(LogLevelOptionTest, DeclaresOptionWithDefault) {
  ArgParser p("tool", "test");
  add_log_level_option(p, LogLevel::Warn);
  p.parse({});
  EXPECT_EQ(p.get("log-level"), "warn");
  p.parse({"--log-level", "debug"});
  EXPECT_EQ(p.get("log-level"), "debug");
  EXPECT_NE(p.help().find("--log-level"), std::string::npos);
}

/// Restores the global log level and thread count after each precedence test
/// so the suite leaves no trace in other tests' environment.
class StandardArgsTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override {
    set_log_level(previous_);
    set_thread_count(0);
  }

  /// Run parse_standard_args over `cli` (argv[1:]) with `default_level`.
  static bool run(const std::vector<std::string>& cli,
                  LogLevel default_level) {
    std::vector<std::string> storage = cli;
    storage.insert(storage.begin(), "tool");
    std::vector<char*> argv;
    argv.reserve(storage.size());
    for (std::string& arg : storage) argv.push_back(arg.data());
    ArgParser parser("tool", "standard-args test");
    return parse_standard_args(parser, static_cast<int>(argv.size()),
                               argv.data(), default_level);
  }

 private:
  LogLevel previous_ = LogLevel::Info;
};

TEST_F(StandardArgsTest, DefaultLevelBeatsPriorProcessState) {
  set_log_level(LogLevel::Debug);  // whatever the process had before
  ASSERT_TRUE(run({}, LogLevel::Warn));
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST_F(StandardArgsTest, ExplicitFlagBeatsDefaultLevel) {
  set_log_level(LogLevel::Error);
  ASSERT_TRUE(run({"--log-level", "debug"}, LogLevel::Warn));
  EXPECT_EQ(log_level(), LogLevel::Debug);
  ASSERT_TRUE(run({"--log-level=off"}, LogLevel::Warn));
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(StandardArgsTest, HelpReturnsFalseWithoutTouchingLogLevel) {
  set_log_level(LogLevel::Error);
  EXPECT_FALSE(run({"--help"}, LogLevel::Warn));
  EXPECT_EQ(log_level(), LogLevel::Error);
}

}  // namespace
}  // namespace clrearly::util
