#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace clrearly::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear in 1000 draws
}

TEST(RngTest, IndexStaysBelowBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
  // n = 1 always yields 0.
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(16);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 50001; ++i) xs.push_back(rng.lognormal(std::log(500.0), 0.5));
  std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
  EXPECT_NEAR(xs[25000], 500.0, 25.0);
}

TEST(RngTest, ShuffleProducesPermutation) {
  Rng rng(18);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(RngTest, ShuffleActuallyShuffles) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(20);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(RngTest, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(21);
  const std::vector<double> weights{0.0, 0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.weighted_index(weights));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent_a(99), parent_b(99);
  Rng child_a = parent_a.split();
  Rng child_b = parent_b.split();
  // Identical derivation -> identical child streams.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(child_a.next_u64(), child_b.next_u64());
  }
  // Child stream differs from the parent's continued stream.
  Rng parent_c(99);
  Rng child_c = parent_c.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_c.next_u64() == parent_c.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitChildIgnoresCachedNormalState) {
  // Regression: split() must hand out children with an empty Box-Muller
  // cache. A parent holding a cached second normal has the same raw xoshiro
  // state as one that has already consumed it (returning the cached value
  // costs no raw draws), so both must derive the *identical* child stream.
  Rng cached(123);
  (void)cached.normal();  // draws a Box-Muller pair, caches the second value
  Rng drained = cached;
  (void)drained.normal();  // consumes only the cache; raw state unchanged

  Rng child_of_cached = cached.split();
  Rng child_of_drained = drained.split();
  EXPECT_EQ(child_of_cached, child_of_drained);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_of_cached.next_u64(), child_of_drained.next_u64());
    EXPECT_DOUBLE_EQ(child_of_cached.normal(), child_of_drained.normal());
  }

  // And the child's first normal must not be the parent's pending cached
  // value — interleaved normal() + split() produce independent draws.
  Rng parent(7);
  const double parent_first = parent.normal();  // caches the pair's second
  Rng child = parent.split();
  const double child_first = child.normal();
  const double parent_second = parent.normal();  // the cached value
  EXPECT_NE(child_first, parent_second);
  EXPECT_NE(child_first, parent_first);
}

}  // namespace
}  // namespace clrearly::util
