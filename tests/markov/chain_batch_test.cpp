// Differential tests for the batched SoA chain kernel: batched output is
// pinned *bit-identical* to the scalar solve_row0 path at every lane width
// and every SIMD dispatch level, including ragged final groups, mixed size
// classes, dedupe, cache backfill and singular edge chains; plus the
// bounded shrink policy of both workspace flavors and a concurrent-batch
// TSan shard (test names stay under ChainBatch* so the CI TSan regex finds
// them).
#include "markov/chain_batch.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "markov/chain.hpp"
#include "platform/pe.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "reliability/task_metrics.hpp"
#include "util/cpu_features.hpp"
#include "util/memo_cache.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::markov {
namespace {

using reliability::analyze_clr_chain;
using reliability::analyze_clr_chain_batch;
using reliability::analyze_clr_chain_uncached;
using reliability::ChainBatchOptions;
using reliability::ChainSolveStatus;
using reliability::ClrChainAnalysis;
using reliability::ClrChainParams;

// Bitwise equality: the contract is stronger than == (which calls -0.0 and
// 0.0 equal), so compare the representations.
#define EXPECT_BITEQ(a, b)                                 \
  EXPECT_EQ(std::bit_cast<std::uint64_t>(double(a)),       \
            std::bit_cast<std::uint64_t>(double(b)))       \
      << "values " << (a) << " vs " << (b)

double frac(double x) { return x - std::floor(x); }

/// Dense distinct parameter sets: every field varies continuously with
/// `salt`, so no two lanes of a test batch are accidentally identical (the
/// dedupe test builds duplicates on purpose).
ClrChainParams make_params(std::size_t intervals, std::size_t salt) {
  const double s = static_cast<double>(salt);
  ClrChainParams p;
  p.exec_time_us = 50.0 + 0.37 * s;
  p.lambda_per_us = 1e-4 * (1.0 + frac(s * 0.173));
  p.hw_masking = 0.10 + 0.80 * frac(s * 0.113);
  p.implicit_ssw_masking = 0.05 + 0.60 * frac(s * 0.211);
  p.detection_coverage = 0.50 + 0.45 * frac(s * 0.317);
  p.tolerance_success = 0.40 + 0.55 * frac(s * 0.419);
  p.asw_masking = 0.20 + 0.70 * frac(s * 0.523);
  p.intervals = intervals;
  p.detection_time_us = 0.2 + 0.3 * frac(s * 0.611);
  p.tolerance_time_us = 1.0 + frac(s * 0.731);
  p.checkpoint_time_us = 0.5 + frac(s * 0.831);
  p.checkpoint_error_prob = 1e-5 * frac(s * 0.941);
  return p;
}

/// A chain that loops Exec -> HW -> Impl -> Det -> Tol -> Exec forever:
/// pne underflows to 0, nothing masks, detection and tolerance are certain
/// — I - Q is singular and the scalar path throws std::domain_error.
ClrChainParams singular_params() {
  ClrChainParams p = make_params(1, 0);
  p.exec_time_us = 1000.0;
  p.lambda_per_us = 1e6;  // pne = exp(-1e9) == 0.0
  p.hw_masking = 0.0;
  p.implicit_ssw_masking = 0.0;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  return p;
}

void expect_same_analysis(const ClrChainAnalysis& got,
                          const ClrChainAnalysis& want) {
  EXPECT_BITEQ(got.min_exec_time_us, want.min_exec_time_us);
  EXPECT_BITEQ(got.avg_exec_time_us, want.avg_exec_time_us);
  EXPECT_BITEQ(got.exec_time_stddev_us, want.exec_time_stddev_us);
  EXPECT_BITEQ(got.error_prob, want.error_prob);
}

/// Batched analysis of `params` at group width `width` must equal the
/// scalar uncached reference element for element, bitwise.
void expect_batch_matches_scalar(const std::vector<ClrChainParams>& params,
                                 std::size_t width) {
  ChainBatchOptions options;
  options.group_width = width;
  options.use_cache = false;
  const std::vector<ClrChainAnalysis> batched =
      analyze_clr_chain_batch(params, options);
  ASSERT_EQ(batched.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    SCOPED_TRACE("index " + std::to_string(i) + " width " +
                 std::to_string(width));
    expect_same_analysis(batched[i], analyze_clr_chain_uncached(params[i]));
  }
}

class ChainBatchDifferentialTest
    : public ::testing::TestWithParam<std::size_t> {};

// The tentpole pin: for every size class (t = 7n - 1 transient states, so
// intervals 1..6 sweeps t = 6..41) and every supported lane width, batched
// results are bit-identical to the scalar kernel.
TEST_P(ChainBatchDifferentialTest, BitIdenticalToScalarAcrossWidths) {
  const std::size_t intervals = GetParam();
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 13; ++i) {
    params.push_back(make_params(intervals, 100 * intervals + i));
  }
  for (std::size_t width : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    expect_batch_matches_scalar(params, width);
  }
}

INSTANTIATE_TEST_SUITE_P(SizeClasses, ChainBatchDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Every dispatch level the hardware supports produces the same bits — the
// forced level caps at detected_simd_level(), so on scalar-only CI this
// still runs (and trivially passes) for each requested level.
TEST(ChainBatchDispatchTest, BitIdenticalAcrossSimdLevels) {
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 9; ++i) params.push_back(make_params(3, 40 + i));
  for (const util::SimdLevel level :
       {util::SimdLevel::kScalar, util::SimdLevel::kAvx2,
        util::SimdLevel::kAvx512}) {
    SCOPED_TRACE(util::to_string(level));
    util::force_simd_level(level);
    for (std::size_t width : {std::size_t{4}, std::size_t{8}}) {
      expect_batch_matches_scalar(params, width);
    }
  }
  util::reset_simd_level();
}

// Ragged final group (5 chains at width 4 -> 3 pad lanes in group 2) and
// the non-preferred width fallback (width 3 goes through the per-lane
// staging path).
TEST(ChainBatchRaggedTest, PadLanesAndOddWidths) {
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 5; ++i) params.push_back(make_params(2, 70 + i));
  static util::Counter& pads = util::metric_counter("chain.batch.pad_lanes");
  const std::uint64_t pads_before = pads.value();
  expect_batch_matches_scalar(params, 4);
  // 2 groups x 2 chain flavors are solved, but pad accounting is per
  // collect-group: 4 + 1(+3 pads).
  EXPECT_EQ(pads.value() - pads_before, 3u);
  expect_batch_matches_scalar(params, 3);
  expect_batch_matches_scalar(params, 8);
}

// One call mixing size classes partitions internally and still matches the
// scalar reference at every position.
TEST(ChainBatchMixedClassTest, MixedSizeClassesInOneCall) {
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 21; ++i) {
    params.push_back(make_params(1 + (i * 7) % 5, 300 + i));
  }
  expect_batch_matches_scalar(params, 4);
}

// Duplicate parameter sets burn no extra lanes: they are resolved through
// the canonical Key128 and counted in chain.batch.dedupe_hits.
TEST(ChainBatchDedupeTest, DuplicatesShareOneLane) {
  const ClrChainParams base = make_params(2, 7);
  std::vector<ClrChainParams> params(9, base);
  params[4] = make_params(2, 8);  // one distinct set in the middle

  static util::Counter& dedupe =
      util::metric_counter("chain.batch.dedupe_hits");
  static util::Counter& lanes =
      util::metric_counter("chain.batch.lanes_filled");
  const std::uint64_t dedupe_before = dedupe.value();
  const std::uint64_t lanes_before = lanes.value();

  ChainBatchOptions options;
  options.group_width = 4;
  options.use_cache = false;
  const auto batched = analyze_clr_chain_batch(params, options);

  EXPECT_EQ(dedupe.value() - dedupe_before, 7u);  // 9 dups of 2 uniques
  EXPECT_EQ(lanes.value() - lanes_before, 2u);
  for (std::size_t i = 0; i < params.size(); ++i) {
    expect_same_analysis(batched[i], analyze_clr_chain_uncached(params[i]));
  }
}

// Batch-solved misses land in the memo cache: a scalar analyze_clr_chain of
// the same parameters afterwards is a pure cache hit (no new kernel solve).
TEST(ChainBatchCacheTest, BackfillsMemoCache) {
  util::set_cache_capacity(3333);  // distinct capacity -> fresh empty cache
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 6; ++i) params.push_back(make_params(3, 500 + i));

  ChainBatchOptions options;
  options.group_width = 4;
  const auto batched = analyze_clr_chain_batch(params, options);

  static util::Counter& solves =
      util::metric_counter("chain.solve_row0_calls");
  const std::uint64_t solves_before = solves.value();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ClrChainAnalysis cached = analyze_clr_chain(params[i]);
    expect_same_analysis(batched[i], cached);
  }
  EXPECT_EQ(solves.value(), solves_before) << "expected pure cache hits";

  // Second batched call over the same params: all cache hits, zero lanes.
  static util::Counter& lanes =
      util::metric_counter("chain.batch.lanes_filled");
  static util::Counter& hits = util::metric_counter("chain.batch.cache_hits");
  const std::uint64_t lanes_before = lanes.value();
  const std::uint64_t hits_before = hits.value();
  const auto again = analyze_clr_chain_batch(params, options);
  EXPECT_EQ(lanes.value(), lanes_before);
  EXPECT_EQ(hits.value() - hits_before, params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    expect_same_analysis(again[i], batched[i]);
  }
  util::reset_cache_capacity();
}

// A singular (non-absorbing) chain in a batch: without a status vector the
// call throws exactly like the scalar path; with one, the bad lane is
// flagged, zeroed, kept out of the cache — and its batch-mates still match
// the scalar reference bit for bit.
TEST(ChainBatchSingularTest, SingularLanesFlaggedOrThrow) {
  std::vector<ClrChainParams> params;
  for (std::size_t i = 0; i < 5; ++i) params.push_back(make_params(1, 900 + i));
  params[2] = singular_params();
  ASSERT_THROW(analyze_clr_chain_uncached(params[2]), std::domain_error);

  ChainBatchOptions options;
  options.group_width = 4;
  options.use_cache = false;
  EXPECT_THROW(analyze_clr_chain_batch(params, options), std::domain_error);

  std::vector<ChainSolveStatus> status;
  const auto batched = analyze_clr_chain_batch(params, options, &status);
  ASSERT_EQ(status.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i == 2) {
      EXPECT_EQ(status[i], ChainSolveStatus::kSingular);
      EXPECT_BITEQ(batched[i].avg_exec_time_us, 0.0);
      EXPECT_BITEQ(batched[i].error_prob, 0.0);
    } else {
      EXPECT_EQ(status[i], ChainSolveStatus::kOk);
      expect_same_analysis(batched[i], analyze_clr_chain_uncached(params[i]));
    }
  }

  // All-singular batch: every lane flagged, no throw with status out.
  std::vector<ClrChainParams> all_bad(3, singular_params());
  const auto bad = analyze_clr_chain_batch(all_bad, options, &status);
  for (const ChainSolveStatus s : status) {
    EXPECT_EQ(s, ChainSolveStatus::kSingular);
  }
}

// The batched evaluate paths of TaskAnalyzer ride on the same machinery;
// spot-check the span-of-configs form against scalar evaluate().
TEST(ChainBatchEvaluateTest, EvaluateBatchMatchesScalar) {
  const auto analyzer = reliability::TaskAnalyzer::paper_default();
  reliability::BaseImpl impl;
  impl.name = "k";
  impl.base_exec_time_us = 120.0;
  impl.base_power_w = 0.8;
  platform::PeType pe;
  pe.name = "test-pe";
  pe.masking_factor = 0.3;
  pe.dvfs = platform::DvfsTable::paper_default();
  std::vector<reliability::ClrConfig> configs;
  const auto& space = analyzer.space();
  for (std::size_t h = 0; h < space.hw_methods().size(); ++h) {
    for (std::size_t s = 0; s < space.ssw_methods().size(); ++s) {
      configs.push_back(reliability::ClrConfig{h, s, 0, 0});
    }
  }
  const auto batched = analyzer.evaluate_batch(impl, pe, configs);
  ASSERT_EQ(batched.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto scalar = analyzer.evaluate(impl, pe, configs[i]);
    EXPECT_BITEQ(batched[i].avg_exec_time_us, scalar.avg_exec_time_us);
    EXPECT_BITEQ(batched[i].error_prob, scalar.error_prob);
    EXPECT_BITEQ(batched[i].energy_uj, scalar.energy_uj);
    EXPECT_BITEQ(batched[i].mttf_hours, scalar.mttf_hours);
  }
}

// Satellite fix: a large-t burst must not pin the thread-local buffers at
// their high-water size forever. After kShrinkPatience small configures the
// ChainBatch releases its capacity.
TEST(ChainBatchShrinkTest, BatchWorkspaceShrinksAfterBurst) {
  ChainBatch ws;
  ws.configure(120, 2, 8);  // ~240k doubles, well past kShrinkMinDoubles
  const std::size_t burst_footprint = ws.footprint_doubles();
  EXPECT_GE(ws.high_water_doubles, ChainBatch::kShrinkMinDoubles);

  for (std::size_t i = 0; i < ChainBatch::kShrinkPatience; ++i) {
    EXPECT_GE(ws.footprint_doubles(), burst_footprint) << "shrank early, i=" << i;
    ws.configure(6, 1, 4);
  }
  EXPECT_LT(ws.footprint_doubles(), burst_footprint / 4);
  // And the policy re-arms: a new burst re-grows, small use shrinks again.
  ws.configure(120, 2, 8);
  EXPECT_GE(ws.footprint_doubles(), burst_footprint);
}

// Same policy on the scalar ChainWorkspace, driven through the real
// assembler entry point (note_configure is called inside assemble_chain).
TEST(ChainBatchShrinkTest, ScalarWorkspaceShrinksAfterBurst) {
  ChainWorkspace ws;
  const ClrChainParams big = make_params(30, 1);    // t = 209
  const ClrChainParams small = make_params(1, 2);   // t = 6
  reliability::assemble_timing_chain(big, ws);
  solve_row0(ws, /*with_second_moment=*/true);
  const std::size_t burst_footprint = ws.footprint_doubles();
  EXPECT_GE(ws.high_water_doubles, ChainWorkspace::kShrinkMinDoubles);

  for (std::size_t i = 0; i < ChainWorkspace::kShrinkPatience; ++i) {
    reliability::assemble_timing_chain(small, ws);
  }
  EXPECT_LT(ws.footprint_doubles(), burst_footprint / 4);
  // The high-water gauge saw the burst.
  EXPECT_GE(util::metric_gauge("chain.workspace_hwm_doubles").value(),
            static_cast<double>(ChainWorkspace::kShrinkMinDoubles));
  // Results after a shrink are unaffected.
  reliability::assemble_timing_chain(small, ws);
  const Row0Solve after = solve_row0(ws, /*with_second_moment=*/true);
  const ClrChainAnalysis ref = analyze_clr_chain_uncached(small);
  EXPECT_BITEQ(after.expected_time, ref.avg_exec_time_us);
}

// TSan shard: concurrent batched analyses use thread-local ChainBatch
// workspaces and the shared memo cache; no races, and every thread's
// results match the scalar reference.
TEST(ChainBatchConcurrencyTest, ConcurrentBatchesAreRaceFreeAndExact) {
  util::set_cache_capacity(2048);
  std::vector<std::vector<ClrChainParams>> work(16);
  for (std::size_t w = 0; w < work.size(); ++w) {
    for (std::size_t i = 0; i < 12; ++i) {
      // Overlapping param sets across threads -> concurrent cache
      // insert/lookup of the same keys.
      work[w].push_back(make_params(1 + (i % 3), 700 + (w % 4) * 16 + i));
    }
  }
  std::vector<std::vector<ClrChainAnalysis>> results(work.size());
  util::parallel_for(work.size(), [&](std::size_t w) {
    ChainBatchOptions options;
    options.group_width = 4;
    results[w] = analyze_clr_chain_batch(work[w], options);
  });
  for (std::size_t w = 0; w < work.size(); ++w) {
    for (std::size_t i = 0; i < work[w].size(); ++i) {
      expect_same_analysis(results[w][i],
                           analyze_clr_chain_uncached(work[w][i]));
    }
  }
  util::reset_cache_capacity();
}

// Dispatch plumbing: preferred widths per level, env parsing, and the
// forced-level clamp.
TEST(ChainBatchDispatchTest, PreferredWidthsAndEnvParsing) {
  EXPECT_EQ(preferred_batch_width(util::SimdLevel::kAvx512), 8u);
  EXPECT_EQ(preferred_batch_width(util::SimdLevel::kAvx2), 8u);
  EXPECT_EQ(preferred_batch_width(util::SimdLevel::kScalar), 4u);

  EXPECT_EQ(util::detail::parse_simd_env("scalar"), util::SimdLevel::kScalar);
  EXPECT_EQ(util::detail::parse_simd_env("avx2"), util::SimdLevel::kAvx2);
  EXPECT_EQ(util::detail::parse_simd_env("avx512"), util::SimdLevel::kAvx512);
  EXPECT_EQ(util::detail::parse_simd_env("auto"), util::SimdLevel::kAvx512);
  EXPECT_EQ(util::detail::parse_simd_env(nullptr), util::SimdLevel::kAvx512);
  EXPECT_EQ(util::detail::parse_simd_env("bogus"), util::SimdLevel::kAvx512);

  util::force_simd_level(util::SimdLevel::kScalar);
  EXPECT_EQ(util::active_simd_level(), util::SimdLevel::kScalar);
  util::reset_simd_level();
  EXPECT_LE(util::active_simd_level(), util::detected_simd_level());
}

}  // namespace
}  // namespace clrearly::markov
