#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace clrearly::markov {
namespace {

using util::Matrix;

// --- Construction validation -------------------------------------------

TEST(AbsorbingChainTest, RejectsNonSquareQ) {
  EXPECT_THROW(AbsorbingChain(Matrix(2, 3), Matrix(2, 1), {0.0, 0.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsEmptyChain) {
  EXPECT_THROW(AbsorbingChain(Matrix(0, 0), Matrix(0, 1), {}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsMissingAbsorbingStates) {
  EXPECT_THROW(AbsorbingChain(Matrix{{0.5}}, Matrix(1, 0), {1.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsRowNotSummingToOne) {
  EXPECT_THROW(AbsorbingChain(Matrix{{0.5}}, Matrix{{0.4}}, {1.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsNegativeProbability) {
  EXPECT_THROW(AbsorbingChain(Matrix{{-0.1}}, Matrix{{1.1}}, {1.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsNegativeResidence) {
  EXPECT_THROW(AbsorbingChain(Matrix{{0.0}}, Matrix{{1.0}}, {-1.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, RejectsNonAbsorbingChain) {
  // Two transient states looping into each other with no exit.
  const Matrix q{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix r(2, 1);
  EXPECT_THROW(AbsorbingChain(q, r, {1.0, 1.0}), std::domain_error);
}

// --- Hand-computed geometric chain --------------------------------------
// One transient state with self-loop p and absorption 1-p. The number of
// visits is geometric: E = 1/(1-p), E[time] = r/(1-p),
// Var[time] = r^2 p/(1-p)^2.

class GeometricChainTest : public ::testing::TestWithParam<double> {};

TEST_P(GeometricChainTest, MatchesClosedForm) {
  const double p = GetParam();
  const double residence = 2.5;
  const AbsorbingChain chain(Matrix{{p}}, Matrix{{1.0 - p}}, {residence});

  const double expected_visits = 1.0 / (1.0 - p);
  EXPECT_NEAR(chain.expected_visits(0)[0], expected_visits, 1e-12);
  EXPECT_NEAR(chain.expected_steps(0), expected_visits, 1e-12);
  EXPECT_NEAR(chain.expected_time(0), residence * expected_visits, 1e-12);
  EXPECT_NEAR(chain.time_variance(0),
              residence * residence * p / ((1.0 - p) * (1.0 - p)), 1e-9);
  EXPECT_NEAR(chain.absorption_probability(0, 0), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(LoopProbabilities, GeometricChainTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 0.99));

// --- Series chain --------------------------------------------------------

TEST(AbsorbingChainTest, SeriesChainAccumulatesResidence) {
  // s0 -> s1 -> absorbed, deterministic.
  const Matrix q{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix r{{0.0}, {1.0}};
  const AbsorbingChain chain(q, r, {3.0, 4.0});
  EXPECT_NEAR(chain.expected_time(0), 7.0, 1e-12);
  EXPECT_NEAR(chain.expected_time(1), 4.0, 1e-12);
  EXPECT_NEAR(chain.expected_steps(0), 2.0, 1e-12);
  EXPECT_NEAR(chain.time_variance(0), 0.0, 1e-9);  // deterministic path
}

// --- Competing absorbing states ------------------------------------------

TEST(AbsorbingChainTest, AbsorptionProbabilitiesSplit) {
  // One transient state: 30% error, 60% success, 10% retry.
  const Matrix q{{0.1}};
  const Matrix r{{0.3, 0.6}};
  const AbsorbingChain chain(q, r, {1.0});
  // Conditional split after removing the self-loop: 1/3 vs 2/3.
  EXPECT_NEAR(chain.absorption_probability(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.absorption_probability(0, 1), 2.0 / 3.0, 1e-12);
  // Rows of B sum to 1.
  const auto& b = chain.absorption_probabilities();
  EXPECT_NEAR(b(0, 0) + b(0, 1), 1.0, 1e-12);
}

// --- The classic drunkard's-walk example (Kemeny & Snell) -----------------
// States 1,2,3 transient between absorbing walls 0 and 4; p=1/2 each way.

TEST(AbsorbingChainTest, DrunkardsWalk) {
  const Matrix q{{0.0, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.0}};
  const Matrix r{{0.5, 0.0}, {0.0, 0.0}, {0.0, 0.5}};
  const AbsorbingChain chain(q, r, {1.0, 1.0, 1.0});
  // Known results: expected steps from the middle = 4; absorption left = 1/2.
  EXPECT_NEAR(chain.expected_steps(1), 4.0, 1e-12);
  EXPECT_NEAR(chain.expected_steps(0), 3.0, 1e-12);
  EXPECT_NEAR(chain.absorption_probability(1, 0), 0.5, 1e-12);
  EXPECT_NEAR(chain.absorption_probability(0, 0), 0.75, 1e-12);
}

// --- Start distributions --------------------------------------------------

TEST(AbsorbingChainTest, ExpectedTimeUnderDistribution) {
  const Matrix q{{0.0, 1.0}, {0.0, 0.0}};
  const Matrix r{{0.0}, {1.0}};
  const AbsorbingChain chain(q, r, {3.0, 4.0});
  EXPECT_NEAR(chain.expected_time({0.5, 0.5}), 0.5 * 7.0 + 0.5 * 4.0, 1e-12);
  EXPECT_THROW(chain.expected_time(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(AbsorbingChainTest, OutOfRangeAccessorsThrow) {
  const AbsorbingChain chain(Matrix{{0.0}}, Matrix{{1.0}}, {1.0});
  EXPECT_THROW(chain.expected_time(1), std::out_of_range);
  EXPECT_THROW(chain.expected_visits(1), std::out_of_range);
  EXPECT_THROW(chain.expected_steps(1), std::out_of_range);
  EXPECT_THROW(chain.absorption_probability(0, 1), std::out_of_range);
  EXPECT_THROW(chain.time_variance(1), std::out_of_range);
}

// --- Monte-Carlo cross-validation -----------------------------------------

TEST(SimulateTest, AgreesWithAnalyticalResults) {
  // Retry-style chain: work (t=5) fails 40% -> recover (t=2) succeeds 75%.
  const Matrix q{{0.0, 0.4}, {0.75, 0.0}};
  const Matrix r{{0.6, 0.0}, {0.0, 0.25}};
  const AbsorbingChain chain(q, r, {5.0, 2.0});
  const SimulationResult sim = simulate(chain, 0, 200000, /*seed=*/77);

  EXPECT_NEAR(sim.mean_time, chain.expected_time(0), 0.05);
  EXPECT_NEAR(sim.mean_steps, chain.expected_steps(0), 0.02);
  EXPECT_NEAR(sim.absorption_frequency[0], chain.absorption_probability(0, 0),
              0.005);
  EXPECT_NEAR(sim.absorption_frequency[1], chain.absorption_probability(0, 1),
              0.005);
}

TEST(SimulateTest, ValidatesArguments) {
  const AbsorbingChain chain(Matrix{{0.0}}, Matrix{{1.0}}, {1.0});
  EXPECT_THROW(simulate(chain, 1, 10, 1), std::out_of_range);
  EXPECT_THROW(simulate(chain, 0, 0, 1), std::invalid_argument);
}

TEST(SimulateTest, DeterministicForSeed) {
  const Matrix q{{0.3}};
  const Matrix r{{0.7}};
  const AbsorbingChain chain(q, r, {1.0});
  const SimulationResult a = simulate(chain, 0, 1000, 5);
  const SimulationResult b = simulate(chain, 0, 1000, 5);
  EXPECT_EQ(a.mean_time, b.mean_time);
  EXPECT_EQ(a.absorption_frequency, b.absorption_frequency);
}

}  // namespace
}  // namespace clrearly::markov
