// Tests for the single-solve chain-analysis kernel: the adjoint row-0 solve
// against the full-inverse reference, the dense CLR assemblers against the
// named-state ChainBuilder path, lazy accessor consistency, workspace reuse
// under concurrency (TSan coverage), validation modes, and simulate()'s
// truncation accounting.
#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "reliability/clr_chain_builder.hpp"
#include "util/linsolve.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::markov {
namespace {

double rel_err(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  return std::abs(a - b) / scale;
}

/// Random absorbing chain: every row keeps strictly positive mass toward
/// every target (transient and absorbing), so absorption is guaranteed and
/// I - Q is comfortably nonsingular.
void fill_random_chain(std::size_t t, std::size_t a, util::Rng& rng,
                       util::Matrix& q, util::Matrix& r,
                       std::vector<double>& residence) {
  q.assign(t, t);
  r.assign(t, a);
  residence.assign(t, 0.0);
  std::vector<double> w(t + a);
  for (std::size_t i = 0; i < t; ++i) {
    double sum = 0.0;
    for (double& x : w) {
      x = rng.uniform(0.01, 1.0);
      sum += x;
    }
    for (std::size_t j = 0; j < t; ++j) q(i, j) = w[j] / sum;
    for (std::size_t k = 0; k < a; ++k) r(i, k) = w[t + k] / sum;
    residence[i] = rng.uniform(0.0, 10.0);
  }
}

/// Reference row-0 metrics through the full inverse N = (I - Q)^{-1} — the
/// pre-kernel computation, reproduced independently of AbsorbingChain.
struct Reference {
  std::vector<double> row0;
  std::vector<double> times;
  util::Matrix n, b;
  double t0 = 0.0, steps0 = 0.0, m0 = 0.0;
};

Reference full_inverse_reference(const util::Matrix& q, const util::Matrix& r,
                                 const std::vector<double>& residence) {
  const std::size_t t = q.rows();
  util::Matrix i_minus_q = util::Matrix::identity(t);
  i_minus_q -= q;
  Reference ref;
  ref.n = util::invert(i_minus_q);
  ref.b = ref.n * r;
  ref.times = ref.n.apply(residence);
  ref.t0 = ref.times[0];
  ref.row0.resize(t);
  for (std::size_t j = 0; j < t; ++j) {
    ref.row0[j] = ref.n(0, j);
    ref.steps0 += ref.n(0, j);
  }
  const std::vector<double> qt = q.apply(ref.times);
  std::vector<double> rhs(t);
  for (std::size_t i = 0; i < t; ++i) {
    rhs[i] = residence[i] * residence[i] + 2.0 * residence[i] * qt[i];
  }
  ref.m0 = ref.n.apply(rhs)[0];
  return ref;
}

reliability::ClrChainParams sample_params(std::size_t intervals,
                                          std::size_t salt) {
  reliability::ClrChainParams p;
  p.exec_time_us = 80.0 + static_cast<double>(salt % 13);
  p.lambda_per_us = 2e-4;
  p.hw_masking = 0.35;
  p.implicit_ssw_masking = 0.25;
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.92;
  p.asw_masking = 0.45;
  p.intervals = intervals;
  p.detection_time_us = 0.4;
  p.tolerance_time_us = 1.5;
  p.checkpoint_time_us = 0.8;
  p.checkpoint_error_prob = 2e-5;
  return p;
}

class ChainKernelRandomTest : public ::testing::TestWithParam<std::size_t> {};

// The kernel's single adjoint solve must reproduce the full-inverse
// reference for every row-0 metric, to 1e-12 relative.
TEST_P(ChainKernelRandomTest, MatchesFullInverseReference) {
  const std::size_t t = GetParam();
  util::Rng rng(4000 + t);
  for (std::size_t a : {std::size_t{1}, std::size_t{2}}) {
    ChainWorkspace ws;
    fill_random_chain(t, a, rng, ws.q, ws.r, ws.residence);
    const Reference ref = full_inverse_reference(ws.q, ws.r, ws.residence);

    const Row0Solve solved = solve_row0(ws, /*with_second_moment=*/true);
    EXPECT_LE(rel_err(solved.expected_time, ref.t0), 1e-12);
    EXPECT_LE(rel_err(solved.expected_steps, ref.steps0), 1e-12);
    EXPECT_LE(rel_err(solved.second_moment, ref.m0), 1e-12);
    ASSERT_EQ(ws.b0.size(), a);
    for (std::size_t k = 0; k < a; ++k) {
      EXPECT_LE(rel_err(ws.b0[k], ref.b(0, k)), 1e-12);
    }
    for (std::size_t j = 0; j < t; ++j) {
      EXPECT_LE(rel_err(ws.row0[j], ref.row0[j]), 1e-12);
    }

    // The AbsorbingChain front door (eager row-0 + lazy full state) must
    // agree with the same reference.
    const AbsorbingChain chain(ws.q, ws.r, ws.residence);
    EXPECT_LE(rel_err(chain.expected_time(0), ref.t0), 1e-12);
    EXPECT_LE(rel_err(chain.expected_steps(0), ref.steps0), 1e-12);
    for (std::size_t k = 0; k < a; ++k) {
      EXPECT_LE(rel_err(chain.absorption_probability(0, k), ref.b(0, k)),
                1e-12);
    }
    const double var_ref = ref.m0 - ref.t0 * ref.t0;
    EXPECT_LE(rel_err(chain.time_variance(0), var_ref),
              1e-9);  // subtractive cancellation: looser
    // Lazy full matrices against the reference inverse.
    for (std::size_t i = 0; i < t; ++i) {
      EXPECT_LE(rel_err(chain.expected_time(i), ref.times[i]), 1e-12);
      for (std::size_t j = 0; j < t; ++j) {
        EXPECT_LE(rel_err(chain.fundamental()(i, j), ref.n(i, j)), 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChainKernelRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 40));

// The dense assemblers must reproduce the ChainBuilder reference matrices
// bit for bit — same state order, same edge arithmetic.
TEST(ChainKernelTest, DenseAssemblerMatchesReferenceBitExactly) {
  for (std::size_t intervals : {1u, 2u, 3u, 5u}) {
    for (bool functional : {false, true}) {
      const reliability::ClrChainParams p = sample_params(intervals, 7);
      const AbsorbingChain ref =
          reliability::build_chain_reference(p, functional);
      ChainWorkspace ws;
      if (functional) {
        reliability::assemble_functional_chain(p, ws);
      } else {
        reliability::assemble_timing_chain(p, ws);
      }
      ASSERT_EQ(ws.q.rows(), ref.q().rows());
      ASSERT_EQ(ws.r.cols(), ref.r().cols());
      EXPECT_EQ(util::Matrix::max_abs_diff(ws.q, ref.q()), 0.0);
      EXPECT_EQ(util::Matrix::max_abs_diff(ws.r, ref.r()), 0.0);
      ASSERT_EQ(ws.residence.size(), ref.residence_times().size());
      for (std::size_t i = 0; i < ws.residence.size(); ++i) {
        EXPECT_EQ(ws.residence[i], ref.residence_times()[i]);
      }
    }
  }
}

// build_timing_chain / build_functional_chain (trusted fast path) must agree
// with the reference builder path through the public accessors.
TEST(ChainKernelTest, TrustedBuildersMatchReferenceAccessors) {
  const reliability::ClrChainParams p = sample_params(3, 2);
  const AbsorbingChain timing = reliability::build_timing_chain(p);
  const AbsorbingChain timing_ref =
      reliability::build_chain_reference(p, /*functional=*/false);
  EXPECT_LE(rel_err(timing.expected_time(0), timing_ref.expected_time(0)),
            1e-12);
  EXPECT_LE(rel_err(timing.time_variance(0), timing_ref.time_variance(0)),
            1e-9);

  const AbsorbingChain functional = reliability::build_functional_chain(p);
  const AbsorbingChain functional_ref =
      reliability::build_chain_reference(p, /*functional=*/true);
  EXPECT_LE(
      rel_err(functional.absorption_probability(0, reliability::kAbsorbError),
              functional_ref.absorption_probability(
                  0, reliability::kAbsorbError)),
      1e-12);
}

// Workspace reuse across solves of different sizes and kinds: a smaller
// chain after a larger one must not read stale buffer contents.
TEST(ChainKernelTest, WorkspaceReuseAcrossSizesIsClean) {
  ChainWorkspace ws;
  for (std::size_t intervals : {5u, 1u, 3u, 2u, 4u, 1u}) {
    const reliability::ClrChainParams p = sample_params(intervals, intervals);
    reliability::assemble_timing_chain(p, ws);
    const Row0Solve warm = solve_row0(ws, /*with_second_moment=*/true);

    ChainWorkspace fresh;
    reliability::assemble_timing_chain(p, fresh);
    const Row0Solve cold = solve_row0(fresh, /*with_second_moment=*/true);

    EXPECT_EQ(warm.expected_time, cold.expected_time);
    EXPECT_EQ(warm.expected_steps, cold.expected_steps);
    EXPECT_EQ(warm.second_moment, cold.second_moment);
    ASSERT_EQ(ws.b0.size(), fresh.b0.size());
    for (std::size_t k = 0; k < ws.b0.size(); ++k) {
      EXPECT_EQ(ws.b0[k], fresh.b0[k]);
    }
  }
}

// Concurrent cache-miss analyses: each worker must land on its own
// thread_local workspace and produce results identical to the serial path.
// Run under TSan in CI.
TEST(ChainKernelTest, ConcurrentWorkspacesMatchSerial) {
  const std::size_t jobs = 64;
  std::vector<reliability::ClrChainAnalysis> serial(jobs), parallel(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    serial[i] =
        reliability::analyze_clr_chain_uncached(sample_params(1 + i % 5, i));
  }
  util::set_thread_count(4);
  util::parallel_for(jobs, [&](std::size_t i) {
    parallel[i] =
        reliability::analyze_clr_chain_uncached(sample_params(1 + i % 5, i));
  });
  util::set_thread_count(0);
  for (std::size_t i = 0; i < jobs; ++i) {
    EXPECT_EQ(serial[i].avg_exec_time_us, parallel[i].avg_exec_time_us);
    EXPECT_EQ(serial[i].exec_time_stddev_us, parallel[i].exec_time_stddev_us);
    EXPECT_EQ(serial[i].error_prob, parallel[i].error_prob);
    EXPECT_EQ(serial[i].min_exec_time_us, parallel[i].min_exec_time_us);
  }
}

TEST(ChainKernelTest, FullValidationRejectsBadRows) {
  util::Matrix q{{0.5}};
  util::Matrix r{{0.4}};  // row sums to 0.9
  EXPECT_THROW(AbsorbingChain(q, r, {1.0}), std::invalid_argument);
  EXPECT_THROW(
      AbsorbingChain(q, r, {1.0}, 1e-9, ValidationMode::kFull),
      std::invalid_argument);
}

TEST(ChainKernelTest, TrustedValidationSkipsRowScansInRelease) {
#ifdef NDEBUG
  // Trusted mode skips the O(t^2) probability scans; structural checks and
  // the singularity check still run.
  util::Matrix q{{0.5}};
  util::Matrix r{{0.4}};  // row sums to 0.9 — would fail kFull
  const AbsorbingChain chain(q, r, {1.0}, 1e-9, ValidationMode::kTrusted);
  EXPECT_DOUBLE_EQ(chain.expected_time(0), 2.0);  // 1 / (1 - 0.5)
#else
  GTEST_SKIP() << "debug builds revalidate trusted input by design";
#endif
}

TEST(ChainKernelTest, TrustedStillRejectsStructuralErrors) {
  EXPECT_THROW(AbsorbingChain(util::Matrix(2, 3), util::Matrix(2, 1),
                              {1.0, 1.0}, 1e-9, ValidationMode::kTrusted),
               std::invalid_argument);
  // Non-absorbing (I - Q singular) must throw regardless of mode.
  util::Matrix loop{{1.0}};
  util::Matrix none{{0.0}};
  EXPECT_THROW(AbsorbingChain(loop, none, {1.0}, 1e-9,
                              ValidationMode::kTrusted),
               std::domain_error);
}

// Copies restart lazily but serve identical eager metrics; moves carry
// everything over.
TEST(ChainKernelTest, CopyAndMovePreserveMetrics) {
  ChainWorkspace ws;
  util::Rng rng(99);
  fill_random_chain(6, 2, rng, ws.q, ws.r, ws.residence);
  const AbsorbingChain original(ws.q, ws.r, ws.residence);
  const double t0 = original.expected_time(0);
  original.fundamental();  // materialize lazy state in the source

  AbsorbingChain copy = original;
  EXPECT_EQ(copy.expected_time(0), t0);
  EXPECT_LE(rel_err(copy.fundamental()(2, 3), original.fundamental()(2, 3)),
            1e-15);

  AbsorbingChain moved = std::move(copy);
  EXPECT_EQ(moved.expected_time(0), t0);

  AbsorbingChain assigned(util::Matrix{{0.0}}, util::Matrix{{1.0}}, {1.0});
  assigned = original;
  EXPECT_EQ(assigned.expected_time(0), t0);
}

// ---- simulate() truncation accounting --------------------------------------

TEST(SimulateTruncationTest, DeterministicTruncationAllTrialsThrows) {
  // 0 -> 1 (always), 1 -> absorb (always): absorption needs exactly 2 steps,
  // so max_steps = 1 truncates every trial deterministically.
  util::Matrix q{{0.0, 1.0}, {0.0, 0.0}};
  util::Matrix r{{0.0}, {1.0}};
  const AbsorbingChain chain(q, r, {1.0, 1.0});
  EXPECT_THROW(simulate(chain, 0, 100, 42, /*max_steps=*/1),
               std::runtime_error);
  // With max_steps = 2 every trial absorbs.
  const SimulationResult ok = simulate(chain, 0, 100, 42, /*max_steps=*/2);
  EXPECT_EQ(ok.truncated_trials, 0u);
  EXPECT_DOUBLE_EQ(ok.mean_steps, 2.0);
  EXPECT_DOUBLE_EQ(ok.mean_time, 2.0);
  EXPECT_DOUBLE_EQ(ok.absorption_frequency[0], 1.0);
}

TEST(SimulateTruncationTest, TruncatedTrialsExcludedFromAggregates) {
  // Self-loop with 50% absorption per step; max_steps = 1 truncates roughly
  // half the trials. Completed trials all absorbed after exactly one step.
  util::Matrix q{{0.5}};
  util::Matrix r{{0.5}};
  const AbsorbingChain chain(q, r, {3.0});
  const SimulationResult res = simulate(chain, 0, 2000, 7, /*max_steps=*/1);
  EXPECT_GT(res.truncated_trials, 0u);
  EXPECT_LT(res.truncated_trials, 2000u);
  // Aggregates are over completed trials only: every completed trial took
  // exactly one step of residence 3, and absorbed.
  EXPECT_DOUBLE_EQ(res.mean_steps, 1.0);
  EXPECT_DOUBLE_EQ(res.mean_time, 3.0);
  EXPECT_DOUBLE_EQ(res.absorption_frequency[0], 1.0);
}

TEST(SimulateTruncationTest, DefaultCapLeavesHealthyChainsUntouched) {
  util::Matrix q{{0.3}};
  util::Matrix r{{0.7}};
  const AbsorbingChain chain(q, r, {2.0});
  const SimulationResult res = simulate(chain, 0, 5000, 11);
  EXPECT_EQ(res.truncated_trials, 0u);
  // Frequencies over completed trials must sum to 1 exactly.
  double total = 0.0;
  for (double f : res.absorption_frequency) total += f;
  EXPECT_DOUBLE_EQ(total, 1.0);
  EXPECT_NEAR(res.mean_time, chain.expected_time(0), 0.1);
}

}  // namespace
}  // namespace clrearly::markov
