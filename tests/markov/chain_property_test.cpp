// Property tests on randomly generated absorbing chains: structural
// invariants that must hold for *any* valid chain, cross-checked against
// Monte-Carlo simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace clrearly::markov {
namespace {

/// Random absorbing chain with `t` transient and `a` absorbing states.
/// Every transient row gets at least `min_absorb_mass` probability routed
/// (directly or not) toward absorption by construction: the last column
/// block receives a guaranteed share.
AbsorbingChain random_chain(std::size_t t, std::size_t a, util::Rng& rng,
                            double min_absorb_mass = 0.05) {
  util::Matrix q(t, t);
  util::Matrix r(t, a);
  for (std::size_t i = 0; i < t; ++i) {
    std::vector<double> raw(t + a);
    double total = 0.0;
    for (double& x : raw) {
      x = rng.uniform();
      total += x;
    }
    // Normalize, then guarantee direct absorbing mass on every row so the
    // chain is absorbing regardless of the transient topology.
    for (double& x : raw) x = x / total * (1.0 - min_absorb_mass);
    raw[t + rng.index(a)] += min_absorb_mass;
    for (std::size_t j = 0; j < t; ++j) q(i, j) = raw[j];
    for (std::size_t k = 0; k < a; ++k) r(i, k) = raw[t + k];
  }
  std::vector<double> residence(t);
  for (double& x : residence) x = rng.uniform(0.1, 10.0);
  return AbsorbingChain(std::move(q), std::move(r), std::move(residence));
}

struct ChainShape {
  std::size_t transient;
  std::size_t absorbing;
  std::uint64_t seed;
};

class RandomChainProperty : public ::testing::TestWithParam<ChainShape> {};

TEST_P(RandomChainProperty, AbsorptionRowsSumToOne) {
  util::Rng rng(GetParam().seed);
  const AbsorbingChain chain =
      random_chain(GetParam().transient, GetParam().absorbing, rng);
  const util::Matrix& b = chain.absorption_probabilities();
  for (std::size_t i = 0; i < chain.num_transient(); ++i) {
    double row = 0.0;
    for (std::size_t k = 0; k < chain.num_absorbing(); ++k) {
      const double p = b(i, k);
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      row += p;
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST_P(RandomChainProperty, FundamentalMatrixIsNonNegative) {
  util::Rng rng(GetParam().seed + 1);
  const AbsorbingChain chain =
      random_chain(GetParam().transient, GetParam().absorbing, rng);
  const util::Matrix& fundamental = chain.fundamental();
  for (std::size_t i = 0; i < chain.num_transient(); ++i) {
    for (std::size_t j = 0; j < chain.num_transient(); ++j) {
      EXPECT_GE(fundamental(i, j), -1e-12);
    }
    // A state is visited at least once when started from.
    EXPECT_GE(fundamental(i, i), 1.0 - 1e-12);
  }
}

TEST_P(RandomChainProperty, TimeAndStepsArePositiveAndFinite) {
  util::Rng rng(GetParam().seed + 2);
  const AbsorbingChain chain =
      random_chain(GetParam().transient, GetParam().absorbing, rng);
  for (std::size_t i = 0; i < chain.num_transient(); ++i) {
    EXPECT_GT(chain.expected_time(i), 0.0);
    EXPECT_TRUE(std::isfinite(chain.expected_time(i)));
    EXPECT_GE(chain.expected_steps(i), 1.0 - 1e-12);
    EXPECT_GE(chain.time_variance(i), -1e-6);
  }
}

TEST_P(RandomChainProperty, ExpectedTimeBoundedByResidenceExtremes) {
  util::Rng rng(GetParam().seed + 3);
  const AbsorbingChain chain =
      random_chain(GetParam().transient, GetParam().absorbing, rng);
  double min_res = chain.residence_times()[0];
  double max_res = min_res;
  for (double r : chain.residence_times()) {
    min_res = std::min(min_res, r);
    max_res = std::max(max_res, r);
  }
  for (std::size_t i = 0; i < chain.num_transient(); ++i) {
    const double steps = chain.expected_steps(i);
    const double time = chain.expected_time(i);
    EXPECT_GE(time, steps * min_res - 1e-9);
    EXPECT_LE(time, steps * max_res + 1e-9);
  }
}

TEST_P(RandomChainProperty, SimulationAgrees) {
  util::Rng rng(GetParam().seed + 4);
  const AbsorbingChain chain =
      random_chain(GetParam().transient, GetParam().absorbing, rng);
  const SimulationResult sim = simulate(chain, 0, 40000, GetParam().seed);
  EXPECT_NEAR(sim.mean_time / chain.expected_time(0), 1.0, 0.05);
  for (std::size_t k = 0; k < chain.num_absorbing(); ++k) {
    EXPECT_NEAR(sim.absorption_frequency[k],
                chain.absorption_probability(0, k), 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomChainProperty,
    ::testing::Values(ChainShape{1, 1, 1}, ChainShape{2, 2, 2},
                      ChainShape{4, 1, 3}, ChainShape{6, 3, 4},
                      ChainShape{10, 2, 5}, ChainShape{16, 4, 6},
                      ChainShape{25, 2, 7}));

}  // namespace
}  // namespace clrearly::markov
