#include "markov/chain_builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace clrearly::markov {
namespace {

TEST(ChainBuilderTest, BuildsSimpleChain) {
  ChainBuilder b;
  const StateId work = b.transient("work", 2.0);
  const StateId done = b.absorbing("done");
  b.edge(work, work, 0.25);
  b.edge(work, done, 0.75);
  const AbsorbingChain chain = b.build();
  EXPECT_EQ(chain.num_transient(), 1u);
  EXPECT_EQ(chain.num_absorbing(), 1u);
  EXPECT_NEAR(chain.expected_time(0), 2.0 / 0.75, 1e-12);
}

TEST(ChainBuilderTest, DuplicateNamesRejected) {
  ChainBuilder b;
  b.transient("s", 1.0);
  EXPECT_THROW(b.transient("s", 1.0), std::invalid_argument);
  EXPECT_THROW(b.absorbing("s"), std::invalid_argument);
}

TEST(ChainBuilderTest, NegativeResidenceRejected) {
  ChainBuilder b;
  EXPECT_THROW(b.transient("s", -1.0), std::invalid_argument);
}

TEST(ChainBuilderTest, EdgesFromAbsorbingRejected) {
  ChainBuilder b;
  const StateId t = b.transient("t", 0.0);
  const StateId a = b.absorbing("a");
  EXPECT_THROW(b.edge(a, t, 1.0), std::invalid_argument);
}

TEST(ChainBuilderTest, BadProbabilityRejected) {
  ChainBuilder b;
  const StateId t = b.transient("t", 0.0);
  const StateId a = b.absorbing("a");
  EXPECT_THROW(b.edge(t, a, 1.5), std::invalid_argument);
  EXPECT_THROW(b.edge(t, a, -0.1), std::invalid_argument);
}

TEST(ChainBuilderTest, ParallelEdgesAccumulate) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");
  b.edge(t, a, 0.5);
  b.edge(t, a, 0.5);
  EXPECT_NO_THROW(b.build());
}

TEST(ChainBuilderTest, RemainingTracksAssignedMass) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");
  EXPECT_DOUBLE_EQ(b.remaining(t), 1.0);
  b.edge(t, a, 0.3);
  EXPECT_NEAR(b.remaining(t), 0.7, 1e-12);
}

TEST(ChainBuilderTest, EdgeRemainingCompletesRow) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");    // absorbing index 0
  const StateId e = b.absorbing("err");  // absorbing index 1
  b.edge(t, e, 0.2);
  b.edge_remaining(t, a);
  const AbsorbingChain chain = b.build();
  EXPECT_NEAR(chain.absorption_probability(0, a.index), 0.8, 1e-12);
  EXPECT_NEAR(chain.absorption_probability(0, e.index), 0.2, 1e-12);
}

TEST(ChainBuilderTest, EdgeRemainingOnCompleteRowIsNoop) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");
  b.edge(t, a, 1.0);
  EXPECT_NO_THROW(b.edge_remaining(t, a));
  EXPECT_NO_THROW(b.build());
}

TEST(ChainBuilderTest, IncompleteRowFailsBuild) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");
  b.edge(t, a, 0.6);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(ChainBuilderTest, LookupFindsStates) {
  ChainBuilder b;
  const StateId t = b.transient("work", 1.0);
  const StateId a = b.absorbing("end");
  EXPECT_EQ(b.lookup("work"), t);
  EXPECT_EQ(b.lookup("end"), a);
  EXPECT_THROW(b.lookup("missing"), std::invalid_argument);
}

TEST(ChainBuilderTest, ZeroProbabilityEdgeIsDropped) {
  ChainBuilder b;
  const StateId t = b.transient("t", 1.0);
  const StateId a = b.absorbing("a");
  b.edge(t, t, 0.0);  // no-op
  b.edge(t, a, 1.0);
  const AbsorbingChain chain = b.build();
  EXPECT_NEAR(chain.expected_steps(0), 1.0, 1e-12);
}

TEST(ChainBuilderTest, MatchesDirectMatrixConstruction) {
  // Same retry chain built both ways must agree on every statistic.
  ChainBuilder b;
  const StateId work = b.transient("work", 5.0);
  const StateId recover = b.transient("recover", 2.0);
  const StateId ok = b.absorbing("ok");
  const StateId fail = b.absorbing("fail");
  b.edge(work, ok, 0.6);
  b.edge(work, recover, 0.4);
  b.edge(recover, work, 0.75);
  b.edge(recover, fail, 0.25);
  const AbsorbingChain built = b.build();

  const util::Matrix q{{0.0, 0.4}, {0.75, 0.0}};
  const util::Matrix r{{0.6, 0.0}, {0.0, 0.25}};
  const AbsorbingChain direct(q, r, {5.0, 2.0});

  EXPECT_NEAR(built.expected_time(0), direct.expected_time(0), 1e-12);
  EXPECT_NEAR(built.absorption_probability(0, 0),
              direct.absorption_probability(0, 0), 1e-12);
  EXPECT_NEAR(built.absorption_probability(0, 1),
              direct.absorption_probability(0, 1), 1e-12);
}

}  // namespace
}  // namespace clrearly::markov
