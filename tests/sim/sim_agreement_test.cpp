// Satellite oracle check: on a chain-structured scenario the analytic QoS
// pipeline is exact (no parallel merges, so no Jensen bias — the makespan
// expectation is the sum of the per-task Markov expectations and the
// variances add along the single path). The Monte Carlo simulator must
// therefore reproduce every analytic QosMetrics figure within its own
// reported confidence intervals. Both sides are fed the *same*
// ClrChainParams, so this pins the whole stack: sampler vs chains, DES vs
// list schedule, weighted error estimator vs TABLE III aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "platform/interconnect.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "sched/qos.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/validate.hpp"

namespace clrearly::sim {
namespace {

struct Scenario {
  app::Application application;
  platform::Architecture arch;
  std::vector<sched::TaskDecision> decisions;
  std::vector<SimTask> tasks;
  std::vector<std::size_t> order{0, 1, 2};
};

reliability::ClrChainParams chain_params(double exec_us, double lambda) {
  reliability::ClrChainParams p;
  p.exec_time_us = exec_us;
  p.lambda_per_us = lambda;
  p.hw_masking = 0.2;
  p.implicit_ssw_masking = 0.05;
  p.detection_coverage = 0.85;
  p.tolerance_success = 0.9;
  p.asw_masking = 0.1;
  p.intervals = 3;
  p.detection_time_us = 0.02 * exec_us;
  p.tolerance_time_us = 0.05 * exec_us;
  p.checkpoint_time_us = 0.01 * exec_us;
  p.checkpoint_error_prob = 5e-4;
  return p;
}

/// Chain t0(PE0) -> t1(PE1) -> t2(PE0) with the communication model on, so
/// the cross-PE transfers exercise sched::data_arrival_us in both paths.
Scenario make_chain_scenario() {
  Scenario s;
  s.application.name = "chain3";
  app::TaskGraph& graph = s.application.graph;
  graph.add_task(0, "t0", 1.0);
  graph.add_task(1, "t1", 2.0);
  graph.add_task(2, "t2", 1.5);
  graph.add_edge(0, 1, 8.0);
  graph.add_edge(1, 2, 4.0);

  platform::PeType type;
  type.name = "core";
  type.masking_factor = 0.3;
  type.dvfs = platform::DvfsTable::paper_default();
  const std::size_t t = s.arch.add_type(type);
  s.arch.add_pe(t);
  s.arch.add_pe(t);
  platform::Interconnect link;
  link.bandwidth_kb_per_us = 2.0;
  link.latency_us = 1.0;
  s.arch.set_interconnect(link);

  const double execs[3] = {120.0, 200.0, 80.0};
  const double lambdas[3] = {2e-3, 1.5e-3, 3e-3};
  const double powers[3] = {0.8, 1.2, 0.6};
  const std::size_t pes[3] = {0, 1, 0};
  for (std::size_t i = 0; i < 3; ++i) {
    const reliability::ClrChainParams params =
        chain_params(execs[i], lambdas[i]);
    const reliability::ClrChainAnalysis chain =
        reliability::analyze_clr_chain(params);

    sched::TaskDecision decision;
    decision.pe = pes[i];
    decision.metrics.min_exec_time_us = chain.min_exec_time_us;
    decision.metrics.avg_exec_time_us = chain.avg_exec_time_us;
    decision.metrics.exec_time_stddev_us = chain.exec_time_stddev_us;
    decision.metrics.error_prob = chain.error_prob;
    decision.metrics.avg_power_w = powers[i];
    decision.metrics.energy_uj = chain.avg_exec_time_us * powers[i];
    decision.metrics.mttf_hours = 1e5;
    s.decisions.push_back(decision);

    s.tasks.push_back(SimTask{params, pes[i], powers[i]});
  }
  return s;
}

class SimAgreementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_chain_scenario());
    analytic_ = sched::estimate_qos(scenario_->application, scenario_->arch,
                                    scenario_->decisions, scenario_->order);
    SimOptions options;
    options.trials = 20000;
    options.seed = 5;
    options.deadline_us = analytic_->makespan_us;
    simulated_ = simulate_schedule(scenario_->application.graph,
                                   scenario_->arch, scenario_->tasks,
                                   scenario_->order, options);
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    analytic_.reset();
    simulated_.reset();
  }

  static Scenario* scenario_;
  static std::optional<sched::QosMetrics> analytic_;
  static std::optional<SimResult> simulated_;
};

Scenario* SimAgreementTest::scenario_ = nullptr;
std::optional<sched::QosMetrics> SimAgreementTest::analytic_;
std::optional<SimResult> SimAgreementTest::simulated_;

TEST_F(SimAgreementTest, MakespanMeanWithinConfidenceInterval) {
  // Chain structure: the analytic makespan is the exact expectation, so the
  // simulator's 95% CI must cover it (deterministic for the fixed seed).
  EXPECT_TRUE(simulated_->makespan_ci_us.contains(analytic_->makespan_us))
      << "analytic " << analytic_->makespan_us << " vs CI ["
      << simulated_->makespan_ci_us.lo << ", " << simulated_->makespan_ci_us.hi
      << "]";
}

TEST_F(SimAgreementTest, MakespanSpreadMatchesAnalyticStddev) {
  // Variances add along the (single) critical path, so the analytic stddev
  // is exact too; 20k trials estimate it to a few percent.
  EXPECT_NEAR(simulated_->makespan_stddev_us, analytic_->makespan_stddev_us,
              0.10 * analytic_->makespan_stddev_us);
  EXPECT_GT(analytic_->makespan_stddev_us, 0.0);
}

TEST_F(SimAgreementTest, ErrorProbabilityWithinWilsonInterval) {
  // The weighted per-trial estimator is unbiased for sum_t zeta_t ErrProb_t
  // = analytic error_prob; the Wilson interval (conservative for weighted
  // outcomes) must cover it.
  EXPECT_TRUE(simulated_->error_ci.contains(analytic_->error_prob))
      << "analytic " << analytic_->error_prob << " vs Wilson ["
      << simulated_->error_ci.lo << ", " << simulated_->error_ci.hi << "]";
  EXPECT_GT(analytic_->error_prob, 0.0);
}

TEST_F(SimAgreementTest, EnergyWithinConfidenceInterval) {
  // Energy is a sum of independent per-task terms — unbiased on both sides.
  EXPECT_TRUE(simulated_->energy_ci_uj.contains(analytic_->energy_uj))
      << "analytic " << analytic_->energy_uj << " vs CI ["
      << simulated_->energy_ci_uj.lo << ", " << simulated_->energy_ci_uj.hi
      << "]";
}

TEST_F(SimAgreementTest, DeadlineMissRateBracketsNormalApproximation) {
  // The deadline sits at the analytic mean, where the normal approximation
  // says 0.5. The rollback-inflated time law is right-skewed (median below
  // mean), so the simulated miss rate lands *under* 0.5 — by a bounded
  // margin that measures exactly the error the normal approximation makes.
  const double analytic_miss = sched::deadline_miss_probability(
      *analytic_, simulated_->deadline_us);
  EXPECT_DOUBLE_EQ(analytic_miss, 0.5);
  EXPECT_LT(simulated_->deadline_miss_rate, 0.5);
  EXPECT_NEAR(simulated_->deadline_miss_rate, analytic_miss, 0.25);
  EXPECT_GT(simulated_->deadline_miss_rate, 0.1);
}

TEST_F(SimAgreementTest, CompareDesignPointAgreesOnBothCriteria) {
  // The bench's agreement scoring must accept this exact-by-construction
  // scenario outright.
  const ValidationRow row =
      compare_design_point("chain3", *analytic_, *simulated_);
  EXPECT_TRUE(row.makespan_agrees);
  EXPECT_TRUE(row.error_agrees);
  EXPECT_TRUE(row.agrees());
  EXPECT_LE(std::abs(row.makespan_delta_us), row.makespan_tolerance_us);
}

}  // namespace
}  // namespace clrearly::sim
