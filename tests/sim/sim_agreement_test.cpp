// Satellite oracle check: on a chain-structured scenario the analytic QoS
// pipeline is exact (no parallel merges, so no Jensen bias — the makespan
// expectation is the sum of the per-task Markov expectations and the
// variances add along the single path). The Monte Carlo simulator must
// therefore reproduce every analytic QosMetrics figure within its own
// reported confidence intervals. Both sides are fed the *same*
// ClrChainParams, so this pins the whole stack: sampler vs chains, DES vs
// list schedule, weighted error estimator vs TABLE III aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "app/sobel.hpp"
#include "app/task_graph.hpp"
#include "core/dse.hpp"
#include "core/sim_bridge.hpp"
#include "platform/architecture.hpp"
#include "platform/interconnect.hpp"
#include "reliability/clr_chain_builder.hpp"
#include "sched/qos.hpp"
#include "sim/schedule_sim.hpp"
#include "sim/validate.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::sim {
namespace {

struct Scenario {
  app::Application application;
  platform::Architecture arch;
  std::vector<sched::TaskDecision> decisions;
  std::vector<SimTask> tasks;
  std::vector<std::size_t> order{0, 1, 2};
};

reliability::ClrChainParams chain_params(double exec_us, double lambda) {
  reliability::ClrChainParams p;
  p.exec_time_us = exec_us;
  p.lambda_per_us = lambda;
  p.hw_masking = 0.2;
  p.implicit_ssw_masking = 0.05;
  p.detection_coverage = 0.85;
  p.tolerance_success = 0.9;
  p.asw_masking = 0.1;
  p.intervals = 3;
  p.detection_time_us = 0.02 * exec_us;
  p.tolerance_time_us = 0.05 * exec_us;
  p.checkpoint_time_us = 0.01 * exec_us;
  p.checkpoint_error_prob = 5e-4;
  return p;
}

/// Chain t0(PE0) -> t1(PE1) -> t2(PE0) with the communication model on, so
/// the cross-PE transfers exercise sched::data_arrival_us in both paths.
Scenario make_chain_scenario() {
  Scenario s;
  s.application.name = "chain3";
  app::TaskGraph& graph = s.application.graph;
  graph.add_task(0, "t0", 1.0);
  graph.add_task(1, "t1", 2.0);
  graph.add_task(2, "t2", 1.5);
  graph.add_edge(0, 1, 8.0);
  graph.add_edge(1, 2, 4.0);

  platform::PeType type;
  type.name = "core";
  type.masking_factor = 0.3;
  type.dvfs = platform::DvfsTable::paper_default();
  const std::size_t t = s.arch.add_type(type);
  s.arch.add_pe(t);
  s.arch.add_pe(t);
  platform::Interconnect link;
  link.bandwidth_kb_per_us = 2.0;
  link.latency_us = 1.0;
  s.arch.set_interconnect(link);

  const double execs[3] = {120.0, 200.0, 80.0};
  const double lambdas[3] = {2e-3, 1.5e-3, 3e-3};
  const double powers[3] = {0.8, 1.2, 0.6};
  const std::size_t pes[3] = {0, 1, 0};
  for (std::size_t i = 0; i < 3; ++i) {
    const reliability::ClrChainParams params =
        chain_params(execs[i], lambdas[i]);
    const reliability::ClrChainAnalysis chain =
        reliability::analyze_clr_chain(params);

    sched::TaskDecision decision;
    decision.pe = pes[i];
    decision.metrics.min_exec_time_us = chain.min_exec_time_us;
    decision.metrics.avg_exec_time_us = chain.avg_exec_time_us;
    decision.metrics.exec_time_stddev_us = chain.exec_time_stddev_us;
    decision.metrics.error_prob = chain.error_prob;
    decision.metrics.avg_power_w = powers[i];
    decision.metrics.energy_uj = chain.avg_exec_time_us * powers[i];
    decision.metrics.mttf_hours = 1e5;
    s.decisions.push_back(decision);

    s.tasks.push_back(SimTask{params, pes[i], powers[i]});
  }
  return s;
}

class SimAgreementTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new Scenario(make_chain_scenario());
    analytic_ = sched::estimate_qos(scenario_->application, scenario_->arch,
                                    scenario_->decisions, scenario_->order);
    SimOptions options;
    options.trials = 20000;
    options.seed = 5;
    options.deadline_us = analytic_->makespan_us;
    simulated_ = simulate_schedule(scenario_->application.graph,
                                   scenario_->arch, scenario_->tasks,
                                   scenario_->order, options);
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
    analytic_.reset();
    simulated_.reset();
  }

  static Scenario* scenario_;
  static std::optional<sched::QosMetrics> analytic_;
  static std::optional<SimResult> simulated_;
};

Scenario* SimAgreementTest::scenario_ = nullptr;
std::optional<sched::QosMetrics> SimAgreementTest::analytic_;
std::optional<SimResult> SimAgreementTest::simulated_;

TEST_F(SimAgreementTest, MakespanMeanWithinConfidenceInterval) {
  // Chain structure: the analytic makespan is the exact expectation, so the
  // simulator's 95% CI must cover it (deterministic for the fixed seed).
  EXPECT_TRUE(simulated_->makespan_ci_us.contains(analytic_->makespan_us))
      << "analytic " << analytic_->makespan_us << " vs CI ["
      << simulated_->makespan_ci_us.lo << ", " << simulated_->makespan_ci_us.hi
      << "]";
}

TEST_F(SimAgreementTest, MakespanSpreadMatchesAnalyticStddev) {
  // Variances add along the (single) critical path, so the analytic stddev
  // is exact too; 20k trials estimate it to a few percent.
  EXPECT_NEAR(simulated_->makespan_stddev_us, analytic_->makespan_stddev_us,
              0.10 * analytic_->makespan_stddev_us);
  EXPECT_GT(analytic_->makespan_stddev_us, 0.0);
}

TEST_F(SimAgreementTest, ErrorProbabilityWithinWilsonInterval) {
  // The weighted per-trial estimator is unbiased for sum_t zeta_t ErrProb_t
  // = analytic error_prob; the Wilson interval (conservative for weighted
  // outcomes) must cover it.
  EXPECT_TRUE(simulated_->error_ci.contains(analytic_->error_prob))
      << "analytic " << analytic_->error_prob << " vs Wilson ["
      << simulated_->error_ci.lo << ", " << simulated_->error_ci.hi << "]";
  EXPECT_GT(analytic_->error_prob, 0.0);
}

TEST_F(SimAgreementTest, EnergyWithinConfidenceInterval) {
  // Energy is a sum of independent per-task terms — unbiased on both sides.
  EXPECT_TRUE(simulated_->energy_ci_uj.contains(analytic_->energy_uj))
      << "analytic " << analytic_->energy_uj << " vs CI ["
      << simulated_->energy_ci_uj.lo << ", " << simulated_->energy_ci_uj.hi
      << "]";
}

TEST_F(SimAgreementTest, DeadlineMissRateBracketsNormalApproximation) {
  // The deadline sits at the analytic mean, where the normal approximation
  // says 0.5. The rollback-inflated time law is right-skewed (median below
  // mean), so the simulated miss rate lands *under* 0.5 — by a bounded
  // margin that measures exactly the error the normal approximation makes.
  const double analytic_miss = sched::deadline_miss_probability(
      *analytic_, simulated_->deadline_us);
  EXPECT_DOUBLE_EQ(analytic_miss, 0.5);
  EXPECT_LT(simulated_->deadline_miss_rate, 0.5);
  EXPECT_NEAR(simulated_->deadline_miss_rate, analytic_miss, 0.25);
  EXPECT_GT(simulated_->deadline_miss_rate, 0.1);
}

TEST_F(SimAgreementTest, CompareDesignPointAgreesOnBothCriteria) {
  // The bench's agreement scoring must accept this exact-by-construction
  // scenario outright.
  const ValidationRow row =
      compare_design_point("chain3", *analytic_, *simulated_);
  EXPECT_TRUE(row.makespan_agrees);
  EXPECT_TRUE(row.error_agrees);
  EXPECT_TRUE(row.agrees());
  EXPECT_LE(std::abs(row.makespan_delta_us), row.makespan_tolerance_us);
}

// ------------------------------------------- permanent-fault injection

/// Degraded chain3 variant with every task forced onto `pe` (the repaired
/// mapping after the other PE is lost). Same chain params and powers, so the
/// analytic QoS of the variant is exact on the chain structure too.
Scenario make_degraded_scenario(std::size_t pe) {
  Scenario s = make_chain_scenario();
  for (std::size_t i = 0; i < s.tasks.size(); ++i) {
    s.tasks[i].pe = pe;
    s.decisions[i].pe = pe;
  }
  return s;
}

/// Chain fixture under permanent PE loss with deliberately large loss
/// probabilities (q0=0.3, q1=0.2): both single-failure sets are covered by a
/// degraded variant, only the double failure is mission loss, so
///   availability = 1 - q0*q1 = 0.94
/// and every conditional statistic is the exact probability mixture of the
/// three per-variant analytic QosMetrics — all chain-exact.
class PermanentFaultAgreementTest : public ::testing::Test {
 protected:
  static constexpr double kQ0 = 0.3;
  static constexpr double kQ1 = 0.2;

  static void SetUpTestSuite() {
    nominal_ = new Scenario(make_chain_scenario());
    pe0_down_ = new Scenario(make_degraded_scenario(1));
    pe1_down_ = new Scenario(make_degraded_scenario(0));

    const std::vector<SimVariant> variants = {
        {nominal_->tasks, nominal_->order},
        {pe0_down_->tasks, pe0_down_->order},
        {pe1_down_->tasks, pe1_down_->order}};
    const std::vector<std::vector<char>> failures = {{0, 0}, {1, 0}, {0, 1}};

    FailureSimOptions options;
    options.trials = 20000;
    options.seed = 5;
    options.pe_failure_prob = {kQ0, kQ1};
    result_.emplace(simulate_with_failures(nominal_->application.graph,
                                           nominal_->arch, variants, failures,
                                           options));

    // The exact conditional mixture the estimates must cover.
    const double weights[3] = {(1.0 - kQ0) * (1.0 - kQ1), kQ0 * (1.0 - kQ1),
                               (1.0 - kQ0) * kQ1};
    availability_ = weights[0] + weights[1] + weights[2];
    const Scenario* scenarios[3] = {nominal_, pe0_down_, pe1_down_};
    expected_makespan_us_ = expected_error_ = expected_energy_uj_ = 0.0;
    for (int v = 0; v < 3; ++v) {
      const sched::QosMetrics qos =
          sched::estimate_qos(scenarios[v]->application, scenarios[v]->arch,
                              scenarios[v]->decisions, scenarios[v]->order);
      expected_makespan_us_ += weights[v] * qos.makespan_us;
      expected_error_ += weights[v] * qos.error_prob;
      expected_energy_uj_ += weights[v] * qos.energy_uj;
    }
    expected_makespan_us_ /= availability_;
    expected_error_ /= availability_;
    expected_energy_uj_ /= availability_;
  }
  static void TearDownTestSuite() {
    delete nominal_;
    delete pe0_down_;
    delete pe1_down_;
    nominal_ = pe0_down_ = pe1_down_ = nullptr;
    result_.reset();
  }

  static Scenario* nominal_;
  static Scenario* pe0_down_;
  static Scenario* pe1_down_;
  static std::optional<FailureSimResult> result_;
  static double availability_;
  static double expected_makespan_us_;
  static double expected_error_;
  static double expected_energy_uj_;
};

Scenario* PermanentFaultAgreementTest::nominal_ = nullptr;
Scenario* PermanentFaultAgreementTest::pe0_down_ = nullptr;
Scenario* PermanentFaultAgreementTest::pe1_down_ = nullptr;
std::optional<FailureSimResult> PermanentFaultAgreementTest::result_;
double PermanentFaultAgreementTest::availability_ = 0.0;
double PermanentFaultAgreementTest::expected_makespan_us_ = 0.0;
double PermanentFaultAgreementTest::expected_error_ = 0.0;
double PermanentFaultAgreementTest::expected_energy_uj_ = 0.0;

TEST_F(PermanentFaultAgreementTest, AvailabilityWithinWilsonInterval) {
  EXPECT_DOUBLE_EQ(availability_, 1.0 - kQ0 * kQ1);
  EXPECT_TRUE(result_->availability_ci.contains(availability_))
      << "analytic " << availability_ << " vs Wilson ["
      << result_->availability_ci.lo << ", " << result_->availability_ci.hi
      << "]";
}

TEST_F(PermanentFaultAgreementTest, ConditionalMakespanWithinInterval) {
  EXPECT_TRUE(result_->makespan_ci_us.contains(expected_makespan_us_))
      << "analytic " << expected_makespan_us_ << " vs CI ["
      << result_->makespan_ci_us.lo << ", " << result_->makespan_ci_us.hi
      << "]";
}

TEST_F(PermanentFaultAgreementTest, ConditionalErrorWithinWilsonInterval) {
  EXPECT_TRUE(result_->error_ci.contains(expected_error_))
      << "analytic " << expected_error_ << " vs Wilson ["
      << result_->error_ci.lo << ", " << result_->error_ci.hi << "]";
}

TEST_F(PermanentFaultAgreementTest, ConditionalEnergyWithinInterval) {
  EXPECT_TRUE(result_->energy_ci_uj.contains(expected_energy_uj_))
      << "analytic " << expected_energy_uj_ << " vs CI ["
      << result_->energy_ci_uj.lo << ", " << result_->energy_ci_uj.hi << "]";
}

TEST_F(PermanentFaultAgreementTest, VariantTrialCountsAreConsistent) {
  ASSERT_EQ(result_->variant_trials.size(), 3u);
  std::size_t sum = 0;
  for (std::size_t n : result_->variant_trials) sum += n;
  EXPECT_EQ(sum, result_->available_trials);
  EXPECT_EQ(result_->trials, 20000u);
  // With q as large as 0.2-0.3 every variant must actually execute.
  for (std::size_t n : result_->variant_trials) EXPECT_GT(n, 0u);
}

TEST_F(PermanentFaultAgreementTest, UncoveredFailureSetsCountAsUnavailable) {
  // Drop the PE0-failure fallback: only {} and {PE1} remain covered, so
  // availability falls to (1-q0) = 0.7 exactly.
  const std::vector<SimVariant> variants = {{nominal_->tasks, nominal_->order},
                                            {pe1_down_->tasks,
                                             pe1_down_->order}};
  const std::vector<std::vector<char>> failures = {{0, 0}, {0, 1}};
  FailureSimOptions options;
  options.trials = 20000;
  options.seed = 5;
  options.pe_failure_prob = {kQ0, kQ1};
  const FailureSimResult partial = simulate_with_failures(
      nominal_->application.graph, nominal_->arch, variants, failures,
      options);
  EXPECT_TRUE(partial.availability_ci.contains(1.0 - kQ0));
  EXPECT_LT(partial.availability, result_->availability);
}

TEST_F(PermanentFaultAgreementTest, InjectionIsBitIdenticalAcrossThreadCounts) {
  const std::vector<SimVariant> variants = {
      {nominal_->tasks, nominal_->order},
      {pe0_down_->tasks, pe0_down_->order},
      {pe1_down_->tasks, pe1_down_->order}};
  const std::vector<std::vector<char>> failures = {{0, 0}, {1, 0}, {0, 1}};
  FailureSimOptions options;
  options.trials = 5000;
  options.seed = 17;
  options.pe_failure_prob = {kQ0, kQ1};

  util::set_thread_count(1);
  const FailureSimResult serial = simulate_with_failures(
      nominal_->application.graph, nominal_->arch, variants, failures,
      options);
  util::set_thread_count(4);
  const FailureSimResult parallel = simulate_with_failures(
      nominal_->application.graph, nominal_->arch, variants, failures,
      options);
  util::set_thread_count(0);

  EXPECT_TRUE(failure_sim_results_identical(serial, parallel));
}

TEST_F(PermanentFaultAgreementTest, RejectsMalformedInjectionInputs) {
  const std::vector<SimVariant> variants = {{nominal_->tasks, nominal_->order}};
  FailureSimOptions options;
  options.trials = 100;
  options.pe_failure_prob = {kQ0, kQ1};

  // Variant 0 must carry the all-healthy mask.
  EXPECT_THROW(simulate_with_failures(nominal_->application.graph,
                                      nominal_->arch, variants, {{1, 0}},
                                      options),
               std::invalid_argument);
  // Mask size must match the PE count.
  EXPECT_THROW(simulate_with_failures(nominal_->application.graph,
                                      nominal_->arch, variants, {{0, 0, 0}},
                                      options),
               std::invalid_argument);
  // Duplicate masks.
  const std::vector<SimVariant> dup = {{nominal_->tasks, nominal_->order},
                                       {nominal_->tasks, nominal_->order}};
  EXPECT_THROW(simulate_with_failures(nominal_->application.graph,
                                      nominal_->arch, dup, {{0, 0}, {0, 0}},
                                      options),
               std::invalid_argument);
  // A variant must not run tasks on a PE its own mask kills.
  const std::vector<SimVariant> bad = {{nominal_->tasks, nominal_->order},
                                       {nominal_->tasks, nominal_->order}};
  EXPECT_THROW(simulate_with_failures(nominal_->application.graph,
                                      nominal_->arch, bad, {{0, 0}, {0, 1}},
                                      options),
               std::invalid_argument);
  // Probabilities outside [0, 1].
  options.pe_failure_prob = {1.5, 0.0};
  EXPECT_THROW(simulate_with_failures(nominal_->application.graph,
                                      nominal_->arch, variants, {{0, 0}},
                                      options),
               std::invalid_argument);
}

// The end-to-end acceptance criterion of the resilience axis: run the
// k-resilient DSE on the paper's Sobel system, then fault-inject EVERY
// point of the k=1 front at 10k trials and require the Monte Carlo Wilson
// intervals to cover the analytic degraded-mode prediction. Availability
// and the criticality-weighted error probability are exactly what the
// injection estimates (per-trial indicator proportions / expectations), so
// agreement here certifies the whole chain: failure enumeration, repair,
// degraded QoS scoring, mixture arithmetic, and the injector itself.
TEST(KResilientOracleTest, FrontAgreesWithAnalyticPredictionAtTenThousandTrials) {
  core::DseOptions options;
  options.ga.population_size = 16;
  options.ga.generations = 6;
  options.seed = 9;
  options.resilience.max_failures = 1;

  const core::DseMethodology dse(app::make_sobel_application(),
                                 platform::Architecture::paper_default(),
                                 reliability::TaskAnalyzer::paper_default());
  const core::DseOutcome outcome = dse.run_kresilient(options);
  ASSERT_FALSE(outcome.front_genomes.empty());
  const core::ResilientProblem problem = dse.build_resilient_problem(options);

  for (std::size_t i = 0; i < outcome.front_genomes.size(); ++i) {
    const core::MappingGenome& genome = outcome.front_genomes[i];
    const core::ResilientProblem::AnalyticPrediction pred =
        problem.analytic_prediction(genome);
    const FailureSimResult injected =
        core::simulate_resilient_design_point(problem, genome, 10000, 23);
    SCOPED_TRACE(::testing::Message() << "front point " << i);

    EXPECT_TRUE(injected.availability_ci.contains(pred.availability))
        << "analytic availability " << pred.availability << " vs Wilson ["
        << injected.availability_ci.lo << ", " << injected.availability_ci.hi
        << "]";
    EXPECT_TRUE(injected.error_ci.contains(pred.expected_error_prob))
        << "analytic error " << pred.expected_error_prob << " vs Wilson ["
        << injected.error_ci.lo << ", " << injected.error_ci.hi << "]";
    // A k=1-resilient point covers every single-PE loss, so availability is
    // exactly P(at most one PE fails) — strictly above the all-survive
    // probability and strictly below certainty.
    double all_survive = 1.0;
    for (const double q : problem.failure_probabilities()) {
      all_survive *= 1.0 - q;
    }
    EXPECT_GT(pred.availability, all_survive);
    EXPECT_LT(pred.availability, 1.0);
    EXPECT_GT(injected.available_trials, 9000u);
  }
}

}  // namespace
}  // namespace clrearly::sim
