#include "sim/schedule_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "app/task_graph.hpp"
#include "platform/architecture.hpp"
#include "platform/interconnect.hpp"
#include "util/thread_pool.hpp"

namespace clrearly::sim {
namespace {

platform::Architecture make_arch(std::size_t num_pes) {
  platform::Architecture arch;
  platform::PeType type;
  type.name = "core";
  type.masking_factor = 0.2;
  type.dvfs = platform::DvfsTable::paper_default();
  const std::size_t t = arch.add_type(type);
  for (std::size_t i = 0; i < num_pes; ++i) arch.add_pe(t);
  return arch;
}

/// Fault-free chain parameters: every trial executes in exactly `exec_us`.
SimTask fixed_task(double exec_us, std::size_t pe, double power_w = 1.0) {
  SimTask task;
  task.chain.exec_time_us = exec_us;
  task.pe = pe;
  task.power_w = power_w;
  return task;
}

/// A task that corrupts on every single trial (p_fault rounds to exactly 1
/// in double precision, and nothing masks, detects or tolerates).
SimTask always_corrupted_task(double exec_us, std::size_t pe) {
  SimTask task = fixed_task(exec_us, pe);
  task.chain.lambda_per_us = 10.0;  // 1 - exp(-10 * exec) == 1.0 exactly
  return task;
}

/// A task whose execution time and outcome are genuinely random: faults are
/// frequent and detected faults roll the interval back.
SimTask stochastic_task(double exec_us, std::size_t pe) {
  SimTask task = fixed_task(exec_us, pe);
  task.chain.lambda_per_us = 0.02;
  task.chain.detection_coverage = 0.9;
  task.chain.tolerance_success = 0.9;
  task.chain.asw_masking = 0.2;
  task.chain.intervals = 2;
  task.chain.detection_time_us = 0.5;
  task.chain.tolerance_time_us = 1.0;
  task.chain.checkpoint_time_us = 0.5;
  return task;
}

TEST(ScheduleSimTest, ValidatesInputs) {
  app::TaskGraph graph;
  graph.add_task(0, "a");
  graph.add_task(0, "b");
  graph.add_edge(0, 1);
  const platform::Architecture arch = make_arch(2);
  const std::vector<SimTask> tasks{fixed_task(1.0, 0), fixed_task(1.0, 1)};
  const std::vector<std::size_t> order{0, 1};
  SimOptions options;
  options.trials = 10;

  // Task count mismatch.
  EXPECT_THROW(simulate_schedule(graph, arch, {fixed_task(1.0, 0)}, order,
                                 options),
               std::invalid_argument);
  // Priority order size mismatch.
  EXPECT_THROW(simulate_schedule(graph, arch, tasks, {0}, options),
               std::invalid_argument);
  // Priority order not a permutation.
  EXPECT_THROW(simulate_schedule(graph, arch, tasks, {0, 0}, options),
               std::invalid_argument);
  EXPECT_THROW(simulate_schedule(graph, arch, tasks, {0, 5}, options),
               std::invalid_argument);
  // PE index out of range.
  EXPECT_THROW(simulate_schedule(graph, arch,
                                 {fixed_task(1.0, 0), fixed_task(1.0, 2)},
                                 order, options),
               std::invalid_argument);
  // Zero trials.
  SimOptions no_trials;
  no_trials.trials = 0;
  EXPECT_THROW(simulate_schedule(graph, arch, tasks, order, no_trials),
               std::invalid_argument);
  // Bad chain parameters surface through the sampler's validation.
  std::vector<SimTask> bad_chain = tasks;
  bad_chain[0].chain.exec_time_us = -1.0;
  EXPECT_THROW(simulate_schedule(graph, arch, bad_chain, order, options),
               std::invalid_argument);
  // Cyclic graphs are rejected up front.
  app::TaskGraph cyclic;
  cyclic.add_task(0, "a");
  cyclic.add_task(0, "b");
  cyclic.add_edge(0, 1);
  cyclic.add_edge(1, 0);
  EXPECT_THROW(simulate_schedule(cyclic, arch, tasks, order, options),
               std::invalid_argument);
}

TEST(ScheduleSimTest, FaultFreeChainMatchesHandComputation) {
  // t0(10us, PE0) -> t1(20us, PE0) -> t2(5us, PE1), no communication model:
  // a fully deterministic makespan of 35us and energy of 10*2 + 20*1 + 5*4.
  app::TaskGraph graph;
  graph.add_task(0, "t0");
  graph.add_task(0, "t1");
  graph.add_task(0, "t2");
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  const platform::Architecture arch = make_arch(2);
  const std::vector<SimTask> tasks{fixed_task(10.0, 0, 2.0),
                                   fixed_task(20.0, 0, 1.0),
                                   fixed_task(5.0, 1, 4.0)};
  SimOptions options;
  options.trials = 64;
  options.seed = 3;

  const SimResult r = simulate_schedule(graph, arch, tasks, {0, 1, 2}, options);
  EXPECT_EQ(r.trials, 64u);
  EXPECT_DOUBLE_EQ(r.makespan_mean_us, 35.0);
  EXPECT_DOUBLE_EQ(r.makespan_min_us, 35.0);
  EXPECT_DOUBLE_EQ(r.makespan_max_us, 35.0);
  EXPECT_DOUBLE_EQ(r.makespan_stddev_us, 0.0);
  EXPECT_EQ(r.makespan_ci_us, (util::Interval{35.0, 35.0}));
  EXPECT_DOUBLE_EQ(r.energy_mean_uj, 60.0);
  EXPECT_DOUBLE_EQ(r.energy_stddev_uj, 0.0);
  EXPECT_DOUBLE_EQ(r.error_prob, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_faults, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_rollbacks, 0.0);
  EXPECT_GT(r.trials_per_sec, 0.0);
}

TEST(ScheduleSimTest, PeContentionSerializesCoLocatedTasks) {
  // Fork t0 -> {t1, t2}: on one PE the branches serialize (10+20+5); with t2
  // moved to its own PE they overlap (10 + max(20, 5)).
  app::TaskGraph graph;
  graph.add_task(0, "t0");
  graph.add_task(0, "t1");
  graph.add_task(0, "t2");
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  SimOptions options;
  options.trials = 8;

  const platform::Architecture arch = make_arch(2);
  const std::vector<SimTask> serial{fixed_task(10.0, 0), fixed_task(20.0, 0),
                                    fixed_task(5.0, 0)};
  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, serial, {0, 1, 2}, options)
          .makespan_mean_us,
      35.0);

  const std::vector<SimTask> spread{fixed_task(10.0, 0), fixed_task(20.0, 0),
                                    fixed_task(5.0, 1)};
  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, spread, {0, 1, 2}, options)
          .makespan_mean_us,
      30.0);
}

TEST(ScheduleSimTest, PriorityOrderDecidesDispatch) {
  // a(10us) and b(1us) compete for PE0; c(1us, PE1) waits on b. Running a
  // first pushes b and then c past it (10 + 1 + 1 = 12); running b first
  // hides both behind a (1 + 10 = 11).
  app::TaskGraph graph;
  graph.add_task(0, "a");
  graph.add_task(0, "b");
  graph.add_task(0, "c");
  graph.add_edge(1, 2);
  const platform::Architecture arch = make_arch(2);
  const std::vector<SimTask> tasks{fixed_task(10.0, 0), fixed_task(1.0, 0),
                                   fixed_task(1.0, 1)};
  SimOptions options;
  options.trials = 8;

  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, tasks, {0, 1, 2}, options)
          .makespan_mean_us,
      12.0);
  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, tasks, {1, 0, 2}, options)
          .makespan_mean_us,
      11.0);
}

TEST(ScheduleSimTest, CrossPeEdgesPayTheInterconnect) {
  // 4 KB over a 1 KB/us link with 2us setup: +6us when producer and
  // consumer sit on different PEs, free when co-located.
  app::TaskGraph graph;
  graph.add_task(0, "t0");
  graph.add_task(0, "t1");
  graph.add_edge(0, 1, 4.0);
  platform::Architecture arch = make_arch(2);
  platform::Interconnect link;
  link.bandwidth_kb_per_us = 1.0;
  link.latency_us = 2.0;
  arch.set_interconnect(link);
  SimOptions options;
  options.trials = 8;

  const std::vector<SimTask> split{fixed_task(10.0, 0), fixed_task(5.0, 1)};
  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, split, {0, 1}, options).makespan_mean_us,
      21.0);
  const std::vector<SimTask> local{fixed_task(10.0, 0), fixed_task(5.0, 0)};
  EXPECT_DOUBLE_EQ(
      simulate_schedule(graph, arch, local, {0, 1}, options).makespan_mean_us,
      15.0);
}

TEST(ScheduleSimTest, ErrorProbabilityIsCriticalityWeighted) {
  // Task 0 (criticality 1) corrupts every trial, task 1 (criticality 3)
  // never does: the weighted error probability is exactly zeta_0 = 0.25.
  app::TaskGraph graph;
  graph.add_task(0, "fragile", 1.0);
  graph.add_task(0, "safe", 3.0);
  const platform::Architecture arch = make_arch(1);
  const std::vector<SimTask> tasks{always_corrupted_task(10.0, 0),
                                   fixed_task(10.0, 0)};
  SimOptions options;
  options.trials = 256;

  const SimResult r = simulate_schedule(graph, arch, tasks, {0, 1}, options);
  EXPECT_DOUBLE_EQ(r.error_prob, 0.25);
  EXPECT_TRUE(r.error_ci.contains(0.25));
  // The fragile task takes exactly one (unmasked, untolerated) fault per
  // trial; the safe task none.
  EXPECT_DOUBLE_EQ(r.mean_faults, 1.0);
}

TEST(ScheduleSimTest, DeadlineAccounting) {
  app::TaskGraph graph;
  graph.add_task(0, "t0");
  const platform::Architecture arch = make_arch(1);
  const std::vector<SimTask> tasks{fixed_task(10.0, 0)};
  SimOptions options;
  options.trials = 32;

  // No deadline: accounting disabled.
  SimResult r = simulate_schedule(graph, arch, tasks, {0}, options);
  EXPECT_DOUBLE_EQ(r.deadline_us, 0.0);
  EXPECT_DOUBLE_EQ(r.deadline_miss_rate, 0.0);
  EXPECT_EQ(r.deadline_miss_ci, (util::Interval{0.0, 0.0}));

  // Generous deadline: never missed.
  options.deadline_us = 20.0;
  r = simulate_schedule(graph, arch, tasks, {0}, options);
  EXPECT_DOUBLE_EQ(r.deadline_us, 20.0);
  EXPECT_DOUBLE_EQ(r.deadline_miss_rate, 0.0);
  EXPECT_GT(r.deadline_miss_ci.hi, 0.0);  // Wilson never collapses at p = 0

  // Impossible deadline: always missed.
  options.deadline_us = 5.0;
  r = simulate_schedule(graph, arch, tasks, {0}, options);
  EXPECT_DOUBLE_EQ(r.deadline_miss_rate, 1.0);
  EXPECT_TRUE(r.deadline_miss_ci.contains(1.0));
}

TEST(ScheduleSimTest, SimResultsIdenticalIgnoresThroughputOnly) {
  app::TaskGraph graph;
  graph.add_task(0, "t0");
  const platform::Architecture arch = make_arch(1);
  const std::vector<SimTask> tasks{stochastic_task(50.0, 0)};
  SimOptions options;
  options.trials = 500;
  options.seed = 17;

  const SimResult a = simulate_schedule(graph, arch, tasks, {0}, options);
  SimResult b = a;
  b.trials_per_sec = a.trials_per_sec * 3.0 + 1.0;
  EXPECT_TRUE(sim_results_identical(a, b));
  b.makespan_mean_us += 1e-12;
  EXPECT_FALSE(sim_results_identical(a, b));

  SimOptions reseeded = options;
  reseeded.seed = 18;
  const SimResult c = simulate_schedule(graph, arch, tasks, {0}, reseeded);
  EXPECT_FALSE(sim_results_identical(a, c));
}

TEST(ScheduleSimTest, BitIdenticalAcrossThreadCounts) {
  // The determinism contract: per-trial split streams + per-index outcome
  // slots + serial aggregation make the result independent of the thread
  // count that executed the trial loop.
  app::TaskGraph graph;
  graph.add_task(0, "t0", 2.0);
  graph.add_task(0, "t1", 1.0);
  graph.add_task(0, "t2", 1.0);
  graph.add_task(0, "t3", 3.0);
  graph.add_edge(0, 1, 2.0);
  graph.add_edge(0, 2, 1.0);
  graph.add_edge(1, 3);
  graph.add_edge(2, 3);
  const platform::Architecture arch = make_arch(2);
  const std::vector<SimTask> tasks{
      stochastic_task(40.0, 0), stochastic_task(60.0, 0),
      stochastic_task(55.0, 1), stochastic_task(30.0, 1)};
  SimOptions options;
  options.trials = 2000;
  options.seed = 23;
  options.deadline_us = 200.0;

  util::set_thread_count(1);
  const SimResult serial =
      simulate_schedule(graph, arch, tasks, {0, 2, 1, 3}, options);
  util::set_thread_count(4);
  const SimResult parallel =
      simulate_schedule(graph, arch, tasks, {0, 2, 1, 3}, options);
  util::set_thread_count(0);

  EXPECT_TRUE(sim_results_identical(serial, parallel));
  EXPECT_GT(serial.makespan_stddev_us, 0.0);  // the scenario is stochastic
  EXPECT_GT(serial.mean_faults, 0.0);
}

}  // namespace
}  // namespace clrearly::sim
