#include "sim/task_sampler.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>

#include "reliability/clr_chain_builder.hpp"
#include "reliability/fault_injection.hpp"
#include "util/rng.hpp"

namespace clrearly::sim {
namespace {

reliability::ClrChainParams base_params() {
  reliability::ClrChainParams p;
  p.exec_time_us = 100.0;
  p.lambda_per_us = 2e-3;
  p.hw_masking = 0.2;
  p.implicit_ssw_masking = 0.1;
  p.detection_coverage = 0.9;
  p.tolerance_success = 0.95;
  p.asw_masking = 0.3;
  p.intervals = 4;
  p.detection_time_us = 1.5;
  p.tolerance_time_us = 4.0;
  p.checkpoint_time_us = 2.0;
  p.checkpoint_error_prob = 1e-4;
  return p;
}

TEST(TaskSamplerTest, ValidatesParamsAtConstruction) {
  reliability::ClrChainParams bad = base_params();
  bad.exec_time_us = -1.0;
  EXPECT_THROW(TaskSampler sampler(bad), std::invalid_argument);

  bad = base_params();
  bad.detection_coverage = 1.5;
  EXPECT_THROW(TaskSampler sampler(bad), std::invalid_argument);

  bad = base_params();
  bad.intervals = 0;
  EXPECT_THROW(TaskSampler sampler(bad), std::invalid_argument);
}

TEST(TaskSamplerTest, FaultFreeProcessIsDeterministic) {
  // lambda = 0: every trial is the clean path — exec time plus one
  // detection pass per interval plus the inter-interval checkpoints.
  reliability::ClrChainParams p = base_params();
  p.lambda_per_us = 0.0;
  p.checkpoint_error_prob = 0.0;
  const TaskSampler sampler(p);

  const double expected =
      p.exec_time_us + 4 * p.detection_time_us + 3 * p.checkpoint_time_us;
  util::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const TaskTrial trial = sampler.sample(rng);
    EXPECT_DOUBLE_EQ(trial.exec_time_us, expected);
    EXPECT_FALSE(trial.corrupted);
    EXPECT_EQ(trial.faults, 0u);
    EXPECT_EQ(trial.rollbacks, 0u);
  }
}

TEST(TaskSamplerTest, DeterministicForSameRngState) {
  const TaskSampler sampler(base_params());
  util::Rng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    const TaskTrial ta = sampler.sample(a);
    const TaskTrial tb = sampler.sample(b);
    EXPECT_DOUBLE_EQ(ta.exec_time_us, tb.exec_time_us);
    EXPECT_EQ(ta.corrupted, tb.corrupted);
    EXPECT_EQ(ta.faults, tb.faults);
    EXPECT_EQ(ta.rollbacks, tb.rollbacks);
  }
}

TEST(TaskSamplerTest, AggregateReproducesInjectFaultsExactly) {
  // sample() mirrors the trial loop of reliability::inject_faults draw for
  // draw, so aggregating it over the same seeded Rng must reproduce the
  // oracle's statistics bitwise — this is the keep-in-sync tripwire.
  const reliability::ClrChainParams p = base_params();
  const std::size_t trials = 20000;
  const std::uint64_t seed = 42;

  const reliability::InjectionResult oracle =
      reliability::inject_faults(p, trials, seed);

  const TaskSampler sampler(p);
  util::Rng rng(seed);
  double total_time = 0.0, errors = 0.0, faults = 0.0, rollbacks = 0.0;
  for (std::size_t i = 0; i < trials; ++i) {
    const TaskTrial trial = sampler.sample(rng);
    total_time += trial.exec_time_us;
    if (trial.corrupted) errors += 1.0;
    faults += static_cast<double>(trial.faults);
    rollbacks += static_cast<double>(trial.rollbacks);
  }
  const double n = static_cast<double>(trials);
  EXPECT_DOUBLE_EQ(total_time / n, oracle.mean_exec_time_us);
  EXPECT_DOUBLE_EQ(errors / n, oracle.error_rate);
  EXPECT_DOUBLE_EQ(faults / n, oracle.mean_faults_injected);
  EXPECT_DOUBLE_EQ(rollbacks / n, oracle.mean_rollbacks);
}

TEST(TaskSamplerTest, AggregateMatchesAnalyticChains) {
  // And transitively the analytic Fig. 3 solution: mean time and error
  // probability of many samples within Monte Carlo tolerance.
  const reliability::ClrChainParams p = base_params();
  const reliability::ClrChainAnalysis chain = reliability::analyze_clr_chain(p);

  const TaskSampler sampler(p);
  util::Rng rng(7);
  const std::size_t trials = 60000;
  double total_time = 0.0, errors = 0.0;
  for (std::size_t i = 0; i < trials; ++i) {
    const TaskTrial trial = sampler.sample(rng);
    total_time += trial.exec_time_us;
    if (trial.corrupted) errors += 1.0;
  }
  const double n = static_cast<double>(trials);
  EXPECT_NEAR(total_time / n, chain.avg_exec_time_us,
              0.02 * chain.avg_exec_time_us);
  EXPECT_NEAR(errors / n, chain.error_prob, 0.005);
}

TEST(TaskSamplerTest, RollbacksExtendTimeButPreventCorruption) {
  // Perfect detection + tolerance: errors only escape through checkpoint
  // corruption (disabled here); a high fault rate must show up as rollbacks
  // and longer runs instead.
  reliability::ClrChainParams p = base_params();
  p.lambda_per_us = 0.05;  // ~5 faults per interval pass
  p.hw_masking = 0.0;
  p.implicit_ssw_masking = 0.0;
  p.detection_coverage = 1.0;
  p.tolerance_success = 1.0;
  p.checkpoint_error_prob = 0.0;
  const TaskSampler sampler(p);

  util::Rng rng(3);
  std::size_t rollbacks = 0;
  const double clean_time =
      p.exec_time_us + 4 * p.detection_time_us + 3 * p.checkpoint_time_us;
  double total_time = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const TaskTrial trial = sampler.sample(rng);
    EXPECT_FALSE(trial.corrupted);
    rollbacks += trial.rollbacks;
    total_time += trial.exec_time_us;
  }
  EXPECT_GT(rollbacks, 0u);
  EXPECT_GT(total_time / 2000.0, clean_time);
}

TEST(TaskSamplerTest, ExposesValidatedParams) {
  const reliability::ClrChainParams p = base_params();
  const TaskSampler sampler(p);
  EXPECT_DOUBLE_EQ(sampler.params().exec_time_us, p.exec_time_us);
  EXPECT_EQ(sampler.params().intervals, p.intervals);
}

}  // namespace
}  // namespace clrearly::sim
