#include "sim/validate.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace clrearly::sim {
namespace {

sched::QosMetrics make_analytic() {
  sched::QosMetrics m;
  m.makespan_us = 100.0;
  m.makespan_stddev_us = 5.0;
  m.error_prob = 0.010;
  m.energy_uj = 250.0;
  return m;
}

SimResult make_simulated() {
  SimResult r;
  r.trials = 10000;
  r.makespan_mean_us = 103.0;
  r.makespan_stddev_us = 5.2;
  r.makespan_ci_us = {102.0, 104.0};  // half-width 1 -> tolerance 1 + 5 = 6
  r.error_prob = 0.011;
  r.error_ci = {0.009, 0.013};
  r.energy_mean_uj = 251.0;
  r.energy_ci_uj = {249.0, 253.0};
  return r;
}

TEST(CompareDesignPointTest, AgreeingPoint) {
  const ValidationRow row =
      compare_design_point("p0", make_analytic(), make_simulated());
  EXPECT_EQ(row.label, "p0");
  EXPECT_DOUBLE_EQ(row.makespan_delta_us, 3.0);
  EXPECT_DOUBLE_EQ(row.makespan_tolerance_us,
                   1.0 + kJensenSigmaFactor * 5.0);
  EXPECT_TRUE(row.makespan_agrees);
  EXPECT_DOUBLE_EQ(row.error_delta, 0.001);
  EXPECT_TRUE(row.error_agrees);
  EXPECT_TRUE(row.agrees());
  EXPECT_DOUBLE_EQ(row.analytic_deadline_miss, 0.0);  // no deadline simulated
}

TEST(CompareDesignPointTest, MakespanBeyondToleranceFails) {
  SimResult sim = make_simulated();
  sim.makespan_mean_us = 107.0;  // delta 7 > tolerance 6
  sim.makespan_ci_us = {106.0, 108.0};
  const ValidationRow row =
      compare_design_point("p1", make_analytic(), sim);
  EXPECT_FALSE(row.makespan_agrees);
  EXPECT_TRUE(row.error_agrees);
  EXPECT_FALSE(row.agrees());
}

TEST(CompareDesignPointTest, ErrorOutsideWidenedWilsonFails) {
  SimResult sim = make_simulated();
  sim.error_ci = {0.02, 0.03};  // analytic 0.01 < 0.02 - kErrorProbSlack
  const ValidationRow row =
      compare_design_point("p2", make_analytic(), sim);
  EXPECT_TRUE(row.makespan_agrees);
  EXPECT_FALSE(row.error_agrees);
  EXPECT_FALSE(row.agrees());
}

TEST(CompareDesignPointTest, SlackRescuesBoundaryError) {
  // Analytic value just outside the raw interval but inside the slack.
  SimResult sim = make_simulated();
  sim.error_ci = {0.0102, 0.013};
  const ValidationRow row =
      compare_design_point("p3", make_analytic(), sim);
  EXPECT_TRUE(row.error_agrees);
}

TEST(CompareDesignPointTest, DeadlineTriggersAnalyticMissProbability) {
  SimResult sim = make_simulated();
  sim.deadline_us = 100.0;  // at the analytic mean -> miss prob 0.5
  const ValidationRow row =
      compare_design_point("p4", make_analytic(), sim);
  EXPECT_NEAR(row.analytic_deadline_miss, 0.5, 1e-9);
}

ValidationReport make_report() {
  ValidationReport report;
  report.rows.push_back(
      compare_design_point("good", make_analytic(), make_simulated()));
  SimResult bad_makespan = make_simulated();
  bad_makespan.makespan_mean_us = 120.0;
  bad_makespan.makespan_ci_us = {119.0, 121.0};
  report.rows.push_back(
      compare_design_point("bad-makespan", make_analytic(), bad_makespan));
  SimResult bad_error = make_simulated();
  bad_error.error_ci = {0.05, 0.06};
  report.rows.push_back(
      compare_design_point("bad-error", make_analytic(), bad_error));
  SimResult bad_both = bad_makespan;
  bad_both.error_ci = {0.05, 0.06};
  report.rows.push_back(
      compare_design_point("bad-both", make_analytic(), bad_both));
  return report;
}

TEST(ValidationReportTest, AgreementFractions) {
  const ValidationReport report = make_report();
  EXPECT_DOUBLE_EQ(report.makespan_agreement(), 0.5);  // good + bad-error
  EXPECT_DOUBLE_EQ(report.error_agreement(), 0.5);     // good + bad-makespan
  EXPECT_DOUBLE_EQ(report.agreement(), 0.25);          // only good
}

TEST(ValidationReportTest, EmptyReportIsVacuouslyAgreeing) {
  const ValidationReport report;
  EXPECT_DOUBLE_EQ(report.makespan_agreement(), 1.0);
  EXPECT_DOUBLE_EQ(report.error_agreement(), 1.0);
  EXPECT_DOUBLE_EQ(report.agreement(), 1.0);
}

TEST(ValidationReportTest, CsvHasHeaderAndOneRowPerPoint) {
  const ValidationReport report = make_report();
  const std::string path = ::testing::TempDir() + "sim_validation_test.csv";
  write_validation_csv(path, report);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("label"), std::string::npos);
  EXPECT_NE(line.find("makespan_agrees"), std::string::npos);
  EXPECT_NE(line.find("sim_error_ci_hi"), std::string::npos);
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, report.rows.size());

  EXPECT_THROW(write_validation_csv("/nonexistent-dir/out.csv", report),
               std::runtime_error);
}

TEST(ValidationReportTest, JsonCarriesRowsAndFractions) {
  const ValidationReport report = make_report();
  const std::string json =
      util::json_serialize(validation_report_json(report));
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
  EXPECT_NE(json.find("\"agreement\""), std::string::npos);
  EXPECT_NE(json.find("\"bad-makespan\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan_agrees\""), std::string::npos);

  // A row simulated without a deadline omits the deadline block.
  const std::string row_json =
      util::json_serialize(validation_row_json(report.rows.front()));
  EXPECT_EQ(row_json.find("\"deadline_us\""), std::string::npos);
  SimResult with_deadline = make_simulated();
  with_deadline.deadline_us = 110.0;
  const std::string deadline_json = util::json_serialize(validation_row_json(
      compare_design_point("d", make_analytic(), with_deadline)));
  EXPECT_NE(deadline_json.find("\"deadline_us\""), std::string::npos);
  EXPECT_NE(deadline_json.find("\"analytic_deadline_miss\""),
            std::string::npos);
}

}  // namespace
}  // namespace clrearly::sim
