#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace clrearly::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.push({5.0, EventKind::kComplete, 1});
  q.push({1.0, EventKind::kDataReady, 2});
  q.push({3.0, EventKind::kComplete, 3});
  q.push({2.0, EventKind::kDataReady, 4});

  EXPECT_EQ(q.size(), 4u);
  EXPECT_DOUBLE_EQ(q.next_time_us(), 1.0);

  std::vector<double> times;
  std::vector<std::size_t> tasks;
  while (!q.empty()) {
    const Event e = q.pop();
    times.push_back(e.time_us);
    tasks.push_back(e.task);
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 5.0}));
  EXPECT_EQ(tasks, (std::vector<std::size_t>{2, 4, 3, 1}));
}

TEST(EventQueueTest, EqualTimesPopInPushOrder) {
  // The determinism contract: ties break on insertion sequence, never on
  // heap internals.
  EventQueue q;
  for (std::size_t task = 0; task < 10; ++task) {
    q.push({7.5, EventKind::kDataReady, task});
  }
  for (std::size_t task = 0; task < 10; ++task) {
    const Event e = q.pop();
    EXPECT_DOUBLE_EQ(e.time_us, 7.5);
    EXPECT_EQ(e.task, task);
  }
}

TEST(EventQueueTest, TieBreakSurvivesInterleavedEarlierEvents) {
  EventQueue q;
  q.push({2.0, EventKind::kComplete, 0});
  q.push({1.0, EventKind::kDataReady, 1});
  q.push({2.0, EventKind::kComplete, 2});
  q.push({0.5, EventKind::kDataReady, 3});
  q.push({2.0, EventKind::kDataReady, 4});

  EXPECT_EQ(q.pop().task, 3u);
  EXPECT_EQ(q.pop().task, 1u);
  // The three t=2.0 events come back in push order 0, 2, 4.
  EXPECT_EQ(q.pop().task, 0u);
  EXPECT_EQ(q.pop().task, 2u);
  EXPECT_EQ(q.pop().task, 4u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push({4.0, EventKind::kComplete, 0});
  q.push({1.0, EventKind::kDataReady, 1});
  EXPECT_EQ(q.pop().task, 1u);
  q.push({2.0, EventKind::kDataReady, 2});
  q.push({3.0, EventKind::kComplete, 3});
  EXPECT_EQ(q.pop().task, 2u);
  EXPECT_EQ(q.pop().task, 3u);
  EXPECT_EQ(q.pop().task, 0u);
}

TEST(EventQueueTest, PreservesEventPayload) {
  EventQueue q;
  q.push({1.5, EventKind::kComplete, 42});
  const Event e = q.pop();
  EXPECT_DOUBLE_EQ(e.time_us, 1.5);
  EXPECT_EQ(e.kind, EventKind::kComplete);
  EXPECT_EQ(e.task, 42u);
}

TEST(EventQueueTest, ClearResetsForReuseAcrossTrials) {
  EventQueue q;
  q.push({1.0, EventKind::kDataReady, 0});
  q.push({1.0, EventKind::kDataReady, 1});
  q.clear();
  EXPECT_TRUE(q.empty());

  // After clear() the sequence counter restarts: tie-break order of the next
  // trial is decided by its own pushes alone.
  q.push({9.0, EventKind::kComplete, 5});
  q.push({9.0, EventKind::kComplete, 6});
  EXPECT_EQ(q.pop().task, 5u);
  EXPECT_EQ(q.pop().task, 6u);
}

}  // namespace
}  // namespace clrearly::sim
